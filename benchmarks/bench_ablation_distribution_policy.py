"""Ablation — mask-distribution policy of the task/affinity plugin.

DESIGN.md calls out the socket-aware placement as a design choice worth
ablating.  The paper's plugin "distributes CPUs trying to keep applications in
separate sockets in order to improve data locality"; a naive equipartition
that simply hands out contiguous CPU ranges can leave a job straddling both
sockets.  The benchmark builds the case where this matters — three jobs of
4, 8 and 4 CPUs on one node — and measures, with the NEST performance
profile, what the placement costs the straddling job in IPC and iteration
time.  It also re-runs the use-case-2 workload under both policies to confirm
the end-to-end metrics never get worse with the paper's policy.
"""

from __future__ import annotations

from repro.apps import nest_profile
from repro.campaign import (
    CampaignSpec,
    HighPriorityWorkloadRef,
    PolicyRef,
    run_campaign,
)
from repro.cpuset.distribution import (
    EquipartitionPolicy,
    JobShare,
    SocketAwareEquipartition,
)
from repro.cpuset.topology import NodeTopology
from repro.experiments.tables import render_table
from repro.workload.runner import DROM


def evaluate_policies():
    node = NodeTopology.marenostrum3()
    profile = nest_profile()
    solve = profile.phase("simulate")
    jobs = [
        JobShare(job_id=1, ntasks=1, requested_cpus=4),
        JobShare(job_id=2, ntasks=1, requested_cpus=8),
        JobShare(job_id=3, ntasks=1, requested_cpus=4),
    ]
    placement_rows = []
    summary = {}
    for label, policy in (
        ("socket-aware equipartition (paper)", SocketAwareEquipartition()),
        ("plain contiguous equipartition", EquipartitionPolicy()),
    ):
        allocation = policy.distribute(node, jobs)
        eight_cpu_mask = allocation[2].mask
        spanned = node.sockets_spanned(eight_cpu_mask)
        ipc = profile.ipc(solve, eight_cpu_mask, node, initial_threads=8)
        step_time = profile.iteration_time(
            solve, 100.0, eight_cpu_mask, node, initial_threads=8, total_ranks=2
        )
        placement_rows.append(
            (label, eight_cpu_mask.to_list_string(), spanned, f"{ipc:.2f}", f"{step_time:.1f}")
        )
        summary[label] = {"spanned": spanned, "ipc": ipc, "step_time": step_time}

    # End-to-end sanity: on the two-full-jobs workload the policies coincide,
    # so the paper's policy never regresses the workload metrics.  The policy
    # axis of the campaign grid runs both variants in one sweep.
    policy_labels = {
        "socket": "socket-aware equipartition (paper)",
        "equipartition": "plain contiguous equipartition",
    }
    campaign = run_campaign(
        CampaignSpec(
            name="ablation-distribution-policy",
            workloads=(HighPriorityWorkloadRef(),),
            scenarios=(DROM,),
            policies=(PolicyRef("socket"), PolicyRef("equipartition")),
        )
    )
    e2e_rows = []
    for row in campaign.rows:
        label = policy_labels[row.run.policy.name]
        summary[label]["total_run_time"] = row.total_run_time
        e2e_rows.append((label, f"{row.total_run_time:.0f}"))
    return placement_rows, e2e_rows, summary


def test_ablation_distribution_policy(benchmark, report):
    placement_rows, e2e_rows, summary = benchmark(evaluate_policies)
    text = (
        "Placement of an 8-CPU job co-allocated with two 4-CPU jobs:\n"
        + render_table(
            ["Policy", "8-CPU job mask", "Sockets spanned", "IPC", "Step time (s)"],
            placement_rows,
        )
        + "\n\nUse-case-2 workload total run time under each policy:\n"
        + render_table(["Policy", "DROM total run time (s)"], e2e_rows)
    )
    report("ablation_distribution_policy", text)

    paper = summary["socket-aware equipartition (paper)"]
    plain = summary["plain contiguous equipartition"]
    # The paper's policy keeps the wide job on a single socket...
    assert paper["spanned"] == 1
    assert plain["spanned"] == 2
    # ...which buys locality: higher IPC and a faster iteration.
    assert paper["ipc"] > plain["ipc"]
    assert paper["step_time"] < plain["step_time"]
    # And it never costs anything end to end.
    assert paper["total_run_time"] <= plain["total_run_time"] * 1.001
