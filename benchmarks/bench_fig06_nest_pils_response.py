"""Figure 6 — individual response times of NEST and Pils (Serial vs DROM).

Paper observations asserted: Pils' response time collapses (up to 96 % in the
paper, because its wait time goes to zero) while NEST's grows only a few
percent (0–4.2 %).
"""

from __future__ import annotations

from repro.experiments.tables import render_response_figure
from repro.experiments.usecase1 import simulator_pils_response


def test_figure6_nest_pils_response_times(benchmark, report, warm_store):
    comparisons = benchmark(simulator_pils_response, "NEST", store=warm_store)
    report("fig06_nest_pils_response", render_response_figure(comparisons))

    for c in comparisons:
        assert c.analytics_response_reduction >= 0.80, c.workload
        assert c.simulator_response_change <= 0.09, c.workload
