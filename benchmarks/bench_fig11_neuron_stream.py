"""Figure 11 — CoreNeuron + STREAM: total run time and response times.

Paper observation asserted: the total run time is always better with DROM
(up to 8 % — CoreNeuron shares nodes with memory-bound analytics slightly
better than NEST), STREAM's response time drops by ~91 %, CoreNeuron's grows
at most ~4 %.
"""

from __future__ import annotations

from repro.experiments.tables import render_response_figure, render_run_time_figure
from repro.experiments.usecase1 import simulator_stream


def test_figure11_coreneuron_stream(benchmark, report, warm_store):
    comparisons = benchmark(simulator_stream, "CoreNeuron", store=warm_store)
    text = (
        "Total run time:\n" + render_run_time_figure(comparisons)
        + "\n\nResponse times:\n" + render_response_figure(comparisons)
    )
    report("fig11_neuron_stream", text)

    for c in comparisons:
        assert 0.0 < c.total_run_time_gain <= 0.12, c.workload
        assert c.analytics_response_reduction >= 0.85, c.workload
        assert c.simulator_response_change <= 0.06, c.workload
