"""Figure 15 — average response time of use case 2 (Serial vs DROM).

Paper observation asserted: the DROM scenario improves the average response
time (10 % in the paper) because the high-priority job starts immediately.

This figure needs only response-time metrics, so it goes through the
campaign/store path (:func:`~repro.experiments.usecase2.usecase2_responses`)
and shares the session's warm :class:`~repro.results.store.ResultStore` —
with a warm store it regenerates without simulating at all.
"""

from __future__ import annotations

from repro.experiments.usecase2 import usecase2_responses
from repro.workload.runner import DROM, SERIAL


def test_figure15_use_case2_average_response(benchmark, report, warm_store):
    result = benchmark(usecase2_responses, store=warm_store)
    responses = result.responses
    lines = [
        f"Serial average response: {result.serial_average_response:.0f} s",
        f"DROM   average response: {result.drom_average_response:.0f} s",
        f"gain: {100 * result.average_response_gain:+.1f} %  (paper: +10 %)",
        "",
        "per-job response times (s):",
    ]
    for scenario in (SERIAL, DROM):
        for job, value in responses[scenario].items():
            lines.append(f"  {scenario:6s} {job:22s} {value:8.0f}")
    report("fig15_uc2_avg_response", "\n".join(lines))

    assert result.average_response_gain > 0.0
    # The high-priority job's own response time improves a lot...
    serial_cn = responses[SERIAL][result.coreneuron_label]
    drom_cn = responses[DROM][result.coreneuron_label]
    assert drom_cn < serial_cn
    # ...while the already-running job pays a bounded penalty.
    serial_nest = responses[SERIAL][result.nest_label]
    drom_nest = responses[DROM][result.nest_label]
    assert drom_nest >= serial_nest
