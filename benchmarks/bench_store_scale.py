"""Store-scale gate: indexed O(1) lookups vs rebuild-from-directory.

The store index journals both tiers' membership and summary fields into a
sibling ``<root>.index.jsonl`` file, turning ``scan()``/``ls``/warm-campaign
lookup from O(N) directory walks with per-entry reads into one journal
replay (and one stat on the root).  This harness is the gate:

* seeds a **10 000-cell** synthetic metrics store (real entry layout, every
  file parses and summarises) and measures warm ``scan()`` and ``ls``
  (summary listing) with the index against the rebuild-from-directory
  baseline (index deleted, every entry re-described) — asserting **>= 10x**
  on both;
* runs a small real campaign over both tiers and asserts the warm re-runs
  stay **zero-execution and byte-identical** with the index present, absent
  (deleted), and truncated mid-way — the index is derived metadata, never
  ground truth;
* stores one real trace with a small segment size and asserts windowed
  ``TraceReader`` queries equal the full-inflation results while inflating
  only the touched segments.

The whole report lands in ``BENCH_store.json``.  Run standalone (tier-1
does not collect ``benchmarks/``)::

    PYTHONPATH=src python benchmarks/bench_store_scale.py [--out BENCH_store.json]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_store_scale.py -q
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.runner import execute_run, run_campaign, summarise_run
from repro.campaign.spec import CampaignSpec, ClusterRef, RunSpec, SyntheticWorkloadRef
from repro.results.query import render_store_table
from repro.results.store import STORE_FORMAT_VERSION, ResultStore
from repro.traces.query import TraceReader
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM

SPEEDUP_GATE = 10.0
CELLS = 10_000

SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)


def _small_spec(seeds=(0, 1)) -> CampaignSpec:
    return CampaignSpec(
        name="store-scale",
        workloads=tuple(SyntheticWorkloadRef(spec=SMALL, seed=s) for s in seeds),
        clusters=(ClusterRef(nnodes=4),),
    )


# -- synthetic 10k-cell seeding -------------------------------------------------------


def seed_synthetic_store(root: Path, cells: int) -> ResultStore:
    """A ``cells``-cell metrics store grown from one real simulated row.

    One cell executes for real; its stored payload then stamps out the grid
    with per-cell workload seeds, re-deriving each content key exactly the
    way ``content_key`` does — so every file is a fully valid, parseable,
    summarisable store entry, and the rebuild baseline pays the real
    describe cost per cell.
    """
    run = RunSpec(
        index=0,
        scenario=DROM,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )
    row = summarise_run(run, execute_run(run))
    store = ResultStore(root)
    store.put(row)
    template = json.loads(store.path_for(store.keys()[0]).read_text())
    root.mkdir(parents=True, exist_ok=True)
    for seed in range(1, cells):
        payload = dict(template)
        payload["run"] = dict(template["run"])
        payload["run"]["workload"] = dict(template["run"]["workload"])
        payload["run"]["workload"]["seed"] = seed
        canonical = json.dumps(
            payload["run"], sort_keys=True, separators=(",", ":")
        )
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        payload["key"] = key
        (root / f"{key}.json").write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
    return store


def _timed(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock of ``fn`` plus its last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def bench_scan_and_ls(root: Path) -> dict:
    """Indexed vs rebuild-from-directory timings on the synthetic store.

    The warm measurements hold one live :class:`ResultStore` — the
    production access pattern: a campaign scans the store object it holds,
    and the journal replays once per process.  The first replay is timed
    separately and reported, and even it must beat the rebuild.
    """
    store = ResultStore(root)
    index_path = store.index.path

    # Cold-start the journal (full rebuild from the directory), then time
    # the once-per-process replay a fresh CLI/campaign pays.
    store.scan()
    replay_s, replayed = _timed(lambda: ResultStore(root).scan(), repeats=1)

    def indexed_scan():
        return store.scan()  # warm object: one stat each on journal + root

    def rebuild_scan():
        index_path.unlink(missing_ok=True)  # the pre-index world, every time
        return ResultStore(root).scan()

    rebuild_scan_s, rebuilt = _timed(rebuild_scan)
    indexed_scan_s, scanned = _timed(indexed_scan)
    assert scanned == rebuilt == replayed and len(scanned) == CELLS

    # Both sides produce the same listing rows (key, scenario, workload,
    # headline metrics); the shared ASCII table rendering is excluded so the
    # comparison isolates what the index changes: a journal lookup vs one
    # full JSON read per cell.
    def indexed_ls():
        return [
            (e.key, e.summary["scenario"], e.summary["total_run_time"])
            for e in store.summaries()
        ]

    def baseline_ls():
        return [
            (e.key, e.contents["scenario"], e.metrics["total_run_time"])
            for e in ResultStore(root).entries()
        ]

    baseline_ls_s, baseline_rows = _timed(baseline_ls, repeats=1)
    indexed_ls_s, indexed_rows = _timed(indexed_ls)
    assert len(indexed_rows) == CELLS
    assert indexed_rows == baseline_rows  # identical listings, either path
    table = render_store_table(store)
    assert table.count("\n") >= CELLS  # the CLI renders one row per cell

    return {
        "cells": CELLS,
        "indexed_scan_seconds": indexed_scan_s,
        "first_replay_seconds": replay_s,
        "rebuild_scan_seconds": rebuild_scan_s,
        "scan_speedup": rebuild_scan_s / indexed_scan_s,
        "replay_speedup": rebuild_scan_s / replay_s,
        "indexed_ls_seconds": indexed_ls_s,
        "baseline_ls_seconds": baseline_ls_s,
        "ls_speedup": baseline_ls_s / indexed_ls_s,
    }


# -- byte identity with and without the index -----------------------------------------


def _tier_bytes(root: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(root.iterdir()) if p.is_file()}


def bench_byte_identity(work: Path) -> dict:
    """Warm campaigns must stay zero-execution and byte-identical with the
    index present, deleted, and truncated mid-way."""
    spec = _small_spec()
    store_root, trace_root = work / "store", work / "traces"
    cold = run_campaign(
        spec, store=ResultStore(store_root), trace_store=TraceStore(trace_root)
    )
    baseline = {"store": _tier_bytes(store_root), "traces": _tier_bytes(trace_root)}
    modes = {}
    for mode in ("present", "deleted", "truncated"):
        for root in (store_root, trace_root):
            index_path = ResultStore(root).index.path  # same sibling rule both tiers
            if mode == "deleted":
                index_path.unlink(missing_ok=True)
            elif mode == "truncated":
                ResultStore(root).scan() if root == store_root else TraceStore(
                    root
                ).scan()  # ensure a journal exists to truncate
                lines = index_path.read_text().splitlines(keepends=True)
                index_path.write_text("".join(lines[: max(1, len(lines) // 2)]))
        warm = run_campaign(
            spec, store=ResultStore(store_root), trace_store=TraceStore(trace_root)
        )
        identical = (
            warm.rows == cold.rows
            and _tier_bytes(store_root) == baseline["store"]
            and _tier_bytes(trace_root) == baseline["traces"]
        )
        modes[mode] = {
            "executed": warm.executed,
            "cache_hits": warm.cache_hits,
            "byte_identical": identical,
        }
        assert warm.executed == 0, f"index {mode}: warm campaign re-executed"
        assert identical, f"index {mode}: rows or artifacts diverged"
    return {"cells": len(cold.rows), "modes": modes}


# -- windowed trace queries -----------------------------------------------------------


def bench_windowed_queries(work: Path) -> dict:
    """Windowed results equal full inflation while touching fewer segments."""
    run = RunSpec(
        index=0,
        scenario=DROM,
        # A longer trace than the identity sweep's, so the small segment
        # size yields plenty of time-windowed segments to skip.
        workload=SyntheticWorkloadRef(
            spec=WorkloadSpec(
                njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=150
            ),
            seed=0,
        ),
        cluster=ClusterRef(nnodes=4),
    )
    result = execute_run(run, trace=True)
    store = TraceStore(work / "traces-windowed", segment_steps=32)
    store.put(run, result)
    steps = list(result.tracer)
    windows = [
        (steps[0].start, steps[len(steps) // 8].end),
        (steps[len(steps) // 2].start, steps[len(steps) // 2 + 4].end),
        (steps[-5].start, steps[-1].end),
    ]
    checked = []
    for lo, hi in windows:
        entry = store.get(run)  # fresh entry: nothing inflated yet
        expected = [s for s in steps if s.start <= hi and s.end >= lo]
        got = TraceReader(entry).steps_between(lo, hi)
        assert got == expected, "windowed query diverged from full inflation"
        assert entry.segments_inflated < len(entry.segments), (
            "windowed query inflated every segment"
        )
        checked.append(
            {
                "window": [lo, hi],
                "matched_steps": len(got),
                "segments_inflated": entry.segments_inflated,
                "segments_total": len(entry.segments),
            }
        )
    return {"steps": len(steps), "windows": checked, "equal_to_full_inflation": True}


def run_harness(out: Path) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-store-scale-") as tmp:
        work = Path(tmp)
        print(f"  seeding {CELLS} synthetic cells ...")
        seed_synthetic_store(work / "synthetic", CELLS)
        scale = bench_scan_and_ls(work / "synthetic")
        print(
            f"  scan: {scale['rebuild_scan_seconds'] * 1e3:8.1f} ms rebuild vs "
            f"{scale['indexed_scan_seconds'] * 1e3:8.1f} ms warm "
            f"({scale['first_replay_seconds'] * 1e3:.1f} ms once-per-process "
            f"replay) -> {scale['scan_speedup']:6.1f}x"
        )
        print(
            f"  ls:   {scale['baseline_ls_seconds'] * 1e3:8.1f} ms baseline vs "
            f"{scale['indexed_ls_seconds'] * 1e3:8.1f} ms indexed "
            f"-> {scale['ls_speedup']:6.1f}x"
        )
        identity = bench_byte_identity(work / "identity")
        print(
            "  byte identity: "
            + ", ".join(
                f"{mode}: executed={m['executed']} identical={m['byte_identical']}"
                for mode, m in identity["modes"].items()
            )
        )
        windows = bench_windowed_queries(work)
        print(
            "  windowed queries: "
            + ", ".join(
                f"{w['matched_steps']} steps from "
                f"{w['segments_inflated']}/{w['segments_total']} segments"
                for w in windows["windows"]
            )
        )
    passed = (
        scale["scan_speedup"] >= SPEEDUP_GATE
        and scale["ls_speedup"] >= SPEEDUP_GATE
        and scale["replay_speedup"] > 1.0  # even a cold replay beats rebuild
        and all(
            m["executed"] == 0 and m["byte_identical"]
            for m in identity["modes"].values()
        )
        and windows["equal_to_full_inflation"]
    )
    report = {
        "gate": {"minimum_speedup": SPEEDUP_GATE, "passed": passed},
        "scale": scale,
        "byte_identity": identity,
        "windowed_queries": windows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nstore scale: scan {scale['scan_speedup']:.1f}x, "
        f"ls {scale['ls_speedup']:.1f}x on {CELLS} cells "
        f"(gate: >= {SPEEDUP_GATE:.0f}x) -> {out}"
    )
    return report


def test_store_scale_gate(report):
    """Pytest entry point: same gate, report lands in benchmarks/results."""
    results = run_harness(Path(__file__).parent / "results" / "BENCH_store.json")
    assert results["gate"]["passed"]
    assert results["scale"]["scan_speedup"] >= SPEEDUP_GATE
    assert results["scale"]["ls_speedup"] >= SPEEDUP_GATE
    report(
        "store_scale",
        f"scan speedup {results['scale']['scan_speedup']:.1f}x, "
        f"ls speedup {results['scale']['ls_speedup']:.1f}x on "
        f"{results['scale']['cells']} cells (gate >= {SPEEDUP_GATE:.0f}x); "
        f"warm campaigns zero-execution and byte-identical with index "
        f"present/deleted/truncated; windowed queries equal full inflation",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Indexed-store scale gate with byte-identity checks."
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_store.json"),
        help="where to write the JSON report (default ./BENCH_store.json)",
    )
    args = parser.parse_args(argv)
    report = run_harness(args.out)
    if not report["gate"]["passed"]:
        print(
            f"FAIL: store-scale gate not met "
            f"(scan {report['scale']['scan_speedup']:.1f}x, "
            f"ls {report['scale']['ls_speedup']:.1f}x, need "
            f">= {SPEEDUP_GATE:.0f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
