"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding Serial/DROM scenarios under ``pytest-benchmark`` timing, prints
the same rows/series the paper plots, and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Callable ``report(name, text)``: print a figure's data and persist it."""

    def _report(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture(scope="session")
def warm_store(results_dir):
    """One shared content-addressed run store for the whole benchmark session.

    The campaign-backed figure sweeps overlap heavily (Figure 8 is a superset
    of Figures 4/6/7, and the benchmark harness re-invokes each sweep for
    timing rounds), so pointing them all at one persistent
    :class:`~repro.results.store.ResultStore` makes a full figure
    regeneration cost a single cold sweep: every later invocation aggregates
    from cache.  The store lives under the gitignored results directory and
    survives sessions — delete it (or ``python -m repro.results gc``) to
    force a re-simulation.
    """
    from repro.results import ResultStore

    return ResultStore(results_dir / "store")


@pytest.fixture(scope="session")
def warm_trace_store(results_dir):
    """The shared trace tier of the benchmark session.

    The trace-based figures (3, 5, 13, 14) read their data through full
    tracers, which the metrics tier deliberately does not persist.  Paired
    with :func:`warm_store` (both tiers share the same content keys), this
    :class:`~repro.traces.store.TraceStore` lets those figures *replay*
    stored traces: after one cold run, a full figure regeneration — and the
    benchmark harness's own timing rounds — simulates zero scenarios.
    ``python -m repro.traces ls`` inspects it; ``gc``/deleting the directory
    forces a re-simulation.
    """
    from repro.traces import TraceStore

    return TraceStore(results_dir / "traces")
