"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding Serial/DROM scenarios under ``pytest-benchmark`` timing, prints
the same rows/series the paper plots, and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Callable ``report(name, text)``: print a figure's data and persist it."""

    def _report(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
