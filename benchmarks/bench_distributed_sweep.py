"""Distributed-sweep gate: orchestrated executors vs the serial baseline.

The distributed execution layer (:mod:`repro.exec`) claims two things, and
this harness gates both:

* **Byte identity.**  A campaign orchestrated across two single-slot local
  executors must reproduce the serial execution exactly — equal
  :class:`RunMetrics` rows, equal aggregated table, and byte-identical
  metrics-tier artifacts under the same content keys.
* **Throughput.**  With two executor slots the sweep must clear **>= 1.6x**
  the serial cells/sec.  The speedup gate is only *enforced* where it can
  physically hold (``os.cpu_count() >= 2`` — on a single-core runner both
  configurations share one core); byte identity is asserted unconditionally.

The harness also exercises crash recovery end to end: one artifact is
deleted from the warm store and ``resume_campaign`` must re-execute exactly
that one cell from the manifest, byte-identically.

Run standalone (the tier-1 suite does not collect ``benchmarks/``)::

    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py \\
        [--out BENCH_distributed.json]

or through pytest alongside the figure benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed_sweep.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import (
    CampaignSpec,
    SyntheticWorkloadRef,
    resume_campaign,
    run_campaign,
)
from repro.exec import LocalPoolExecutor
from repro.obs.telemetry import Telemetry
from repro.results.store import ResultStore, content_key
from repro.workload.generator import WorkloadSpec

SPEEDUP_GATE = 1.6
EXECUTORS = 2

#: Deliberately heavy cells (~0.25 s each): per-cell orchestration overhead
#: (asyncio round trip + RunSpec pickle) must be negligible against real
#: simulation work for the throughput gate to measure anything honest.
SWEEP_WORKLOADS = WorkloadSpec(
    njobs=8,
    iterations=8000,
    work_scale=0.5,
    name="distributed",
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="distributed-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SWEEP_WORKLOADS, seed=seed)
            for seed in range(6)
        ),
    )


def _executor_stats(telemetry: Telemetry) -> list[dict]:
    """The per-executor accounting spans the campaign runner recorded."""
    campaign = telemetry.roots[0]
    return [
        {"attrs": dict(span.attrs), "counters": dict(span.counters)}
        for span in campaign.children
        if span.name == "executor"
    ]


def run_harness(out: Path) -> dict:
    spec = build_spec()
    nruns = spec.nruns
    enforced = (os.cpu_count() or 1) >= EXECUTORS

    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as tmp:
        work = Path(tmp)
        serial_store = ResultStore(work / "serial-store")
        orch_store = ResultStore(work / "orch-store")
        manifest = work / "manifest.jsonl"

        serial_obs = Telemetry()
        serial = run_campaign(
            spec, workers=1, store=serial_store, telemetry=serial_obs
        )
        serial_s = serial_obs.roots[0].duration

        orch_obs = Telemetry()
        orchestrated = run_campaign(
            spec,
            store=orch_store,
            manifest=manifest,
            telemetry=orch_obs,
            executor=[LocalPoolExecutor(slots=1) for _ in range(EXECUTORS)],
        )
        orch_s = orch_obs.roots[0].duration

        # -- byte identity ---------------------------------------------------
        assert orchestrated.rows == serial.rows, "orchestrated rows diverged"
        assert orchestrated.to_table() == serial.to_table()
        assert serial_store.keys() == orch_store.keys()
        for key in serial_store.keys():
            assert (
                serial_store.path_for(key).read_bytes()
                == orch_store.path_for(key).read_bytes()
            ), f"store artifact {key[:12]} diverged"

        # -- crash recovery --------------------------------------------------
        victim = content_key(spec.expand()[0])
        orch_store.remove(victim)
        resumed = run_resume(manifest, orch_store)
        assert resumed.executed == 1, "resume re-executed more than the missing cell"
        assert resumed.cache_hits == nruns - 1
        assert resumed.rows == serial.rows
        assert (
            orch_store.path_for(victim).read_bytes()
            == serial_store.path_for(victim).read_bytes()
        )

        stats = _executor_stats(orch_obs)

    serial_rate = nruns / serial_s if serial_s > 0 else float("inf")
    orch_rate = nruns / orch_s if orch_s > 0 else float("inf")
    speedup = orch_rate / serial_rate if serial_rate > 0 else float("inf")
    passed = speedup >= SPEEDUP_GATE or not enforced
    report = {
        "gate": {
            "minimum_speedup": SPEEDUP_GATE,
            "enforced": enforced,
            "cpu_count": os.cpu_count() or 1,
            "passed": passed,
        },
        "aggregate": {
            "cells": nruns,
            "serial_seconds": serial_s,
            "orchestrated_seconds": orch_s,
            "serial_cells_per_sec": serial_rate,
            "orchestrated_cells_per_sec": orch_rate,
            "speedup": speedup,
            "byte_identical": True,
            "resume_reexecuted": 1,
        },
        "executors": stats,
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{nruns} cells: serial {serial_s:.3f}s ({serial_rate:.2f} cells/s) "
        f"vs {EXECUTORS} orchestrated executors {orch_s:.3f}s "
        f"({orch_rate:.2f} cells/s) -> {speedup:.2f}x "
        f"(gate >= {SPEEDUP_GATE}x, "
        f"{'enforced' if enforced else f'not enforced on {os.cpu_count()} cpu'}); "
        f"byte-identical artifacts, resume re-ran 1 cell -> {out}"
    )
    return report


def run_resume(manifest: Path, store: ResultStore):
    """The resume leg, kept separate so the pytest entry reuses it."""
    return resume_campaign(manifest, store, executor=LocalPoolExecutor(slots=1))


def test_distributed_sweep_gate(report):
    """Pytest entry point: same gate, report lands in benchmarks/results."""
    results = run_harness(Path(__file__).parent / "results" / "BENCH_distributed.json")
    assert results["aggregate"]["byte_identical"]
    assert results["aggregate"]["resume_reexecuted"] == 1
    if results["gate"]["enforced"]:
        assert results["aggregate"]["speedup"] >= SPEEDUP_GATE
    report(
        "distributed_sweep",
        f"{results['aggregate']['cells']} cells, "
        f"{results['aggregate']['speedup']:.2f}x cells/sec at {EXECUTORS} local "
        f"executors (gate >= {SPEEDUP_GATE}x, enforced: "
        f"{results['gate']['enforced']}), byte-identical rows and store "
        f"artifacts, crash resume re-executed exactly the missing cell",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Orchestrated-vs-serial distributed sweep gate."
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_distributed.json"),
        help="where to write the JSON report (default ./BENCH_distributed.json)",
    )
    args = parser.parse_args(argv)
    results = run_harness(args.out)
    if not results["gate"]["passed"]:
        print(
            f"FAIL: speedup {results['aggregate']['speedup']:.2f}x is below "
            f"the {SPEEDUP_GATE}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
