"""Perf-core gate: the batched fast path vs the single-step reference.

The fast-core refactor batches step advancement through the engine, the
runner, the tracer and the stats modules.  This harness is its gate: a
pinned cold sweep over the paper's scenario families runs every cell twice —
once with ``ScenarioRunner(batching=False)`` (the original single-step
reference loop, kept verbatim) and once with the batched default — and

* asserts **byte identity** per cell: equal :class:`RunMetrics` rows, equal
  stored metrics-tier JSON bytes under the same content key, and equal
  trace-tier gzip artifact bytes under the same content key;
* measures wall-clock, steps/sec and events/sec per cell and writes the
  whole report to ``BENCH_core.json``;
* asserts the **aggregate cold-sweep speedup is >= 5x**.

Run standalone (the tier-1 suite does not collect ``benchmarks/``)::

    PYTHONPATH=src python benchmarks/bench_perf_core.py [--out BENCH_core.json]

or through pytest alongside the figure benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_core.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.runner import execute_run, summarise_run
from repro.obs.telemetry import Span, Telemetry
from repro.campaign.spec import (
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    RunSpec,
    SyntheticWorkloadRef,
)
from repro.results.store import ResultStore
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

SPEEDUP_GATE = 5.0

#: The pinned cold-sweep grid: one representative cell per scenario family,
#: each expanded to a Serial and a DROM run.  Everything is seeded/derived —
#: two invocations of the harness execute bit-for-bit identical simulations.
FAMILIES = {
    "insitu": dict(workload=InSituWorkloadRef()),
    "heterogeneous": dict(workload=InSituWorkloadRef(analytics_nodes=1)),
    "high-priority": dict(workload=HighPriorityWorkloadRef()),
    "interference": dict(workload=InSituWorkloadRef(), interference_factor=1.3),
    "synthetic": dict(
        workload=SyntheticWorkloadRef(
            spec=WorkloadSpec(njobs=6, iterations=2000, work_scale=0.3),
            seed=3,
        )
    ),
}


def _timed(run: RunSpec, batching: bool) -> tuple[Span, object]:
    """One cell on the shared telemetry clock/schema (no private timers).

    Returns the closed ``cell`` span — its duration is the wall-clock, its
    ``simulate`` child carries the events/steps/batches counters — plus the
    scenario result.
    """
    obs = Telemetry()
    with obs.span("cell", batching=batching) as cell:
        result = execute_run(run, trace=True, batching=batching, telemetry=obs)
    return cell, result


def _span_seconds(cell: Span) -> dict[str, float]:
    """Per-name wall-clock totals of one cell tree (the report's span block)."""
    totals: dict[str, float] = {}
    for span in cell.walk():
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return dict(sorted(totals.items()))


def run_cell(family: str, run: RunSpec, work_dir: Path) -> dict:
    """Execute one grid cell both ways, check byte identity, report timings."""
    ref_cell, reference = _timed(run, batching=False)
    fast_cell, batched = _timed(run, batching=True)
    ref_seconds = ref_cell.duration
    fast_seconds = fast_cell.duration

    row_ref = summarise_run(run, reference)
    row_fast = summarise_run(run, batched)
    assert row_ref == row_fast, f"{family}/{run.scenario}: RunMetrics diverged"

    cell_dir = work_dir / f"{family}-{run.scenario}"
    metrics_ref = ResultStore(cell_dir / "metrics-ref").put(row_ref)
    metrics_fast = ResultStore(cell_dir / "metrics-fast").put(row_fast)
    assert metrics_ref.name == metrics_fast.name
    assert metrics_ref.read_bytes() == metrics_fast.read_bytes(), (
        f"{family}/{run.scenario}: metrics-tier bytes diverged"
    )
    trace_ref = TraceStore(cell_dir / "traces-ref").put(run, reference)
    trace_fast = TraceStore(cell_dir / "traces-fast").put(run, batched)
    assert trace_ref.name == trace_fast.name
    assert trace_ref.read_bytes() == trace_fast.read_bytes(), (
        f"{family}/{run.scenario}: trace-tier bytes diverged"
    )

    steps = len(batched.tracer)
    events = batched.events_executed
    simulate = fast_cell.find("simulate")[0]
    return {
        "family": family,
        "scenario": run.scenario,
        "reference_seconds": ref_seconds,
        "batched_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
        "steps": steps,
        "steps_per_sec": steps / fast_seconds if fast_seconds > 0 else float("inf"),
        "events": events,
        "events_per_sec": events / fast_seconds if fast_seconds > 0 else float("inf"),
        "reference_events": reference.events_executed,
        "byte_identical": True,
        # Span-schema totals of the batched execution (build vs simulate) and
        # the simulate span's counters — the same names telemetry.json uses.
        "span_seconds": _span_seconds(fast_cell),
        "counters": {key: simulate.counters[key] for key in sorted(simulate.counters)},
        "reference_span_seconds": _span_seconds(ref_cell),
    }


def run_harness(out: Path) -> dict:
    """Run the full gate, write ``out`` and return the report dict."""
    cells = []
    with tempfile.TemporaryDirectory(prefix="bench-perf-core-") as tmp:
        work_dir = Path(tmp)
        for family, kwargs in FAMILIES.items():
            for scenario in (SERIAL, DROM):
                run = RunSpec(index=0, scenario=scenario, **kwargs)
                cell = run_cell(family, run, work_dir)
                cells.append(cell)
                print(
                    f"  {family:>14}/{scenario:<6} "
                    f"ref {cell['reference_seconds']:7.3f}s  "
                    f"batched {cell['batched_seconds']:7.3f}s  "
                    f"{cell['speedup']:5.1f}x  "
                    f"{cell['steps_per_sec']:>9.0f} steps/s  "
                    f"{cell['events_per_sec']:>8.0f} events/s"
                )
    ref_total = sum(c["reference_seconds"] for c in cells)
    fast_total = sum(c["batched_seconds"] for c in cells)
    aggregate = ref_total / fast_total if fast_total > 0 else float("inf")
    span_totals: dict[str, float] = {}
    for cell in cells:
        for name, seconds in cell["span_seconds"].items():
            span_totals[name] = span_totals.get(name, 0.0) + seconds
    report = {
        "gate": {"minimum_speedup": SPEEDUP_GATE, "passed": aggregate >= SPEEDUP_GATE},
        "aggregate": {
            "reference_seconds": ref_total,
            "batched_seconds": fast_total,
            "speedup": aggregate,
            "cells": len(cells),
            "byte_identical": all(c["byte_identical"] for c in cells),
            "span_seconds": dict(sorted(span_totals.items())),
        },
        "cells": cells,
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\ncold sweep: {ref_total:.3f}s reference vs {fast_total:.3f}s batched "
        f"-> {aggregate:.1f}x aggregate speedup over {len(cells)} byte-identical "
        f"cells (gate: >= {SPEEDUP_GATE:.0f}x) -> {out}"
    )
    return report


def test_perf_core_gate(report):
    """Pytest entry point: same gate, report lands in benchmarks/results."""
    results = run_harness(Path(__file__).parent / "results" / "BENCH_core.json")
    assert results["aggregate"]["byte_identical"]
    assert results["aggregate"]["speedup"] >= SPEEDUP_GATE
    lines = [
        f"{c['family']}/{c['scenario']}: {c['speedup']:.1f}x, "
        f"{c['steps_per_sec']:.0f} steps/s, {c['events_per_sec']:.0f} events/s"
        for c in results["cells"]
    ]
    report(
        "perf_core",
        f"aggregate speedup {results['aggregate']['speedup']:.1f}x "
        f"(gate >= {SPEEDUP_GATE:.0f}x), all cells byte-identical\n"
        + "\n".join(lines),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched-vs-reference perf gate with byte-identity checks."
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_core.json"),
        help="where to write the JSON report (default ./BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    report = run_harness(args.out)
    if not report["gate"]["passed"]:
        print(
            f"FAIL: aggregate speedup {report['aggregate']['speedup']:.2f}x "
            f"is below the {SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
