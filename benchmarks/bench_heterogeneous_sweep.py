"""Heterogeneous sweep — mixed-size workloads over backfill × node policies.

The paper's evaluation keeps every job at the full two-node partition; this
benchmark exercises the per-job :class:`~repro.workload.workloads.ResourceRequest`
plumbing at campaign scale: heavy-tailed job sizes (1–4 nodes) with bursty
arrivals on an 8-node partition, swept over the controller's backfill and
node-selection axes.  Determinism is asserted the same way as the uniform
sweep: the pooled execution must reproduce the in-process one byte for byte,
and a warm store re-run must simulate nothing.
"""

from __future__ import annotations

import os

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    SchedulerRef,
    SyntheticWorkloadRef,
    run_campaign,
)
from repro.results import ResultStore
from repro.workload.generator import BURSTY, WorkloadSpec, heavy_tailed_size_mix
from repro.workload.runner import DROM, SERIAL

#: Mixed-size family: most jobs are 1-node, a few span the whole 8-node
#: partition, arriving in bursts of four — the contention pattern backfill
#: and victim selection exist for.
HETERO_WORKLOADS = WorkloadSpec(
    njobs=8,
    arrival=BURSTY,
    burst_size=4,
    mean_interarrival=60.0,
    size_mix=heavy_tailed_size_mix(8),
    work_scale=0.05,
    iterations=16,
    name="hetero",
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="heterogeneous-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=HETERO_WORKLOADS, seed=seed)
            for seed in range(3)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(ClusterRef(nnodes=8, kind="uniform"),),
        schedulers=tuple(
            SchedulerRef(backfill=backfill, node_policy=node_policy)
            for backfill in (False, True)
            for node_policy in (None, "least-allocated")
        ),
    )


def test_heterogeneous_sweep(benchmark, report):
    spec = build_spec()
    workers = min(4, os.cpu_count() or 1)
    pooled = benchmark(run_campaign, spec, workers=workers)
    serial = run_campaign(spec, workers=1)
    assert spec.nruns == 24
    # Determinism: heterogeneous requests don't break the pool contract.
    assert pooled.rows == serial.rows
    assert pooled.to_table() == serial.to_table()

    # Backfill must never leave jobs waiting longer on average: with
    # heavy-tailed sizes a wide job regularly blocks the queue while small
    # jobs could run on the leftover nodes.
    def mean_wait(backfill: bool) -> float:
        waits = [
            value
            for row in pooled.rows
            if row.run.scheduler.backfill is backfill
            for _job, value in row.wait_times
        ]
        return sum(waits) / len(waits)

    fcfs_wait, backfill_wait = mean_wait(False), mean_wait(True)
    assert backfill_wait < fcfs_wait

    text = (
        f"{spec.nruns} runs on {workers} workers "
        f"(identical to the 1-worker execution):\n"
        f"  mean job wait, FCFS:     {fcfs_wait:8.1f} s\n"
        f"  mean job wait, backfill: {backfill_wait:8.1f} s\n\n"
        + pooled.to_table()
    )
    report("heterogeneous_sweep", text)


def test_heterogeneous_sweep_store_roundtrip(tmp_path, report):
    """Warm-store re-run of the mixed-size grid must simulate nothing."""
    spec = build_spec()
    store = ResultStore(tmp_path / "store")
    cold = run_campaign(spec, workers=1, store=store)
    warm = run_campaign(spec, workers=1, store=store)
    assert cold.executed == spec.nruns and cold.cache_hits == 0
    assert warm.executed == 0 and warm.cache_hits == spec.nruns
    assert warm.rows == cold.rows
    report(
        "heterogeneous_sweep_store",
        f"{spec.nruns}-run heterogeneous grid: warm re-run simulated "
        f"{warm.executed}, served {warm.cache_hits} from cache, "
        f"aggregates byte-identical: {warm.rows == cold.rows}",
    )
