"""DROM mechanism overhead — running with DROM enabled but unused.

Section 6 of the paper compares the baseline SLURM and the DROM-enabled SLURM
on exclusive nodes and finds no visible overhead.  This benchmark reproduces
that check (a single NEST job run under both schedulers must take the same
simulated time) and additionally measures the real-world cost of the DROM
primitives themselves (attach, set mask, poll) so the "negligible overhead"
claim is backed by numbers.
"""

from __future__ import annotations

import pytest

from repro.core import DromFlags, NodeSharedMemory, attach_admin
from repro.core.dlb import DlbProcess
from repro.cpuset import CpuSet, NodeTopology
from repro.workload import configs
from repro.workload.runner import run_both_scenarios
from repro.workload.workloads import Workload, WorkloadJob


def test_drom_enabled_scheduler_adds_no_overhead(benchmark, report):
    workload = Workload(
        name="solo NEST Conf. 1",
        jobs=(WorkloadJob(app=configs.nest("Conf. 1"), submit_time=0.0),),
    )
    results = benchmark(run_both_scenarios, workload)
    serial = results["serial"].metrics.total_run_time
    drom = results["drom"].metrics.total_run_time
    report(
        "drom_overhead_scheduler",
        f"single NEST job, baseline SLURM: {serial:.1f} s\n"
        f"single NEST job, DROM SLURM:     {drom:.1f} s\n"
        f"difference: {abs(serial - drom):.3f} s",
    )
    assert drom == pytest.approx(serial, rel=1e-9)


def test_drom_primitive_cost(benchmark):
    """Micro-benchmark of one shrink/poll/expand cycle through the API."""
    node = NodeTopology.marenostrum3()
    shmem = NodeSharedMemory(node)
    proc = DlbProcess(pid=1, shmem=shmem, mask=node.full_mask(), environ={})
    proc.init()
    admin = attach_admin(shmem)
    half = CpuSet.from_range(0, 8)
    full = node.full_mask()

    def cycle():
        admin.set_process_mask(1, half, DromFlags.STEAL)
        proc.poll_drom()
        admin.set_process_mask(1, full, DromFlags.STEAL)
        proc.poll_drom()

    benchmark(cycle)
