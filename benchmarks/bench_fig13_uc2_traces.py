"""Figure 13 — use case 2 traces (cycles/µs) and total run time.

Paper observations asserted: with DROM the high-priority CoreNeuron job starts
immediately (it shares the nodes with NEST), expands when NEST ends, and the
workload's total run time improves (2.5 % in the paper; the analytic model
over-estimates the co-run benefit — see EXPERIMENTS.md — but the direction and
the trace structure are preserved).
"""

from __future__ import annotations

from repro.experiments.usecase2 import run_usecase2


def test_figure13_use_case2_traces(benchmark, report, warm_store, warm_trace_store):
    result = benchmark(
        run_usecase2, store=warm_store, trace_store=warm_trace_store
    )
    text = (
        f"Serial total run time: {result.serial_total_run_time:.0f} s\n"
        f"DROM   total run time: {result.drom_total_run_time:.0f} s\n"
        f"DROM gain: {100 * result.total_run_time_gain:+.1f} %  (paper: +2.5 %)\n\n"
        "Serial scenario (thread count per job over time):\n"
        f"{result.cycles_rendering('serial')}\n\n"
        "DROM scenario:\n"
        f"{result.cycles_rendering('drom')}\n"
    )
    report("fig13_uc2_traces", text)

    assert result.total_run_time_gain > 0.0
    assert result.wait_times()["drom"][result.coreneuron_label] == 0.0
    assert result.coreneuron_expanded()
