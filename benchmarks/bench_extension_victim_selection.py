"""Extension — DROM-aware victim-node selection (the paper's future work).

Section 7 proposes resource-management policies that choose "as 'victim'
nodes the ones with lower utilization" when a malleable job must be
co-allocated.  This benchmark exercises the :mod:`repro.slurm.policies`
extension on a four-node partition: two nodes host a well-utilised simulation,
two host a badly-utilised one (reported through the DROM statistics module).
A new two-node malleable job then arrives, and the benchmark compares where
stock first-fit and the utilisation-aware policy place it.
"""

from __future__ import annotations

from repro.core.stats import StatsModule
from repro.cpuset import CpuSet, ClusterTopology
from repro.experiments.tables import render_table
from repro.slurm import (
    FirstFit,
    JobSpec,
    LowestUtilisationFirst,
    Slurmctld,
    Slurmd,
)


def build_partition():
    """Four MN3 nodes with two running jobs and per-node DROM statistics."""
    cluster = ClusterTopology.marenostrum3(4)
    slurmds = {node.name: Slurmd(node, drom_enabled=True) for node in cluster.nodes}
    stats = {name: StatsModule(slurmd.shmem) for name, slurmd in slurmds.items()}

    # A well-utilised job on nodes 0-1 and a badly-utilised one on nodes 2-3.
    for node_name, pid, utilisation in (
        ("mn3-0", 9001, 0.95), ("mn3-1", 9002, 0.95),
        ("mn3-2", 9003, 0.35), ("mn3-3", 9004, 0.35),
    ):
        slurmds[node_name].shmem.register(pid, CpuSet.from_range(0, 16))
        stats[node_name].record_ownership(pid, 16, 100.0)
        stats[node_name].record_compute(pid, useful_time=16 * 100.0 * utilisation,
                                        idle_time=16 * 100.0 * (1 - utilisation))
    return cluster, stats


def place_with_policies():
    cluster, stats = build_partition()
    placements = {}
    for label, policy in (
        ("first-fit (stock slurmctld)", FirstFit()),
        ("lowest-utilisation victim selection", LowestUtilisationFirst(
            lambda name: stats[name].node_summary().utilisation)),
    ):
        ctld = Slurmctld(cluster, drom_enabled=True, node_policy=policy)
        # Mirror the already-running jobs in the controller's node state: the
        # well-utilised job occupies nodes 0-1, the badly-utilised one 2-3
        # (matching the statistics recorded in build_partition).
        for node_name in ("mn3-0", "mn3-1"):
            ctld.nodes[node_name].running[9100] = (1, 16, True)
        for node_name in ("mn3-2", "mn3-3"):
            ctld.nodes[node_name].running[9200] = (1, 16, True)
        new = ctld.submit(JobSpec(name="new malleable", nodes=2, ntasks=2, cpus_per_task=16), 10.0)
        ctld.schedule(10.0)
        placements[label] = new.allocated_nodes
        utilisations = tuple(
            round(stats[name].node_summary().utilisation, 2) for name in new.allocated_nodes
        )
        placements[label] = (new.allocated_nodes, utilisations)
    return placements


def test_extension_victim_node_selection(benchmark, report):
    placements = benchmark(place_with_policies)
    rows = [
        (label, ", ".join(nodes), ", ".join(str(u) for u in utils))
        for label, (nodes, utils) in placements.items()
    ]
    report(
        "extension_victim_selection",
        render_table(["Node-selection policy", "Victim nodes chosen", "Their utilisation"], rows),
    )

    first_fit_nodes, _ = placements["first-fit (stock slurmctld)"]
    victim_nodes, victim_utils = placements["lowest-utilisation victim selection"]
    # Stock slurmctld shares the first nodes it finds; the DROM-aware policy
    # picks the badly-utilised ones instead.
    assert first_fit_nodes == ("mn3-0", "mn3-1")
    assert victim_nodes == ("mn3-2", "mn3-3")
    assert all(u < 0.5 for u in victim_utils)
