"""Figure 4 — total run time of the NEST + Pils workloads (Serial vs DROM).

Paper observations reproduced and asserted here:

* DROM improves the total run time over the Serial scenario for Pils Conf. 2
  and Conf. 3 (≈5.9 % average in the paper) and is comparable to the
  fully-packed reference Pils Conf. 1;
* DROM never loses to Serial.
"""

from __future__ import annotations

from repro.experiments.tables import render_run_time_figure
from repro.experiments.usecase1 import simulator_pils_run_time


def test_figure4_nest_pils_total_run_time(benchmark, report, warm_store):
    comparisons = benchmark(simulator_pils_run_time, "NEST", store=warm_store)
    report("fig04_nest_pils_runtime", render_run_time_figure(comparisons))

    for c in comparisons:
        assert c.total_run_time_gain >= -0.005, c.workload
        if c.analytics_config in ("Conf. 2", "Conf. 3"):
            assert 0.02 <= c.total_run_time_gain <= 0.15, c.workload
        else:
            assert c.total_run_time_gain <= 0.06, c.workload
