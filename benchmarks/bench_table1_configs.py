"""Table 1 — application configurations, plus the models' reference runtimes.

Regenerates the configuration table and reports each application's standalone
runtime on the two-node partition (the calibration the other figures build
on).
"""

from __future__ import annotations

from repro.cpuset import NodeTopology
from repro.experiments.tables import render_table, render_table1
from repro.workload import configs


def build_table1_with_runtimes():
    node = NodeTopology.marenostrum3()
    apps = [
        configs.nest("Conf. 1"), configs.nest("Conf. 2"),
        configs.coreneuron("Conf. 1"), configs.coreneuron("Conf. 2"),
        configs.pils("Conf. 1"), configs.pils("Conf. 2"), configs.pils("Conf. 3"),
        configs.stream("Conf. 1"),
    ]
    rows = [
        (
            app.label,
            f"{app.config.mpi_ranks} x {app.config.threads_per_rank}",
            f"{app.model.standalone_runtime(app.config, node):.0f}",
        )
        for app in apps
    ]
    return render_table1(), render_table(
        ["Application", "MPI x threads", "Standalone runtime (s)"], rows
    )


def test_table1_configurations(benchmark, report):
    table1, runtimes = benchmark(build_table1_with_runtimes)
    report("table1_configs", table1 + "\n\nCalibrated standalone runtimes:\n" + runtimes)
    assert "2 x 16" in table1
