"""Figure 14 — per-thread IPC histograms of use case 2 (Serial vs DROM).

Paper observation asserted: the Serial and DROM scenarios are comparable in
terms of IPC; the DROM run shows slightly *higher* IPC because each rank runs
on fewer threads with better locality.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.usecase2 import run_usecase2


def test_figure14_use_case2_ipc_histograms(benchmark, report, warm_store, warm_trace_store):
    result = benchmark(
        run_usecase2, store=warm_store, trace_store=warm_trace_store
    )
    lines = []
    for scenario in ("serial", "drom"):
        lines.append(f"{scenario.upper()} IPC histograms (counts per 0.1-wide bin, 0..2):")
        for job, hist in result.ipc_histograms(scenario).items():
            compact = " ".join(f"{int(v):4d}" for v in hist)
            lines.append(f"  {job:22s} {compact}")
        lines.append("")
    lines.append("Mean IPC per job (Serial vs DROM):")
    for job, (serial_ipc, drom_ipc) in result.ipc_comparison().items():
        lines.append(f"  {job:22s} {serial_ipc:.2f}  vs  {drom_ipc:.2f}")
    report("fig14_uc2_ipc_histograms", "\n".join(lines))

    for job, (serial_ipc, drom_ipc) in result.ipc_comparison().items():
        assert abs(drom_ipc - serial_ipc) / serial_ipc <= 0.20, job
        assert drom_ipc >= serial_ipc * 0.98, job
