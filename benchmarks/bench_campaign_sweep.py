"""Campaign sweep — a parallel many-scenario study beyond the paper's setup.

The paper evaluates DROM with a handful of hand-written two-job workloads on
two MN3 nodes.  This benchmark exercises the campaign subsystem at the scale
the ROADMAP asks for: 20 runs (5 seeded synthetic workloads × Serial/DROM ×
two cluster shapes, including a 4-node MN3 partition and a 6-node generic
one), executed through a ``multiprocessing`` worker pool, with a determinism
check that the pooled execution reproduces the serial one byte for byte.
"""

from __future__ import annotations

import os

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    SyntheticWorkloadRef,
    run_campaign,
)
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

#: Generator family: 3-job workloads with Poisson arrivals, scaled down so a
#: 20-run sweep stays benchmark-sized.
SWEEP_WORKLOADS = WorkloadSpec(
    njobs=3,
    mean_interarrival=90.0,
    work_scale=0.05,
    iterations=20,
    name="sweep",
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="campaign-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SWEEP_WORKLOADS, seed=seed) for seed in range(5)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(
            ClusterRef(nnodes=4, kind="mn3"),
            ClusterRef(nnodes=6, kind="uniform"),
        ),
    )


def test_campaign_sweep(benchmark, report):
    spec = build_spec()
    workers = min(4, os.cpu_count() or 1)
    # Only the pooled sweep is timed; the serial baseline runs once, outside
    # the timed region, purely for the determinism check below.
    pooled = benchmark(run_campaign, spec, workers=workers)
    serial = run_campaign(spec, workers=1)
    assert spec.nruns >= 20
    assert max(c.nnodes for c in spec.clusters) >= 4
    # Determinism: the pooled execution reproduces the in-process one exactly.
    assert pooled.rows == serial.rows
    assert pooled.to_table() == serial.to_table()

    text = (
        f"{spec.nruns} runs on {workers} workers "
        f"(identical to the 1-worker execution):\n\n" + pooled.to_table()
    )
    report("campaign_sweep", text)
