"""Campaign sweep — a parallel many-scenario study beyond the paper's setup.

The paper evaluates DROM with a handful of hand-written two-job workloads on
two MN3 nodes.  This benchmark exercises the campaign subsystem at the scale
the ROADMAP asks for: 20 runs (5 seeded synthetic workloads × Serial/DROM ×
two cluster shapes, including a 4-node MN3 partition and a 6-node generic
one), executed through a ``multiprocessing`` worker pool, with a determinism
check that the pooled execution reproduces the serial one byte for byte —
and a warm/cold round trip through the content-addressed result store: the
second sweep must simulate nothing and aggregate byte-identically.
"""

from __future__ import annotations

import os

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    SyntheticWorkloadRef,
    run_campaign,
)
from repro.obs.telemetry import Telemetry
from repro.results import ResultStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

#: Generator family: 3-job workloads with Poisson arrivals, scaled down so a
#: 20-run sweep stays benchmark-sized.
SWEEP_WORKLOADS = WorkloadSpec(
    njobs=3,
    mean_interarrival=90.0,
    work_scale=0.05,
    iterations=20,
    name="sweep",
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="campaign-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SWEEP_WORKLOADS, seed=seed) for seed in range(5)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(
            ClusterRef(nnodes=4, kind="mn3"),
            ClusterRef(nnodes=6, kind="uniform"),
        ),
    )


def test_campaign_sweep(benchmark, report):
    spec = build_spec()
    workers = min(4, os.cpu_count() or 1)
    # Only the pooled sweep is timed; the serial baseline runs once, outside
    # the timed region, purely for the determinism check below.
    pooled = benchmark(run_campaign, spec, workers=workers)
    serial = run_campaign(spec, workers=1)
    assert spec.nruns >= 20
    assert max(c.nnodes for c in spec.clusters) >= 4
    # Determinism: the pooled execution reproduces the in-process one exactly.
    assert pooled.rows == serial.rows
    assert pooled.to_table() == serial.to_table()

    text = (
        f"{spec.nruns} runs on {workers} workers "
        f"(identical to the 1-worker execution):\n\n" + pooled.to_table()
    )
    report("campaign_sweep", text)


def test_campaign_sweep_store_roundtrip(tmp_path, report):
    """Cold vs warm sweep through the result store (ROADMAP: result caching).

    The cold run simulates the whole 20-run grid and populates the store; the
    warm re-run must perform **zero** simulations and still aggregate
    byte-identical metrics.  Reported: the warm/cold wall-clock ratio.
    """
    spec = build_spec()
    store = ResultStore(tmp_path / "store")

    # Both sweeps are timed on the shared telemetry clock/schema: the
    # campaign root span's duration *is* the wall-clock (no private
    # perf_counter bookkeeping).
    cold_obs, warm_obs = Telemetry(), Telemetry()
    cold = run_campaign(spec, workers=1, store=store, telemetry=cold_obs)
    warm = run_campaign(spec, workers=1, store=store, telemetry=warm_obs)
    cold_s = cold_obs.roots[0].duration
    warm_s = warm_obs.roots[0].duration

    assert cold.executed == spec.nruns and cold.cache_hits == 0
    assert warm.executed == 0 and warm.cache_hits == spec.nruns
    # The per-tier breakdown agrees with the aggregate accounting.
    assert warm.metrics_hits == spec.nruns and warm.backfilled == 0
    assert len(store) == spec.nruns
    # Byte-identical aggregation from cache.
    assert warm.rows == cold.rows
    assert warm.to_table() == cold.to_table()

    ratio = warm_s / cold_s if cold_s > 0 else float("nan")
    text = (
        f"{spec.nruns}-run grid, content-addressed store at a fresh root:\n"
        f"  cold sweep (all simulated): {cold_s:8.3f} s\n"
        f"  warm sweep (all cached):    {warm_s:8.3f} s\n"
        f"  warm/cold wall-clock ratio: {ratio:8.4f} "
        f"({1 / ratio:.0f}x speed-up)\n"
        f"  warm run simulations: {warm.executed} (cache hits: {warm.cache_hits})\n"
        f"  warm run {warm.tier_summary()}\n"
        f"  aggregated tables byte-identical: "
        f"{warm.to_table() == cold.to_table()}"
    )
    report("campaign_sweep_store", text)


def test_campaign_shard_merge_roundtrip(tmp_path, report):
    """Distributed execution path (ROADMAP: campaign sharding).

    ``CampaignSpec.shard(n)`` deals the workload axis into balanced shard
    campaigns; each shard runs against its own store (as it would on its own
    host), the shard stores are merged, and a fully-warm run of the *full*
    campaign must simulate nothing and reproduce the single-host execution
    byte for byte.
    """
    spec = build_spec()
    shards = spec.shard(2)
    assert len(shards) == 2
    assert sum(s.nruns for s in shards) == spec.nruns
    # Balanced: the 5 workloads split 3/2.
    assert {len(s.workloads) for s in shards} == {2, 3}

    shard_stores = []
    for i, shard in enumerate(shards):
        store = ResultStore(tmp_path / f"shard-{i}")
        run_campaign(shard, workers=1, store=store)
        shard_stores.append(store)

    merged = ResultStore(tmp_path / "merged")
    copied = sum(merged.merge(store) for store in shard_stores)
    assert copied == spec.nruns == len(merged)

    warm = run_campaign(spec, workers=1, store=merged)
    direct = run_campaign(spec, workers=1)
    assert warm.executed == 0 and warm.cache_hits == spec.nruns
    assert warm.rows == direct.rows
    assert warm.to_table() == direct.to_table()

    text = (
        f"{spec.nruns}-run grid dealt over {len(shards)} shard campaigns "
        f"({' + '.join(str(s.nruns) for s in shards)} runs), merged "
        f"{copied} cells, full-campaign warm run simulated {warm.executed} "
        f"and matched the single-host execution byte for byte."
    )
    report("campaign_shard_merge", text)
