"""Figure 9 — total run time of the CoreNeuron + Pils workloads.

Paper observation asserted: results mirror the NEST workloads — DROM wins
against the Serial scenario for Pils Conf. 2/3 and stays within a few percent
of the packed Conf. 1 reference.
"""

from __future__ import annotations

from repro.experiments.tables import render_run_time_figure
from repro.experiments.usecase1 import simulator_pils_run_time


def test_figure9_coreneuron_pils_total_run_time(benchmark, report, warm_store):
    comparisons = benchmark(simulator_pils_run_time, "CoreNeuron", store=warm_store)
    report("fig09_neuron_pils_runtime", render_run_time_figure(comparisons))

    for c in comparisons:
        assert c.total_run_time_gain >= -0.005, c.workload
        if c.analytics_config in ("Conf. 2", "Conf. 3"):
            assert 0.02 <= c.total_run_time_gain <= 0.15, c.workload
