"""Ablation — DROM shrinking vs plain CPUSET oversubscription.

Section 2 argues against the prior approach of simply re-mapping CPUSETs
without involving the programming model: the running application keeps all
its threads, so co-allocation oversubscribes CPUs and degrades performance.
This benchmark reproduces that comparison: the same co-allocation is run with
a malleable NEST (DROM shrinks its thread team) and with a non-malleable NEST
(its threads keep running on CPUs now shared with the analytics job).
"""

from __future__ import annotations

from repro.apps import nest_model
from repro.experiments.tables import render_table
from repro.runtime.process import ThreadModel
from repro.workload import configs
from repro.workload.runner import ScenarioRunner
from repro.workload.workloads import Workload, WorkloadJob


def build_workload(malleable: bool) -> Workload:
    nest_app = configs.ConfiguredApp(
        app_name="NEST",
        config=configs.NEST_CONFIGS["Conf. 1"],
        model=nest_model(malleable=malleable),
    )
    return Workload(
        name=f"NEST(malleable={malleable}) + Pils Conf. 1",
        jobs=(
            WorkloadJob(app=nest_app, submit_time=0.0, name="NEST Conf. 1"),
            WorkloadJob(app=configs.pils("Conf. 1"), submit_time=120.0,
                        thread_model=ThreadModel.OMPSS, name="Pils Conf. 1"),
        ),
    )


def oversubscription_interference(job: str, node: str, co_runners: list[str]) -> float:
    """Model of the cost of oversubscribed CPUs: when the non-malleable
    simulator shares its CPUs with another job, both time-share the cores
    (the effect the paper cites from the DJSB study)."""
    return 1.6 if co_runners else 1.0


def run_variants():
    out = {}
    # DROM path: the simulator is malleable, no oversubscription, no penalty.
    drom_result = ScenarioRunner(True).run(build_workload(malleable=True))
    out["DROM (shrink via DLB)"] = drom_result.metrics.total_run_time
    # CPUSET-only path: the simulator does not react; while sharing the node
    # the oversubscribed CPUs time-share between the two applications.
    oversub_result = ScenarioRunner(
        True, interference=oversubscription_interference
    ).run(build_workload(malleable=False))
    out["CPUSET oversubscription (no DLB)"] = oversub_result.metrics.total_run_time
    return out


def test_ablation_oversubscription(benchmark, report):
    results = benchmark(run_variants)
    rows = [(label, f"{value:.0f}") for label, value in results.items()]
    report(
        "ablation_oversubscription",
        render_table(["Co-allocation mechanism", "Total run time (s)"], rows),
    )
    assert results["DROM (shrink via DLB)"] < results["CPUSET oversubscription (no DLB)"]
