"""Ablation — DROM shrinking vs plain CPUSET oversubscription.

Section 2 argues against the prior approach of simply re-mapping CPUSETs
without involving the programming model: the running application keeps all
its threads, so co-allocation oversubscribes CPUs and degrades performance.
This benchmark reproduces that comparison through the campaign API: the same
co-allocation is run with a malleable NEST (DROM shrinks its thread team) and
with a non-malleable NEST whose shared steps pay an interference slow-down
(the time-sharing cost the paper cites from the DJSB study).
"""

from __future__ import annotations

from repro.campaign import InSituWorkloadRef, RunSpec, execute_run, summarise_run
from repro.experiments.tables import render_table
from repro.workload.runner import DROM

#: Slow-down of a step executed while the node's CPUs are time-shared.
OVERSUBSCRIPTION_FACTOR = 1.6


def run_variants():
    base = dict(
        simulator="NEST",
        simulator_config="Conf. 1",
        analytics="Pils",
        analytics_config="Conf. 1",
    )
    runs = {
        # DROM path: the simulator is malleable, no oversubscription, no penalty.
        "DROM (shrink via DLB)": RunSpec(
            index=0, scenario=DROM, workload=InSituWorkloadRef(**base)
        ),
        # CPUSET-only path: the simulator does not react; while sharing the
        # node the oversubscribed CPUs time-share between the applications.
        "CPUSET oversubscription (no DLB)": RunSpec(
            index=1,
            scenario=DROM,
            workload=InSituWorkloadRef(
                **base, simulator_kwargs=(("malleable", False),)
            ),
            interference_factor=OVERSUBSCRIPTION_FACTOR,
        ),
    }
    return {
        label: summarise_run(run, execute_run(run)).total_run_time
        for label, run in runs.items()
    }


def test_ablation_oversubscription(benchmark, report):
    results = benchmark(run_variants)
    rows = [(label, f"{value:.0f}") for label, value in results.items()]
    report(
        "ablation_oversubscription",
        render_table(["Co-allocation mechanism", "Total run time (s)"], rows),
    )
    assert results["DROM (shrink via DLB)"] < results["CPUSET oversubscription (no DLB)"]
