"""Append the current ``BENCH_*.json`` reports to ``benchmarks/history.jsonl``.

Each report distils to one schema-versioned row (gate name, pass/fail,
headline speedup, aggregate span seconds, commit) via
:mod:`repro.obs.bench`; re-running over unchanged reports appends nothing.
Print the trajectory (and flag >20% regressions) with::

    PYTHONPATH=src python -m repro.obs bench report

Usage::

    PYTHONPATH=src python benchmarks/history.py [--results DIR] [--history FILE]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.obs.bench import append_history, history_row

RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_PATH = Path(__file__).parent / "history.jsonl"


def current_commit(repo: Path) -> str | None:
    """The checkout's short commit id, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def scan_reports(results: Path, commit: str | None) -> list[dict]:
    """One history row per readable ``BENCH_<gate>.json`` in ``results``.

    The gate name is the filename stem after the ``BENCH_`` prefix; the
    row's timestamp is the report file's mtime (no wall-clock read, so a
    re-scan of unchanged reports builds identical rows)."""
    rows = []
    for path in sorted(results.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
            continue
        gate = path.stem[len("BENCH_"):]
        rows.append(
            history_row(
                gate,
                report,
                commit=commit,
                timestamp=int(path.stat().st_mtime),
            )
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_DIR,
        help=f"directory holding BENCH_*.json (default {RESULTS_DIR})",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=HISTORY_PATH,
        help=f"history file to append to (default {HISTORY_PATH})",
    )
    args = parser.parse_args(argv)
    rows = scan_reports(args.results, current_commit(args.results.parent))
    if not rows:
        print(f"no BENCH_*.json reports under {args.results}")
        return 0
    appended = append_history(args.history, rows)
    print(
        f"{len(rows)} report(s) scanned, {appended} new row(s) appended "
        f"to {args.history}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
