"""Figure 7 — NEST + STREAM: total run time (left) and response times (right).

Paper observations asserted: the total run time is *always* better with DROM
(1.84 % on average, up to 3.5 % for NEST in the paper) because a memory-bound
and a compute-bound application share the nodes well; STREAM's response time
drops by ~92 % while NEST's grows at most ~6.7 %.
"""

from __future__ import annotations

from repro.experiments.tables import render_response_figure, render_run_time_figure
from repro.experiments.usecase1 import simulator_stream


def test_figure7_nest_stream(benchmark, report, warm_store):
    comparisons = benchmark(simulator_stream, "NEST", store=warm_store)
    text = (
        "Total run time:\n" + render_run_time_figure(comparisons)
        + "\n\nResponse times:\n" + render_response_figure(comparisons)
    )
    report("fig07_nest_stream", text)

    for c in comparisons:
        assert 0.0 < c.total_run_time_gain <= 0.12, c.workload
        assert c.analytics_response_reduction >= 0.85, c.workload
        assert c.simulator_response_change <= 0.07, c.workload
