"""Figure 10 — individual response times of CoreNeuron and Pils."""

from __future__ import annotations

from repro.experiments.tables import render_response_figure
from repro.experiments.usecase1 import simulator_pils_response


def test_figure10_coreneuron_pils_response_times(benchmark, report, warm_store):
    comparisons = benchmark(simulator_pils_response, "CoreNeuron", store=warm_store)
    report("fig10_neuron_pils_response", render_response_figure(comparisons))

    for c in comparisons:
        assert c.analytics_response_reduction >= 0.80, c.workload
        assert c.simulator_response_change <= 0.09, c.workload
