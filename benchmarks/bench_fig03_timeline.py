"""Figure 3 — in-situ analytics timeline (Serial vs DROM schematic).

Regenerates the schematic from real simulated runs: in the Serial scenario the
analytics only starts when the simulation ends; with DROM it starts at
submission, borrowing part of the simulation's CPUs, which it returns when it
finishes.
"""

from __future__ import annotations

from repro.experiments.usecase1 import scenario_timelines


def test_figure3_timelines(benchmark, report):
    timelines = benchmark(scenario_timelines)
    serial, drom = timelines["serial"], timelines["drom"]
    text = (
        "Serial scenario (analytics waits for the simulation):\n"
        f"{serial.rendering}\n"
        f"intervals: {serial.job_intervals}\n\n"
        "DROM scenario (analytics co-allocated immediately):\n"
        f"{drom.rendering}\n"
        f"intervals: {drom.job_intervals}\n"
    )
    report("fig03_timeline", text)

    nest_serial = serial.job_intervals["NEST Conf. 1"]
    pils_serial = serial.job_intervals["Pils Conf. 2"]
    nest_drom = drom.job_intervals["NEST Conf. 1"]
    pils_drom = drom.job_intervals["Pils Conf. 2"]
    assert pils_serial[0] >= nest_serial[1] - 1e-6     # serial: strictly after
    assert pils_drom[0] < nest_drom[1]                  # drom: overlapping
