"""Figure 3 — in-situ analytics timeline (Serial vs DROM schematic).

Regenerates the schematic from real simulated runs: in the Serial scenario the
analytics only starts when the simulation ends; with DROM it starts at
submission, borrowing part of the simulation's CPUs, which it returns when it
finishes.  Reads through both store tiers: after the first cold run, the
timelines replay from the shared warm trace store without simulating.
"""

from __future__ import annotations

from repro.experiments.usecase1 import scenario_timelines


def test_figure3_timelines(benchmark, report, warm_store, warm_trace_store):
    timelines = benchmark(
        scenario_timelines, store=warm_store, trace_store=warm_trace_store
    )
    serial, drom = timelines["serial"], timelines["drom"]
    text = (
        "Serial scenario (analytics waits for the simulation):\n"
        f"{serial.rendering}\n"
        f"intervals: {serial.job_intervals}\n\n"
        "DROM scenario (analytics co-allocated immediately):\n"
        f"{drom.rendering}\n"
        f"intervals: {drom.job_intervals}\n"
    )
    report("fig03_timeline", text)

    nest_serial = serial.job_intervals["NEST Conf. 1"]
    pils_serial = serial.job_intervals["Pils Conf. 2"]
    nest_drom = drom.job_intervals["NEST Conf. 1"]
    pils_drom = drom.job_intervals["Pils Conf. 2"]
    assert pils_serial[0] >= nest_serial[1] - 1e-6     # serial: strictly after
    assert pils_drom[0] < nest_drom[1]                  # drom: overlapping
