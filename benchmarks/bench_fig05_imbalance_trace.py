"""Figure 5 — per-thread utilisation of NEST after DROM removes one thread.

The paper's trace shows that when thread 16 is removed, its statically
partitioned data is computed by the first 4 threads while the others report
lower utilisation (idle gaps).  The benchmark regenerates the per-thread
utilisation and the ASCII timeline, reading through the warm trace store
(zero simulations after the first cold run).
"""

from __future__ import annotations

from repro.experiments.usecase1 import imbalance_trace


def test_figure5_static_partition_imbalance(benchmark, report, warm_store, warm_trace_store):
    trace = benchmark(
        imbalance_trace, store=warm_store, trace_store=warm_trace_store
    )
    lines = [f"workload: {trace.workload}", "", "utilisation during the shrunk window:"]
    lines += [f"  thread {t:2d}: {u:.2f}" for t, u in trace.shrunk_utilisation.items()]
    lines += [
        "",
        f"threads absorbing the orphaned chunks: {trace.overloaded_threads}",
        f"threads with idle time:               {trace.underloaded_threads}",
        "",
        "per-thread activity timeline (rank 0):",
        trace.rendering,
    ]
    report("fig05_imbalance_trace", "\n".join(lines))

    assert len(trace.overloaded_threads) == 4
    assert len(trace.underloaded_threads) == 11
    assert trace.mask_changes >= 2
