"""Ablation — NEST's static data partition vs a fully malleable NEST.

Section 6.1 attributes the residual DROM overhead to NEST's static data
partition and notes that "a fully malleable NEST version that doesn't
partition data according to initial number of threads would improve this
result".  This benchmark quantifies exactly that: the same NEST + Pils
workload is run with the default (statically partitioned) NEST and with a
fully malleable variant (``chunks_per_thread=0``).
"""

from __future__ import annotations

from repro.apps import nest_model
from repro.experiments.tables import render_table
from repro.metrics.collect import relative_improvement
from repro.runtime.process import ThreadModel
from repro.workload import configs
from repro.workload.runner import run_both_scenarios
from repro.workload.workloads import Workload, WorkloadJob


def build_workload(chunks_per_thread: int) -> Workload:
    nest_app = configs.ConfiguredApp(
        app_name="NEST",
        config=configs.NEST_CONFIGS["Conf. 1"],
        model=nest_model(chunks_per_thread=chunks_per_thread),
    )
    pils_app = configs.pils("Conf. 2")
    return Workload(
        name=f"NEST(chunks={chunks_per_thread}) + Pils Conf. 2",
        jobs=(
            WorkloadJob(app=nest_app, submit_time=0.0, name="NEST Conf. 1"),
            WorkloadJob(app=pils_app, submit_time=120.0, thread_model=ThreadModel.OMPSS,
                        name="Pils Conf. 2"),
        ),
    )


def run_variants():
    out = {}
    for label, chunks in (("static partition (real NEST)", 4), ("fully malleable NEST", 0)):
        results = run_both_scenarios(build_workload(chunks))
        serial, drom = results["serial"], results["drom"]
        out[label] = {
            "serial": serial.metrics.total_run_time,
            "drom": drom.metrics.total_run_time,
            "gain": relative_improvement(
                serial.metrics.total_run_time, drom.metrics.total_run_time
            ),
            "nest_penalty": (
                drom.metrics.job("NEST Conf. 1").response_time
                / serial.metrics.job("NEST Conf. 1").response_time
                - 1.0
            ),
        }
    return out


def test_ablation_static_partition(benchmark, report):
    results = benchmark(run_variants)
    rows = [
        (label, f"{r['serial']:.0f}", f"{r['drom']:.0f}",
         f"{100 * r['gain']:+.1f}%", f"{100 * r['nest_penalty']:+.1f}%")
        for label, r in results.items()
    ]
    report(
        "ablation_static_partition",
        render_table(
            ["NEST variant", "Serial (s)", "DROM (s)", "DROM gain", "NEST response penalty"],
            rows,
        ),
    )

    static = results["static partition (real NEST)"]
    malleable = results["fully malleable NEST"]
    # A fully malleable NEST pays a smaller penalty and the DROM gain grows —
    # the paper's prediction.
    assert malleable["nest_penalty"] < static["nest_penalty"]
    assert malleable["gain"] >= static["gain"]
