"""Ablation — NEST's static data partition vs a fully malleable NEST.

Section 6.1 attributes the residual DROM overhead to NEST's static data
partition and notes that "a fully malleable NEST version that doesn't
partition data according to initial number of threads would improve this
result".  This benchmark quantifies exactly that through one campaign grid:
the same NEST + Pils workload with the default (statically partitioned) NEST
and with a fully malleable variant (``chunks_per_thread=0``), each under both
scenarios.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, InSituWorkloadRef, run_campaign
from repro.experiments.tables import render_table
from repro.metrics.collect import relative_improvement
from repro.workload.runner import DROM, SERIAL

VARIANTS = (
    ("static partition (real NEST)", 4),
    ("fully malleable NEST", 0),
)


def build_ref(chunks_per_thread: int) -> InSituWorkloadRef:
    return InSituWorkloadRef(
        simulator="NEST",
        simulator_config="Conf. 1",
        analytics="Pils",
        analytics_config="Conf. 2",
        simulator_kwargs=(("chunks_per_thread", chunks_per_thread),),
    )


def run_variants():
    refs = {label: build_ref(chunks) for label, chunks in VARIANTS}
    campaign = run_campaign(
        CampaignSpec(
            name="ablation-static-partition",
            workloads=tuple(refs.values()),
            scenarios=(SERIAL, DROM),
        )
    )
    cells = {cell[SERIAL].run.workload: cell for cell in campaign.scenario_pairs()}
    out = {}
    for label, ref in refs.items():
        serial, drom = cells[ref][SERIAL], cells[ref][DROM]
        out[label] = {
            "serial": serial.total_run_time,
            "drom": drom.total_run_time,
            "gain": relative_improvement(serial.total_run_time, drom.total_run_time),
            "nest_penalty": (
                drom.response_time("NEST Conf. 1")
                / serial.response_time("NEST Conf. 1")
                - 1.0
            ),
        }
    return out


def test_ablation_static_partition(benchmark, report):
    results = benchmark(run_variants)
    rows = [
        (label, f"{r['serial']:.0f}", f"{r['drom']:.0f}",
         f"{100 * r['gain']:+.1f}%", f"{100 * r['nest_penalty']:+.1f}%")
        for label, r in results.items()
    ]
    report(
        "ablation_static_partition",
        render_table(
            ["NEST variant", "Serial (s)", "DROM (s)", "DROM gain", "NEST response penalty"],
            rows,
        ),
    )

    static = results["static partition (real NEST)"]
    malleable = results["fully malleable NEST"]
    # A fully malleable NEST pays a smaller penalty and the DROM gain grows —
    # the paper's prediction.
    assert malleable["nest_penalty"] < static["nest_penalty"]
    assert malleable["gain"] >= static["gain"]
