"""Figure 8 — average response time of all NEST workloads (Serial vs DROM).

Paper observation asserted: the DROM scenario improves the average response
time by 37–48 % for every NEST workload.
"""

from __future__ import annotations

from repro.experiments.tables import render_average_response_figure
from repro.experiments.usecase1 import simulator_average_response


def test_figure8_nest_average_response(benchmark, report, warm_store):
    comparisons = benchmark(simulator_average_response, "NEST", store=warm_store)
    report("fig08_nest_avg_response", render_average_response_figure(comparisons))

    for c in comparisons:
        assert 0.30 <= c.average_response_gain <= 0.55, c.workload
