"""Figure 12 — average response time of all CoreNeuron workloads.

Paper observation asserted: DROM improves the average response time of every
CoreNeuron workload by ≈46.5 % on average (never below ~37 %).
"""

from __future__ import annotations

from repro.experiments.tables import render_average_response_figure
from repro.experiments.usecase1 import simulator_average_response


def test_figure12_coreneuron_average_response(benchmark, report, warm_store):
    comparisons = benchmark(simulator_average_response, "CoreNeuron", store=warm_store)
    report("fig12_neuron_avg_response", render_average_response_figure(comparisons))

    gains = [c.average_response_gain for c in comparisons]
    assert all(0.30 <= g <= 0.55 for g in gains)
    assert 0.38 <= sum(gains) / len(gains) <= 0.52
