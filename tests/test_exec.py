"""Tests of distributed campaign execution: executors, orchestrator,
manifests, the subprocess worker protocol and Slurm submission."""

from __future__ import annotations

import asyncio
import io
import json
import logging

import pytest

from repro.campaign import (
    CampaignSpec,
    SyntheticWorkloadRef,
    execute_runs,
    resume_campaign,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_cli
from repro.campaign.runner import _execute_and_summarise
from repro.exec import (
    DONE,
    FAILED,
    PENDING,
    CampaignExecutionError,
    CampaignManifest,
    Executor,
    ExecutorDied,
    ExecutorError,
    LocalPoolExecutor,
    SSHExecutor,
    SlurmArrayExecutor,
    WorkerContext,
    orchestrate,
    worker_pool,
)
from repro.exec.local import pool_worker
from repro.exec.worker import main as worker_cli
from repro.exec.worker import serve_stream
from repro.obs.progress import ProgressLine
from repro.results.store import ResultStore, content_key, spec_contents
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec

#: Cheap synthetic family (same as test_campaign's).
SMALL = WorkloadSpec(njobs=3, mean_interarrival=90.0, work_scale=0.04, iterations=16)


def small_sweep(nworkloads: int = 2, **kwargs) -> CampaignSpec:
    defaults = dict(
        name="exec-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SMALL, seed=i) for i in range(nworkloads)
        ),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


@pytest.fixture(scope="module")
def serial_result():
    """The reference serial aggregation every distributed path must match."""
    return run_campaign(small_sweep())


class _InProcessExecutor(Executor):
    """Test backend: executes cells in-process, with scriptable failures."""

    writes_store = True

    def __init__(self, name: str = "scripted", slots: int = 1) -> None:
        self.name = name
        self.slots = slots
        self.calls: list[int] = []

    async def run_cell(self, run):
        self.calls.append(run.index)
        context = self.context
        return _execute_and_summarise(
            run,
            sinks=context.sinks,
            trace_store=context.trace_store,
            store=context.store,
            clock_factory=context.clock_factory,
        )


class _FlakyExecutor(_InProcessExecutor):
    """Fails every cell's first attempt with a transient error."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.failed: set[int] = set()

    async def run_cell(self, run):
        if run.index not in self.failed:
            self.failed.add(run.index)
            raise ExecutorError(f"flaky failure on cell {run.index}")
        return await super().run_cell(run)


class _DyingExecutor(_InProcessExecutor):
    """Completes ``survive`` cells, then dies terminally."""

    def __init__(self, survive: int = 0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.survive = survive

    async def run_cell(self, run):
        if len(self.calls) >= self.survive:
            raise ExecutorDied("simulated hard death")
        return await super().run_cell(run)


class _SlowOnceExecutor(_InProcessExecutor):
    """Every cell's first attempt hangs (forcing a timeout); retries run."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.hung: set[int] = set()

    async def run_cell(self, run):
        if run.index not in self.hung:
            self.hung.add(run.index)
            await asyncio.sleep(60.0)
        return await super().run_cell(run)


class TestManifest:
    def test_begin_and_replay_roundtrip(self, tmp_path):
        runs = small_sweep().expand()
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        manifest.begin("sweep", runs)
        state = manifest.replay()
        assert state.name == "sweep"
        assert state.total == len(runs)
        assert set(state.states.values()) == {PENDING}
        rebuilt = state.runs()
        assert [r.index for r in rebuilt] == [r.index for r in runs]
        assert [spec_contents(r) for r in rebuilt] == [spec_contents(r) for r in runs]

    def test_last_state_wins_and_done_sets(self, tmp_path):
        runs = small_sweep().expand()
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        manifest.begin("sweep", runs)
        keys = [content_key(r) for r in runs]
        manifest.record(keys[0], DONE, index=0, executor="local[1]")
        manifest.record(keys[1], FAILED, index=1, error="boom")
        manifest.record(keys[1], DONE, index=1)
        state = manifest.replay()
        assert state.states[keys[0]] == DONE
        assert state.states[keys[1]] == DONE
        assert state.done == {keys[0], keys[1]}
        assert state.unfinished == set(keys[2:])

    def test_begin_again_never_duplicates_or_regresses(self, tmp_path):
        runs = small_sweep().expand()
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        manifest.begin("sweep", runs)
        key = content_key(runs[0])
        manifest.record(key, DONE, index=0)
        manifest.begin("sweep", runs)  # a restart
        state = manifest.replay()
        assert state.states[key] == DONE  # not regressed to pending
        assert len(state.cells) == len(runs)  # no duplicate identities

    def test_replay_tolerates_truncated_final_line(self, tmp_path):
        runs = small_sweep().expand()
        path = tmp_path / "m.jsonl"
        manifest = CampaignManifest(path)
        manifest.begin("sweep", runs)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"record": "cell", "state": "done", "ke')  # crash
        state = manifest.replay()
        assert len(state.cells) == len(runs)
        assert set(state.states.values()) == {PENDING}

    def test_replay_rejects_future_versions(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"record": "campaign", "version": 99, "name": "x"}) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            CampaignManifest(path).replay()

    def test_missing_file_is_empty_state(self, tmp_path):
        state = CampaignManifest(tmp_path / "absent.jsonl").replay()
        assert state.cells == {} and state.states == {}


class TestStoreScan:
    def test_result_store_scan_matches_keys(self, tmp_path, serial_result):
        store = ResultStore(tmp_path / "store")
        assert store.scan() == frozenset()
        for row in serial_result.rows:
            store.put(row)
        assert store.keys() == sorted(store.scan())
        assert len(store) == len(serial_result.rows)
        assert store.scan() == {content_key(r.run) for r in serial_result.rows}

    def test_trace_store_scan(self, tmp_path):
        trace_store = TraceStore(tmp_path / "traces")
        assert trace_store.scan() == frozenset()
        from repro.campaign.runner import execute_run

        run = small_sweep().expand()[0]
        trace_store.put(run, execute_run(run, trace=True))
        assert trace_store.scan() == {content_key(run)}
        assert trace_store.keys() == [content_key(run)]
        assert len(trace_store) == 1

    def test_scan_ignores_temp_and_foreign_files(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / ".abc.123.tmp").write_text("x")
        (root / "README.txt").write_text("x")
        (root / "deadbeef.json").write_text("{}")
        assert ResultStore(root).scan() == {"deadbeef"}


class TestLocalPoolExecutor:
    def test_orchestrated_rows_match_serial(self, tmp_path, serial_result):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            small_sweep(),
            store=store,
            executor=[LocalPoolExecutor(slots=1), LocalPoolExecutor(slots=1)],
        )
        assert result.executed == len(result.rows)
        assert result.rows == serial_result.rows
        assert len(store) == len(result.rows)

    def test_worker_pool_initializer_ships_context_once(self, tmp_path):
        # Satellite of the executor work: the plain pooled path binds the
        # campaign context through the pool initializer, so per cell only
        # the RunSpec crosses the wire.
        store = ResultStore(tmp_path / "store")
        runs = small_sweep().expand()
        context = WorkerContext(store=store)
        with worker_pool(2, context) as pool:
            rows = [row for row, _ in pool.map(pool_worker, runs)]
        assert [r.run.index for r in rows] == [r.index for r in runs]
        assert len(store) == len(runs)

    def test_pool_worker_requires_initialised_context(self):
        run = small_sweep().expand()[0]
        with pytest.raises(RuntimeError, match="not initialised"):
            pool_worker(run)

    def test_pooled_run_campaign_matches_serial(self, tmp_path, serial_result):
        result = run_campaign(small_sweep(), workers=2)
        assert result.rows == serial_result.rows

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            LocalPoolExecutor(slots=0)


class TestOrchestratorFaults:
    def test_flaky_executor_retries_with_backoff(self, serial_result):
        flaky = _FlakyExecutor()
        runs = small_sweep().expand()
        outcome = orchestrate(
            runs, [flaky], WorkerContext(), retries=2, backoff=0.001
        )
        rows = sorted((row for row, _ in outcome.results), key=lambda r: r.run.index)
        assert tuple(rows) == serial_result.rows
        stats = outcome.stats["scripted"]
        assert stats.retried == len(runs)
        assert stats.completed == len(runs)

    def test_dead_executor_degrades_to_survivors(self, caplog, serial_result):
        dying = _DyingExecutor(survive=1, name="dying")
        healthy = _InProcessExecutor(name="healthy")
        runs = small_sweep().expand()
        with caplog.at_level(logging.WARNING, logger="repro"):
            outcome = orchestrate(
                runs, [dying, healthy], WorkerContext(), backoff=0.001
            )
        rows = sorted((row for row, _ in outcome.results), key=lambda r: r.run.index)
        assert tuple(rows) == serial_result.rows
        assert outcome.stats["dying"].died
        assert outcome.stats["dying"].requeued >= 1
        assert not outcome.stats["healthy"].died
        assert outcome.stats["healthy"].completed >= len(runs) - 1
        assert any("died" in r.getMessage() for r in caplog.records)

    def test_all_executors_dead_aborts(self):
        runs = small_sweep().expand()
        with pytest.raises(CampaignExecutionError, match="all executors died"):
            orchestrate(
                runs,
                [_DyingExecutor(name="d1"), _DyingExecutor(name="d2")],
                WorkerContext(),
            )

    def test_retry_budget_exhaustion_raises_with_failures(self):
        class _AlwaysFailing(_InProcessExecutor):
            async def run_cell(self, run):
                raise ExecutorError("permanently broken cell")

        runs = small_sweep().expand()
        with pytest.raises(CampaignExecutionError) as excinfo:
            orchestrate(
                runs, [_AlwaysFailing()], WorkerContext(), retries=1, backoff=0.001
            )
        assert len(excinfo.value.failures) == len(runs)
        assert "retry budget" in str(excinfo.value)

    def test_cell_timeout_cancels_and_retries(self, serial_result):
        slow = _SlowOnceExecutor()
        runs = small_sweep().expand()
        outcome = orchestrate(
            runs,
            [slow],
            WorkerContext(),
            timeout=0.1,
            retries=2,
            backoff=0.001,
        )
        rows = sorted((row for row, _ in outcome.results), key=lambda r: r.run.index)
        assert tuple(rows) == serial_result.rows
        assert outcome.stats["scripted"].timeouts == len(runs)

    def test_duplicate_executor_names_are_disambiguated(self):
        outcome = orchestrate(
            small_sweep(nworkloads=1).expand(),
            [_InProcessExecutor(), _InProcessExecutor()],
            WorkerContext(),
        )
        assert set(outcome.stats) == {"scripted", "scripted#2"}

    def test_status_callback_reports_in_flight_and_queue(self):
        seen: list[tuple[dict, int]] = []
        orchestrate(
            small_sweep().expand(),
            [_InProcessExecutor()],
            WorkerContext(),
            on_status=lambda busy, depth: seen.append((dict(busy), depth)),
        )
        assert any(busy.get("scripted") == 1 for busy, _ in seen)
        assert any(depth > 0 for _, depth in seen)

    def test_no_executors_rejected(self):
        with pytest.raises(ValueError, match="at least one executor"):
            orchestrate([], [], WorkerContext())


class TestResume:
    def test_resume_after_partial_execution_runs_only_missing(
        self, tmp_path, serial_result
    ):
        spec = small_sweep()
        runs = spec.expand()
        store = ResultStore(tmp_path / "store")
        manifest = CampaignManifest(tmp_path / "m.jsonl")
        # Simulate a campaign killed mid-shard: the manifest was begun and
        # one cell's artifacts landed before the crash.
        manifest.begin(spec.name, runs)
        _execute_and_summarise(runs[0], store=store)
        manifest.record(content_key(runs[0]), DONE, index=0)
        result = resume_campaign(manifest.path, store)
        assert result.executed == len(runs) - 1
        assert result.cache_hits == 1
        assert result.rows == serial_result.rows
        assert CampaignManifest(manifest.path).replay().done == {
            content_key(r) for r in runs
        }

    def test_resume_ignores_stale_done_lines(self, tmp_path, serial_result):
        # The store tiers are the ground truth: a cell journalled done whose
        # store entry has been deleted re-executes on resume.
        spec = small_sweep()
        store = ResultStore(tmp_path / "store")
        manifest_path = tmp_path / "m.jsonl"
        run_campaign(spec, store=store, manifest=manifest_path)
        victim = spec.expand()[0]
        store.remove(content_key(victim))
        result = resume_campaign(manifest_path, store)
        assert result.executed == 1
        assert result.cache_hits == len(spec.expand()) - 1
        assert result.rows == serial_result.rows

    def test_crash_then_resume_store_bytes_identical(self, tmp_path):
        # A hard mid-campaign death (executor dies with cells outstanding)
        # then a resume must produce the same store artifacts, byte for
        # byte, as one uninterrupted serial campaign.
        spec = small_sweep()
        crashed_store = ResultStore(tmp_path / "crashed")
        manifest_path = tmp_path / "m.jsonl"
        with pytest.raises(CampaignExecutionError):
            run_campaign(
                spec,
                store=crashed_store,
                manifest=manifest_path,
                executor=_DyingExecutor(survive=2),
            )
        survivors = len(crashed_store)
        assert 0 < survivors < spec.nruns
        result = resume_campaign(
            manifest_path, crashed_store, executor=LocalPoolExecutor(slots=1)
        )
        assert result.executed == spec.nruns - survivors
        clean_store = ResultStore(tmp_path / "clean")
        run_campaign(spec, store=clean_store)
        assert crashed_store.keys() == clean_store.keys()
        for key in clean_store.keys():
            assert (
                crashed_store.path_for(key).read_bytes()
                == clean_store.path_for(key).read_bytes()
            )

    def test_resume_requires_store_and_cells(self, tmp_path):
        with pytest.raises(ValueError, match="result store"):
            resume_campaign(tmp_path / "m.jsonl", None)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="no cells"):
            resume_campaign(empty, ResultStore(tmp_path / "store"))


class TestWorkerProtocol:
    def _stream(self, requests: list[dict]) -> list[dict]:
        stdin = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests)
        )
        stdout = io.StringIO()
        code = serve_stream(stdin, stdout)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        return code, responses

    def test_stream_mode_executes_and_ships_rows(self, tmp_path, serial_result):
        runs = small_sweep().expand()
        code, responses = self._stream(
            [{"op": "config", "store": str(tmp_path / "store")}]
            + [
                {"op": "run", "index": r.index, "run": spec_contents(r)}
                for r in runs
            ]
            + [{"op": "shutdown"}]
        )
        assert code == 0
        assert responses[0] == {"ok": True, "op": "config"}
        assert responses[-1] == {"ok": True, "op": "shutdown"}
        from repro.results.store import metrics_from_payload

        rows = tuple(
            metrics_from_payload(run, resp["row"])
            for run, resp in zip(runs, responses[1:-1])
        )
        assert all(resp["ok"] for resp in responses[1:-1])
        assert rows == serial_result.rows
        assert len(ResultStore(tmp_path / "store")) == len(runs)

    def test_stream_mode_cell_failure_keeps_serving(self):
        run = small_sweep().expand()[0]
        bad = dict(spec_contents(run), scenario="not-a-scenario")
        code, responses = self._stream(
            [
                {"op": "config"},
                {"op": "run", "index": 0, "run": bad},
                {"op": "run", "index": 1, "run": spec_contents(run)},
                {"op": "shutdown"},
            ]
        )
        assert code == 0
        assert responses[1]["ok"] is False and "error" in responses[1]
        assert responses[2]["ok"] is True

    def test_stream_mode_malformed_request_is_fatal(self):
        stdin = io.StringIO("this is not json\n")
        stdout = io.StringIO()
        assert serve_stream(stdin, stdout) == 2

    def test_batch_mode_executes_one_cell_and_journals(self, tmp_path):
        runs = small_sweep().expand()
        cells = tmp_path / "cells.jsonl"
        cells.write_text(
            "".join(
                json.dumps({"index": r.index, "run": spec_contents(r)}) + "\n"
                for r in runs
            )
        )
        manifest = tmp_path / "m.jsonl"
        code = worker_cli(
            [
                "--cells", str(cells),
                "--offset", "1",
                "--index", "1",
                "--store", str(tmp_path / "store"),
                "--manifest", str(manifest),
            ]
        )
        assert code == 0
        executed = runs[2]
        store = ResultStore(tmp_path / "store")
        assert store.keys() == [content_key(executed)]
        state = CampaignManifest(manifest).replay()
        assert state.states[content_key(executed)] == DONE

    def test_batch_mode_out_of_range_position(self, tmp_path, capsys):
        cells = tmp_path / "cells.jsonl"
        cells.write_text("")
        assert worker_cli(["--cells", str(cells), "--index", "5"]) == 2


class TestSSHExecutor:
    def test_loopback_campaign_matches_serial(self, tmp_path, serial_result):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            small_sweep(), store=store, executor=SSHExecutor(slots=2)
        )
        assert result.rows == serial_result.rows
        # writes_store=False: the orchestrator persisted the rows locally.
        assert len(store) == len(result.rows)

    def test_loopback_shared_filesystem_writes_tiers_remotely(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        trace_store = TraceStore(tmp_path / "traces")
        executor = SSHExecutor(slots=1, shared_filesystem=True)
        assert executor.writes_store
        result = run_campaign(
            small_sweep(nworkloads=1),
            store=store,
            trace_store=trace_store,
            executor=executor,
        )
        assert len(store) == len(result.rows)
        assert len(trace_store) == len(result.rows)

    def test_remote_argv_wraps_ssh(self):
        executor = SSHExecutor(host="node7", repo_root="/opt/repro")
        argv = executor._argv()
        assert argv[0] == "ssh" and "node7" in argv
        assert "repro.exec.worker" in argv[-1]
        assert "/opt/repro" in argv[-1]

    def test_sinks_are_rejected(self):
        class _Sink:
            def write(self, run, result):  # pragma: no cover - never called
                pass

        with pytest.raises(ValueError, match="sinks"):
            asyncio.run(SSHExecutor().start(WorkerContext(sinks=(_Sink(),))))


class TestSlurmExecutor:
    def _executor(self, tmp_path, **kwargs):
        defaults = dict(
            directory=tmp_path / "sub",
            store_root=tmp_path / "store",
            trace_root=None,
            python="python3",
            repo_root="/opt/repro",
        )
        defaults.update(kwargs)
        return SlurmArrayExecutor(**defaults)

    def test_prepare_writes_deterministic_submission(self, tmp_path):
        runs = small_sweep().expand()
        executor = self._executor(tmp_path, max_array_size=3)
        first = executor.prepare("sweep", runs)
        assert first.total == len(runs)
        assert [(o, s) for _, o, s in first.chunks] == [(0, 3), (3, 1)]
        script = first.chunks[0][0].read_text()
        assert "#SBATCH --array=0-2" in script
        assert "repro.exec.worker" in script
        assert '"${SLURM_ARRAY_TASK_ID}"' in script
        summarize = first.summarize_path.read_text()
        assert "--resume" in summarize and "repro.campaign" in summarize
        before = {p.name: p.read_bytes() for p in first.directory.iterdir()
                  if p.suffix in (".sbatch", ".jsonl") and p.name != "manifest.jsonl"}
        second = executor.prepare("sweep", runs)
        after = {p.name: p.read_bytes() for p in second.directory.iterdir()
                 if p.suffix in (".sbatch", ".jsonl") and p.name != "manifest.jsonl"}
        assert before == after  # re-prepare writes identical bytes

    def test_prepare_journals_every_cell_pending(self, tmp_path):
        runs = small_sweep().expand()
        submission = self._executor(tmp_path).prepare("sweep", runs)
        state = CampaignManifest(submission.manifest_path).replay()
        assert len(state.cells) == len(runs)
        assert set(state.states.values()) == {PENDING}

    def test_submit_chains_afterok_dependency(self, tmp_path):
        runs = small_sweep().expand()
        submission = self._executor(tmp_path, max_array_size=3).prepare("s", runs)
        calls: list[list[str]] = []

        def stub(argv: list[str]) -> str:
            calls.append(argv)
            return f"Submitted batch job {1000 + len(calls)}"

        job_ids = self._executor(tmp_path, max_array_size=3).submit(
            submission, sbatch_runner=stub
        )
        assert job_ids == ["1001", "1002", "1003"]
        assert calls[0] == ["sbatch", str(submission.chunks[0][0])]
        assert calls[-1][1] == "--dependency=afterok:1001:1002"
        assert calls[-1][2] == str(submission.summarize_path)

    def test_submit_rejects_garbage_sbatch_output(self, tmp_path):
        submission = self._executor(tmp_path).prepare(
            "s", small_sweep(nworkloads=1).expand()
        )
        with pytest.raises(RuntimeError, match="no job id"):
            self._executor(tmp_path).submit(
                submission, sbatch_runner=lambda argv: "sbatch: error"
            )

    def test_prepare_rejects_empty_campaign(self, tmp_path):
        with pytest.raises(ValueError, match="no cells"):
            self._executor(tmp_path).prepare("s", [])


class TestExecutorCli:
    ARGS = ["--workloads", "1", "--njobs", "3", "--iterations", "16",
            "--work-scale", "0.04", "--mean-interarrival", "90"]

    def test_cli_local_executor_with_manifest(self, tmp_path, capsys):
        code = campaign_cli(
            self.ARGS
            + ["--executor", "local:1",
               "--store", str(tmp_path / "store"),
               "--manifest", str(tmp_path / "m.jsonl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "on 1 executor(s)" in out
        assert (tmp_path / "m.jsonl").exists()
        assert len(ResultStore(tmp_path / "store")) == 2

    def test_cli_resume_skips_completed_cells(self, tmp_path, capsys):
        campaign_cli(
            self.ARGS
            + ["--store", str(tmp_path / "store"),
               "--manifest", str(tmp_path / "m.jsonl")]
        )
        capsys.readouterr()
        code = campaign_cli(
            ["--resume", str(tmp_path / "m.jsonl"),
             "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 cell(s) re-executed" in out

    def test_cli_slurm_dry_run_writes_scripts(self, tmp_path, capsys):
        code = campaign_cli(
            self.ARGS
            + ["--executor", f"slurm:{tmp_path / 'sub'}",
               "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert (tmp_path / "sub" / "array_000.sbatch").exists()
        assert (tmp_path / "sub" / "summarize.sbatch").exists()

    def test_cli_rejects_unknown_executor_spec(self, capsys):
        with pytest.raises(SystemExit):
            campaign_cli(self.ARGS + ["--executor", "carrier-pigeon:3"])
        assert "unknown executor spec" in capsys.readouterr().err

    def test_cli_resume_requires_store(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            campaign_cli(["--resume", str(tmp_path / "m.jsonl")])
        assert "--resume requires --store" in capsys.readouterr().err


class TestProgressStatus:
    def test_status_segment_renders_and_clears(self):
        stream = io.StringIO()
        line = ProgressLine(4, stream, clock=lambda: 0.0)
        line.set_status("in flight local[2]:2 | queued 7")
        assert "in flight local[2]:2 | queued 7" in stream.getvalue()
        line.set_status("")
        last = stream.getvalue().rsplit("\r", 1)[-1]
        assert "in flight" not in last
        # The repaint padded over the longer previous line.
        assert len(last) >= len("in flight")
