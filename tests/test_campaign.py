"""Tests of the campaign subsystem: spec expansion, execution, determinism."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    PolicyRef,
    RunSpec,
    SchedulerRef,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
    run_scenario_pair,
    summarise_run,
)
from repro.campaign.__main__ import main as campaign_cli
from repro.cpuset.distribution import SocketAwareEquipartition
from repro.workload import configs
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL, ScenarioRunner
from repro.workload.workloads import Workload, WorkloadJob

#: Cheap synthetic family for pool tests.
SMALL = WorkloadSpec(njobs=3, mean_interarrival=90.0, work_scale=0.04, iterations=16)


def small_sweep(nworkloads: int = 2, **kwargs) -> CampaignSpec:
    defaults = dict(
        name="test-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SMALL, seed=i) for i in range(nworkloads)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(ClusterRef(nnodes=4, kind="mn3"),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestSpecExpansion:
    def test_grid_size_and_stable_indices(self):
        spec = small_sweep(
            nworkloads=3,
            clusters=(ClusterRef(nnodes=2), ClusterRef(nnodes=4)),
            policies=(None, PolicyRef("socket")),
        )
        runs = spec.expand()
        assert len(runs) == spec.nruns == 3 * 2 * 2 * 2
        assert [r.index for r in runs] == list(range(len(runs)))
        # Expansion is deterministic and repeatable.
        assert runs == spec.expand()

    def test_scenarios_adjacent_per_cell(self):
        runs = small_sweep().expand()
        assert runs[0].scenario == SERIAL and runs[1].scenario == DROM
        assert runs[0].workload == runs[1].workload

    def test_run_ids_are_unique(self):
        runs = small_sweep(nworkloads=3).expand()
        assert len({r.run_id for r in runs}) == len(runs)

    def test_duplicate_workload_refs_stay_distinct_cells(self):
        ref = SyntheticWorkloadRef(spec=SMALL, seed=0)
        spec = CampaignSpec(name="dup", workloads=(ref, ref))
        result = run_campaign(spec)
        cells = result.scenario_pairs()
        assert len(cells) == 2
        assert all(set(cell) == {SERIAL, DROM} for cell in cells)

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            RunSpec(index=0, scenario="turbo", workload=HighPriorityWorkloadRef())

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            CampaignSpec(name="empty", workloads=())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            PolicyRef("round-robin")

    def test_policy_ref_builds_registry_class(self):
        assert isinstance(PolicyRef("socket").build(), SocketAwareEquipartition)

    def test_cluster_ref_builds_requested_shape(self):
        cluster = ClusterRef(nnodes=4, kind="uniform", sockets=1, cores_per_socket=4)
        topo = cluster.build()
        assert topo.nnodes == 4
        assert topo.ncpus == 16


class TestSharding:
    def test_shards_are_balanced_and_cover_the_grid(self):
        spec = small_sweep(nworkloads=5)
        shards = spec.shard(2)
        assert [len(s.workloads) for s in shards] == [3, 2]
        assert sum(s.nruns for s in shards) == spec.nruns
        # Every workload lands in exactly one shard.
        dealt = [w for s in shards for w in s.workloads]
        assert sorted(dealt, key=lambda w: w.seed) == sorted(
            spec.workloads, key=lambda w: w.seed
        )

    def test_shard_names_and_other_axes_preserved(self):
        spec = small_sweep(nworkloads=4, schedulers=(SchedulerRef(backfill=True),))
        shards = spec.shard(2)
        assert [s.name for s in shards] == [
            "test-sweep[shard 1/2]",
            "test-sweep[shard 2/2]",
        ]
        assert all(s.schedulers == spec.schedulers for s in shards)
        assert all(s.clusters == spec.clusters for s in shards)

    def test_more_shards_than_workloads_drops_empties(self):
        shards = small_sweep(nworkloads=2).shard(5)
        assert len(shards) == 2

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            small_sweep().shard(0)

    def test_shard_cells_union_equals_full_campaign(self):
        from repro.results.store import content_key

        spec = small_sweep(nworkloads=3)
        full = {content_key(run) for run in spec.expand()}
        dealt = {
            content_key(run) for s in spec.shard(2) for run in s.expand()
        }
        assert dealt == full


class TestExecution:
    def test_execute_run_is_pure(self):
        run = RunSpec(
            index=0,
            scenario=DROM,
            workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
            cluster=ClusterRef(nnodes=4),
        )
        a = execute_run(run, trace=False)
        b = execute_run(run, trace=False)
        # Job ids are process-global counters, so compare the campaign-level
        # summary (timings, labels) rather than raw Job records.
        assert summarise_run(run, a) == summarise_run(run, b)

    def test_scenario_pair_returns_full_results(self):
        results = run_scenario_pair(
            SyntheticWorkloadRef(spec=SMALL, seed=1), cluster=ClusterRef(nnodes=4)
        )
        assert set(results) == {SERIAL, DROM}
        assert len(results[DROM].tracer) > 0  # tracing on by default

    def test_interference_factor_slows_co_runs(self):
        ref = InSituWorkloadRef("NEST", "Conf. 1", "Pils", "Conf. 2")
        plain = execute_run(RunSpec(index=0, scenario=DROM, workload=ref))
        slowed = execute_run(
            RunSpec(index=1, scenario=DROM, workload=ref, interference_factor=1.5)
        )
        assert slowed.metrics.total_run_time > plain.metrics.total_run_time


class TestSchedulerAxis:
    """The backfill × node-selection scheduler axis (ROADMAP follow-on)."""

    def backfill_workload(self) -> Workload:
        # j1 takes 4 CPUs/node, j2 (16 CPUs/node) blocks behind it, j3
        # (2 CPUs/node) fits next to j1 — exactly the shape backfill helps.
        return Workload(
            name="backfill-shape",
            jobs=(
                WorkloadJob(app=configs.pils("Conf. 3"), submit_time=0.0, name="wide"),
                WorkloadJob(app=configs.nest("Conf. 1"), submit_time=0.0, name="blocked"),
                WorkloadJob(app=configs.stream("Conf. 1"), submit_time=0.0, name="small"),
            ),
            nodes=2,
        )

    def test_backfill_starts_fitting_job_early(self):
        workload = self.backfill_workload()
        fcfs = ScenarioRunner(drom_enabled=False).run(workload, trace=False)
        backfill = ScenarioRunner(drom_enabled=False, backfill=True).run(
            workload, trace=False
        )
        assert fcfs.metrics.wait_times()["small"] > 0.0
        assert backfill.metrics.wait_times()["small"] == 0.0
        assert (
            backfill.metrics.average_response_time
            < fcfs.metrics.average_response_time
        )

    def test_axis_expands_and_labels(self):
        spec = small_sweep(
            schedulers=(SchedulerRef(), SchedulerRef(backfill=True)),
        )
        runs = spec.expand()
        assert len(runs) == spec.nruns == 2 * 2 * 2
        assert len({r.run_id for r in runs}) == len(runs)
        labels = {r.scheduler.label for r in runs}
        assert labels == {"fcfs", "backfill"}

    def test_backfill_and_node_policy_sweep_executes(self):
        spec = small_sweep(
            nworkloads=1,
            scenarios=(DROM,),
            schedulers=(
                SchedulerRef(),
                SchedulerRef(backfill=True, node_policy="least-allocated"),
                SchedulerRef(node_policy="lowest-utilisation"),
            ),
        )
        result = run_campaign(spec)
        assert len(result) == 3
        table = result.to_table()
        assert "backfill+least-allocated" in table
        assert "lowest-utilisation" in table
        assert "fcfs" in table

    def test_unknown_node_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown node policy"):
            SchedulerRef(node_policy="round-robin")

    def test_empty_schedulers_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            small_sweep(schedulers=())

    def test_cli_rejects_unknown_node_policy_as_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            campaign_cli(["--node-policies", "round-robin"])
        assert exc_info.value.code == 2  # argparse usage error, not a traceback
        assert "unknown node policy" in capsys.readouterr().err

    def test_cli_backfill_sweep(self, capsys):
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--scenarios", "drom",
                "--backfill", "both",
                "--work-scale", "0.04",
                "--iterations", "12",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 schedulers" in out
        assert "backfill" in out and "fcfs" in out

    def test_cli_profile_writes_pstats_and_prints_hotspots(self, capsys, tmp_path):
        import pstats

        out_path = tmp_path / "sweep.pstats"
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--work-scale", "0.04",
                "--iterations", "12",
                "--workers", "4",
                "--profile", str(out_path),
            ]
        )
        captured = capsys.readouterr()
        out = captured.out
        assert code == 0
        assert out_path.exists()
        assert "top 20 by cumulative time" in out
        # Profiling forces the in-process executor; the warning now goes
        # through the repro logging stack, i.e. to stderr.
        assert "ignoring --workers" in captured.err
        assert "cumtime" in out
        # The dump is a loadable pstats file with real samples in it.
        stats = pstats.Stats(str(out_path))
        assert stats.total_calls > 0


class TestDeterminism:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        """One ≥20-run sweep over a 4-node cluster, serial and pooled."""
        spec = small_sweep(
            nworkloads=5,
            clusters=(ClusterRef(nnodes=4, kind="mn3"), ClusterRef(nnodes=4, kind="uniform")),
        )
        assert spec.nruns >= 20
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=4)
        return spec, serial, pooled

    def test_pool_matches_serial_execution_exactly(self, sweep_results):
        _spec, serial, pooled = sweep_results
        assert pooled.rows == serial.rows

    def test_aggregated_table_is_byte_identical(self, sweep_results):
        _spec, serial, pooled = sweep_results
        assert pooled.to_table() == serial.to_table()

    def test_rows_in_run_index_order(self, sweep_results):
        _spec, _serial, pooled = sweep_results
        assert [m.run.index for m in pooled.rows] == list(range(len(pooled)))

    def test_scenario_pairs_cover_every_cell(self, sweep_results):
        spec, serial, _pooled = sweep_results
        cells = serial.scenario_pairs()
        assert len(cells) == spec.nruns // len(spec.scenarios)
        assert all(set(cell) == {SERIAL, DROM} for cell in cells)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(small_sweep(), workers=0)


class TestAggregation:
    @pytest.fixture(scope="class")
    def uc_result(self):
        return run_campaign(
            CampaignSpec(
                name="uc",
                workloads=(InSituWorkloadRef("NEST", "Conf. 1", "Pils", "Conf. 2"),),
            )
        )

    def test_row_metrics_match_direct_execution(self, uc_result):
        serial_row = uc_result.by_scenario()[SERIAL][0]
        direct = execute_run(serial_row.run, trace=False)
        assert serial_row.total_run_time == direct.metrics.total_run_time
        assert dict(serial_row.response_times) == dict(direct.metrics.response_times())

    def test_drom_beats_serial_in_table(self, uc_result):
        cell = uc_result.scenario_pairs()[0]
        assert cell[DROM].total_run_time < cell[SERIAL].total_run_time

    def test_table_mentions_every_run(self, uc_result):
        table = uc_result.to_table()
        assert table.count("NEST Conf. 1 + Pils Conf. 2") == 2
        for scenario in (SERIAL, DROM):
            assert scenario in table

    def test_job_utilisation_recorded(self, uc_result):
        row = uc_result.by_scenario()[DROM][0]
        assert all(0.0 < u <= 1.0 for _job, u in row.job_utilisation)


class TestCli:
    def test_cli_runs_a_sweep(self, capsys):
        code = campaign_cli(
            [
                "--workloads", "2",
                "--njobs", "2",
                "--nnodes", "4",
                "--workers", "2",
                "--work-scale", "0.04",
                "--iterations", "12",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 runs" in out
        assert "drom" in out and "serial" in out
        assert "DROM vs Serial" in out

    def test_cli_policy_axis(self, capsys):
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--scenarios", "drom",
                "--policies", "socket,equipartition",
                "--work-scale", "0.04",
                "--iterations", "12",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "socket" in out and "equipartition" in out

    def test_cli_heterogeneous_sweep(self, capsys):
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "3",
                "--nnodes", "4",
                "--arrival", "bursty",
                "--burst-size", "3",
                "--size-mix", "1:2,2",
                "--backfill", "on",
                "--work-scale", "0.04",
                "--iterations", "12",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 runs" in out and "backfill" in out

    def test_cli_shard_selects_a_slice(self, capsys):
        args = [
            "--workloads", "3",
            "--njobs", "2",
            "--work-scale", "0.04",
            "--iterations", "12",
        ]
        code = campaign_cli(args + ["--shard", "1/2"])
        out = capsys.readouterr().out
        assert code == 0
        # 3 workloads dealt over 2 shards: the first gets 2 of them.
        assert "4 runs" in out and "2 workloads" in out

    def test_cli_bad_shard_rejected(self, capsys):
        base = ["--workloads", "2", "--njobs", "2"]
        for shard in ("2", "0/2", "3/2", "x/y"):
            with pytest.raises(SystemExit):
                campaign_cli(base + ["--shard", shard])
            capsys.readouterr()

    def test_cli_size_mix_and_heavy_tailed_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            campaign_cli(
                ["--size-mix", "1,2", "--heavy-tailed-sizes", "4"]
            )
        assert "exclusive" in capsys.readouterr().err

    def test_cli_size_mix_wider_than_partition_is_a_usage_error(self, capsys):
        # Regression: this used to crash with a raw traceback mid-sweep.
        with pytest.raises(SystemExit):
            campaign_cli(["--nnodes", "2", "--size-mix", "4"])
        assert "only 2 node(s)" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            campaign_cli(["--heavy-tailed-sizes", "8", "--nnodes", "4"])
        assert "only 4 node(s)" in capsys.readouterr().err
