"""Per-job resource requests end to end: heterogeneous workloads through the
scheduler, the runner, the generator and the campaign layer.

The paper's evaluation keeps every job at the full two-node partition; this
module covers everything that deviates from that: mixed 1-/2-/4-node jobs on
an 8-node partition, backfill ordering around a blocked wide job, shrink/widen
placement under malleability bounds, the generator's size and burst families,
and the campaign determinism contract (serial vs pooled byte-identical) for
heterogeneous grids.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    SchedulerRef,
    SyntheticWorkloadRef,
    run_campaign,
)
from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import JobSpec, JobState
from repro.slurm.slurmctld import Slurmctld
from repro.workload import configs
from repro.workload.generator import (
    BURSTY,
    SizeMixEntry,
    WorkloadSpec,
    draw_request,
    generate_workload,
    heavy_tailed_size_mix,
)
from repro.workload.runner import DROM, SERIAL, ScenarioRunner
from repro.workload.workloads import (
    ResourceRequest,
    Workload,
    WorkloadJob,
    in_situ_workload,
)

#: Small job-size family used throughout: mostly 1-node, some 2-, few 4-node.
MIXED_SIZES = heavy_tailed_size_mix(4)


@pytest.fixture
def uniform8() -> ClusterTopology:
    """An 8-node generic partition (16 CPUs per node)."""
    return ClusterTopology.uniform(8)


def spec(name="job", nodes=2, ntasks=2, cpt=16, priority=0, malleable=True, **kw):
    return JobSpec(
        name=name, nodes=nodes, ntasks=ntasks, cpus_per_task=cpt,
        priority=priority, malleable=malleable, **kw,
    )


def assert_no_overallocation(ctld: Slurmctld) -> None:
    """The invariant heterogeneous placement must never break."""
    for state in ctld.nodes.values():
        assert state.allocated_cpus <= state.ncpus, (
            f"node {state.name}: {state.allocated_cpus} CPUs allocated "
            f"of {state.ncpus}"
        )


class TestResourceRequest:
    def test_defaults_from_app(self):
        app = configs.nest("Conf. 2")  # 4 ranks x 8 threads
        request = ResourceRequest.for_app(app, nodes=configs.EVALUATION_NODES)
        assert request == ResourceRequest(nodes=2, ntasks=4, cpus_per_task=8)
        assert request.tasks_per_node == 2
        assert request.cpus_per_node == 16

    def test_workload_job_default_and_explicit(self):
        app = configs.stream("Conf. 1")
        implicit = WorkloadJob(app=app)
        assert implicit.resource_request(default_nodes=2) == (
            ResourceRequest.for_app(app, nodes=2)
        )
        explicit = WorkloadJob(
            app=app, resources=ResourceRequest(nodes=1, ntasks=2, cpus_per_task=2)
        )
        assert explicit.resource_request(default_nodes=2).nodes == 1

    def test_indivisible_tasks_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ResourceRequest(nodes=3, ntasks=2, cpus_per_task=1)

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="min_nodes"):
            ResourceRequest(nodes=2, ntasks=2, cpus_per_task=1, min_nodes=3)
        with pytest.raises(ValueError, match="max_nodes"):
            ResourceRequest(nodes=2, ntasks=2, cpus_per_task=1, max_nodes=1)

    def test_effective_config_identity_when_matching(self):
        app = configs.nest("Conf. 1")
        request = ResourceRequest.for_app(app, nodes=2)
        assert request.effective_config(app.config) is app.config

    def test_effective_config_repartitions_ranks(self):
        app = configs.nest("Conf. 2")  # 4 ranks x 8 threads
        request = ResourceRequest(nodes=4, ntasks=8, cpus_per_task=8)
        derived = request.effective_config(app.config)
        assert derived.mpi_ranks == 8
        assert derived.threads_per_rank == 8
        assert derived.label == app.config.label


class TestJobSpecBounds:
    def test_rigid_spec_has_one_candidate(self):
        assert spec(nodes=2, ntasks=4).placement_candidates() == [2]

    def test_min_nodes_adds_divisible_shrinks(self):
        s = spec(nodes=4, ntasks=4, min_nodes=1)
        assert s.placement_candidates() == [4, 2, 1]  # 3 skipped: 4 % 3 != 0

    def test_max_nodes_adds_divisible_widths(self):
        s = spec(nodes=2, ntasks=4, max_nodes=8)
        assert s.placement_candidates() == [4, 2]  # widening capped by ntasks
        assert s.placement_candidates(expand=False) == [2]

    def test_tasks_on_rejects_non_divisors(self):
        with pytest.raises(ValueError, match="distributed"):
            spec(nodes=2, ntasks=4).tasks_on(3)

    def test_bounds_validated_on_spec(self):
        with pytest.raises(ValueError, match="min_nodes"):
            spec(min_nodes=5)
        with pytest.raises(ValueError, match="max_nodes"):
            spec(max_nodes=1)


class TestHeterogeneousScheduling:
    def test_mixed_sizes_fill_the_partition(self, uniform8):
        """1-, 2- and 4-node jobs pack the 8 nodes simultaneously."""
        ctld = Slurmctld(uniform8, drom_enabled=False)
        ctld.submit(spec(name="wide", nodes=4, ntasks=4, cpt=16), time=0.0)
        ctld.submit(spec(name="mid", nodes=2, ntasks=2, cpt=16), time=0.0)
        ctld.submit(spec(name="small1", nodes=1, ntasks=1, cpt=16), time=0.0)
        ctld.submit(spec(name="small2", nodes=1, ntasks=1, cpt=16), time=0.0)
        decisions = ctld.schedule(0.0)
        assert len(decisions) == 4
        assert_no_overallocation(ctld)
        # Exclusive full-CPU requests: every node hosts exactly one job.
        allocated = [n for d in decisions for n in d.nodes]
        assert len(allocated) == 8 and len(set(allocated)) == 8

    def test_small_job_backfills_around_queued_wide_job(self, uniform8):
        """The scenario the paper's DROM design motivates but never exercises:
        a 1-node job starts ahead of a blocked 4-node job."""
        ctld = Slurmctld(uniform8, drom_enabled=False, backfill=True)
        ctld.submit(spec(name="running", nodes=6, ntasks=6, cpt=16), time=0.0)
        ctld.schedule(0.0)
        blocked = ctld.submit(spec(name="wide", nodes=4, ntasks=4, cpt=16), time=1.0)
        small = ctld.submit(spec(name="small", nodes=1, ntasks=1, cpt=16), time=2.0)
        decisions = ctld.schedule(2.0)
        assert [d.job.spec.name for d in decisions] == ["small"]
        assert small.state is JobState.RUNNING and small.wait_time == 0.0
        assert blocked.state is JobState.PENDING
        assert blocked.pending_reason == "Resources"
        assert_no_overallocation(ctld)

    def test_without_backfill_fcfs_blocks_the_small_job(self, uniform8):
        ctld = Slurmctld(uniform8, drom_enabled=False, backfill=False)
        ctld.submit(spec(name="running", nodes=6, ntasks=6, cpt=16), time=0.0)
        ctld.schedule(0.0)
        ctld.submit(spec(name="wide", nodes=4, ntasks=4, cpt=16), time=1.0)
        small = ctld.submit(spec(name="small", nodes=1, ntasks=1, cpt=16), time=2.0)
        assert ctld.schedule(2.0) == []
        assert small.state is JobState.PENDING

    def test_partial_partition_placement(self, uniform8):
        """A small job lands on the *leftover* CPUs of partly-used nodes."""
        ctld = Slurmctld(uniform8, drom_enabled=False)
        # 8 CPUs used on every node.
        ctld.submit(spec(name="half", nodes=8, ntasks=8, cpt=8), time=0.0)
        ctld.schedule(0.0)
        small = ctld.submit(spec(name="small", nodes=2, ntasks=2, cpt=8), time=1.0)
        decisions = ctld.schedule(1.0)
        assert [d.job for d in decisions] == [small]
        assert_no_overallocation(ctld)

    def test_malleable_job_shrinks_to_min_nodes(self, uniform8):
        """With min_nodes set, a blocked wide job starts shrunk instead."""
        ctld = Slurmctld(uniform8, drom_enabled=True)
        ctld.submit(spec(name="running", nodes=6, ntasks=6, cpt=16), time=0.0)
        ctld.schedule(0.0)
        shrinkable = ctld.submit(
            spec(name="shrink", nodes=4, ntasks=4, cpt=8, min_nodes=2), time=1.0
        )
        decisions = ctld.schedule(1.0)
        assert [d.job for d in decisions] == [shrinkable]
        # Granted the two free nodes with the tasks re-packed 2-per-node.
        assert len(shrinkable.allocated_nodes) == 2
        for name in shrinkable.allocated_nodes:
            tasks, cpus, _malleable = ctld.nodes[name].running[shrinkable.job_id]
            assert tasks == 2 and cpus == 16
        assert_no_overallocation(ctld)

    def test_malleable_job_widens_to_max_nodes(self, uniform8):
        """With max_nodes set and a free partition, the job spreads wider."""
        ctld = Slurmctld(uniform8, drom_enabled=True)
        widened = ctld.submit(
            spec(name="widen", nodes=2, ntasks=4, cpt=4, max_nodes=8), time=0.0
        )
        ctld.schedule(0.0)
        # ntasks=4 caps the widening at 4 nodes (1 task each).
        assert len(widened.allocated_nodes) == 4
        for name in widened.allocated_nodes:
            tasks, cpus, _malleable = ctld.nodes[name].running[widened.job_id]
            assert tasks == 1 and cpus == 4
        assert_no_overallocation(ctld)

    def test_min_nodes_relaxes_submit_validation(self, mn3_cluster):
        ctld = Slurmctld(mn3_cluster)
        with pytest.raises(ValueError, match="at least"):
            ctld.submit(spec(nodes=4, ntasks=4), time=0.0)
        job = ctld.submit(spec(nodes=4, ntasks=4, cpt=8, min_nodes=2), time=0.0)
        ctld.schedule(0.0)
        assert job.state is JobState.RUNNING
        assert len(job.allocated_nodes) == 2

    def test_rigid_jobs_ignore_malleability_bounds(self, uniform8):
        """Bounds are a malleability contract: a non-malleable job is placed
        at exactly its requested width or not at all."""
        ctld = Slurmctld(uniform8, drom_enabled=True)
        ctld.submit(spec(name="running", nodes=6, ntasks=6, cpt=16), time=0.0)
        ctld.schedule(0.0)
        rigid = ctld.submit(
            spec(name="rigid", nodes=4, ntasks=4, cpt=8, min_nodes=2,
                 malleable=False),
            time=1.0,
        )
        assert ctld.schedule(1.0) == []
        assert rigid.state is JobState.PENDING
        assert spec(nodes=4, ntasks=4, min_nodes=1, malleable=False
                    ).placement_candidates() == [4]

    def test_rigid_jobs_keep_strict_submit_validation(self, mn3_cluster):
        ctld = Slurmctld(mn3_cluster)
        with pytest.raises(ValueError, match="at least"):
            ctld.submit(
                spec(nodes=4, ntasks=4, cpt=8, min_nodes=2, malleable=False),
                time=0.0,
            )

    def test_submit_rejects_unusable_min_nodes(self):
        """Regression: min_nodes below the partition size is not enough — the
        narrowest *divisible* candidate must fit, or the job pends forever."""
        ctld = Slurmctld(ClusterTopology.uniform(5), drom_enabled=True)
        # ntasks=6: candidates are [6] only (5 and 4 don't divide 6), so the
        # job can never be placed on 5 nodes despite min_nodes=4.
        with pytest.raises(ValueError, match="at least 6"):
            ctld.submit(
                spec(nodes=6, ntasks=6, cpt=1, min_nodes=4), time=0.0
            )
        # A divisible shrink width keeps the job admissible.
        job = ctld.submit(spec(nodes=6, ntasks=6, cpt=1, min_nodes=3), time=0.0)
        ctld.schedule(0.0)
        assert len(job.allocated_nodes) == 3

    def test_submit_rejects_per_node_cpu_overflow(self, mn3_cluster):
        """Regression: a bounded job whose every usable width needs more CPUs
        per node than a node has must be rejected at submit, not pend forever."""
        serial = Slurmctld(mn3_cluster, drom_enabled=False)
        oversized = spec(nodes=4, ntasks=4, cpt=16, min_nodes=1)
        with pytest.raises(ValueError, match="never be placed"):
            serial.submit(oversized, time=0.0)
        # Under DROM a malleable job only needs a CPU per task (co-allocation
        # shrinks the masks), so the same request is admissible...
        drom = Slurmctld(mn3_cluster, drom_enabled=True)
        job = drom.submit(oversized, time=0.0)
        drom.schedule(0.0)
        assert job.state is JobState.RUNNING
        # ...but a rigid job that fits node-count-wise still trips the
        # CPU-capacity check, even under DROM.
        with pytest.raises(ValueError, match="never be placed"):
            drom.submit(
                spec(nodes=2, ntasks=2, cpt=32, malleable=False), time=0.0
            )

    def test_submit_admission_never_counts_on_widened_coallocation(self):
        """Regression: the scheduler never co-allocates beyond the requested
        width, so admission must not rely on a task-fit at widened widths —
        this job used to be admitted and then pend forever on an idle
        partition."""
        cluster = ClusterTopology.uniform(4, sockets=1, cores_per_socket=8)
        ctld = Slurmctld(cluster, drom_enabled=True)
        with pytest.raises(ValueError, match="never be placed"):
            ctld.submit(
                spec(nodes=2, ntasks=32, cpt=2, max_nodes=4), time=0.0
            )

    def test_admission_is_in_lockstep_with_placement(self):
        """Admission is a dry run of the placement logic against a pristine
        partition, so for any spec: admitted on an idle cluster iff the very
        first scheduling pass can start it."""
        candidates = [
            dict(nodes=2, ntasks=2, cpt=16),
            dict(nodes=2, ntasks=2, cpt=32),                     # CPU overflow
            dict(nodes=4, ntasks=4, cpt=16, min_nodes=1),        # shrinkable
            dict(nodes=4, ntasks=4, cpt=16, min_nodes=1, malleable=False),
            dict(nodes=2, ntasks=32, cpt=2, max_nodes=4),        # widened task-fit
            dict(nodes=1, ntasks=16, cpt=1),
            dict(nodes=2, ntasks=6, cpt=4, min_nodes=1),         # 6 % 2 == 0 only
        ]
        for drom_enabled in (False, True):
            for i, kwargs in enumerate(candidates):
                ctld = Slurmctld(
                    ClusterTopology.uniform(4, sockets=1, cores_per_socket=8),
                    drom_enabled=drom_enabled,
                )
                job_spec = spec(name=f"probe{i}", **kwargs)
                try:
                    job = ctld.submit(job_spec, time=0.0)
                except ValueError:
                    continue  # rejected: nothing to start, lockstep holds
                decisions = ctld.schedule(0.0)
                assert [d.job.job_id for d in decisions] == [job.job_id], (
                    f"admitted but unplaceable on an idle partition: "
                    f"{job_spec} (drom={drom_enabled})"
                )


def small_app(factory, config, total_work, iterations=8):
    return factory(config, total_work=total_work, iterations=iterations)


class TestRunnerHeterogeneous:
    @staticmethod
    def _mixed_workload() -> Workload:
        """NEST on 2 nodes plus a 1-node STREAM, on a 4-node partition."""
        nest = small_app(configs.nest, "Conf. 1", total_work=800.0)
        stream = small_app(configs.stream, "Conf. 1", total_work=40.0)
        return Workload(
            name="mixed",
            jobs=(
                WorkloadJob(app=nest, submit_time=0.0),
                WorkloadJob(
                    app=stream,
                    submit_time=5.0,
                    resources=ResourceRequest.for_app(stream, nodes=1),
                ),
            ),
            nodes=2,
        )

    @pytest.mark.parametrize("drom_enabled", [False, True])
    def test_mixed_sizes_complete_under_both_scenarios(self, drom_enabled):
        cluster = ClusterTopology.marenostrum3(4)
        result = ScenarioRunner(drom_enabled, cluster=cluster).run(
            self._mixed_workload(), trace=False
        )
        assert len(result.metrics.jobs) == 2
        # The per-job requests reached the controller verbatim.
        assert len(result.jobs["NEST Conf. 1"].allocated_nodes) == 2
        assert len(result.jobs["STREAM Conf. 1"].allocated_nodes) == 1
        # Two free nodes remain, so the small job never waits.
        assert result.metrics.wait_times()["STREAM Conf. 1"] == 0.0

    def test_small_job_backfills_ahead_of_larger_queued_job(self):
        """Acceptance: end to end through the runner, a 1-node job overtakes
        a queued 4-node job while the partition is partly busy."""
        cluster = ClusterTopology.marenostrum3(4)
        running = small_app(configs.nest, "Conf. 1", total_work=800.0)
        wide = small_app(configs.nest, "Conf. 2", total_work=800.0)
        small = small_app(configs.stream, "Conf. 1", total_work=40.0)
        workload = Workload(
            name="backfill-race",
            jobs=(
                WorkloadJob(app=running, submit_time=0.0),
                WorkloadJob(
                    app=wide,
                    submit_time=10.0,
                    resources=ResourceRequest(nodes=4, ntasks=4, cpus_per_task=8),
                ),
                WorkloadJob(
                    app=small,
                    submit_time=20.0,
                    resources=ResourceRequest.for_app(small, nodes=1),
                ),
            ),
            nodes=2,
        )
        backfilled = ScenarioRunner(False, cluster=cluster, backfill=True).run(
            workload, trace=False
        )
        fcfs = ScenarioRunner(False, cluster=cluster).run(workload, trace=False)

        wide_job = backfilled.jobs["NEST Conf. 2"]
        small_job = backfilled.jobs["STREAM Conf. 1"]
        # With backfill the small job starts immediately, ahead of the wide
        # job that is still waiting for the whole partition.
        assert small_job.start_time == pytest.approx(20.0)
        assert small_job.start_time < wide_job.start_time
        # Without backfill it queues behind the wide job (strict FCFS).
        assert fcfs.jobs["STREAM Conf. 1"].wait_time > 0.0
        assert (
            fcfs.jobs["STREAM Conf. 1"].start_time
            >= fcfs.jobs["NEST Conf. 2"].start_time
        )


class TestGeneratorFamilies:
    HETERO = WorkloadSpec(
        njobs=8,
        arrival=BURSTY,
        burst_size=4,
        mean_interarrival=120.0,
        size_mix=MIXED_SIZES,
        work_scale=0.04,
        iterations=12,
        name="hetero",
    )

    def test_sizes_drawn_from_mix(self):
        sizes = {
            job.resources.nodes
            for seed in range(6)
            for job in generate_workload(self.HETERO, seed).jobs
        }
        assert sizes <= {1, 2, 4}
        assert len(sizes) >= 2  # heavy tail still mixes sizes

    def test_requests_preserve_rank_density(self):
        entry = SizeMixEntry(nodes=4)
        wide = draw_request(configs.nest("Conf. 2"), entry)  # 2 ranks/node
        assert wide == ResourceRequest(nodes=4, ntasks=8, cpus_per_task=8)
        narrow = draw_request(configs.stream("Conf. 1"), SizeMixEntry(nodes=1))
        assert narrow == ResourceRequest(nodes=1, ntasks=1, cpus_per_task=2)

    def test_size_mix_bounds_propagate(self):
        entry = SizeMixEntry(nodes=4, min_nodes=1, max_nodes=8)
        request = draw_request(configs.stream("Conf. 1"), entry)
        assert request.min_nodes == 1 and request.max_nodes == 8

    def test_bursty_arrivals_group_submissions(self):
        workload = generate_workload(self.HETERO, 3)
        times = [job.submit_time for job in workload.jobs]
        assert times[0] == times[1] == times[2] == times[3] == 0.0
        assert times[4] == times[5] == times[6] == times[7] > 0.0

    def test_deterministic_in_seed(self):
        assert generate_workload(self.HETERO, 9) == generate_workload(self.HETERO, 9)

    def test_uniform_spec_emits_no_explicit_requests(self):
        plain = WorkloadSpec(njobs=3, work_scale=0.04, iterations=12)
        assert all(j.resources is None for j in generate_workload(plain, 0).jobs)

    def test_burst_size_is_normalised_for_non_bursty_arrivals(self):
        """Regression: the inert field must not split identical simulations
        into different campaign cells."""
        a = WorkloadSpec(njobs=3, arrival="poisson", burst_size=8)
        b = WorkloadSpec(njobs=3, arrival="poisson")
        assert a == b
        assert a.burst_size == b.burst_size == 4
        # Bursty specs keep their burst size, and zero is still rejected.
        assert WorkloadSpec(arrival=BURSTY, burst_size=8).burst_size == 8
        with pytest.raises(ValueError, match="burst_size"):
            WorkloadSpec(arrival=BURSTY, burst_size=0)

    def test_generated_workload_runs_end_to_end(self):
        workload = generate_workload(self.HETERO, 1)
        cluster = ClusterTopology.uniform(8)
        for drom_enabled in (False, True):
            result = ScenarioRunner(
                drom_enabled, cluster=cluster, backfill=True
            ).run(workload, trace=False)
            assert len(result.metrics.jobs) == self.HETERO.njobs


class TestHeterogeneousCampaign:
    """Acceptance: mixed-size workloads through run_campaign with backfill."""

    SPEC = CampaignSpec(
        name="hetero-acceptance",
        workloads=tuple(
            SyntheticWorkloadRef(spec=TestGeneratorFamilies.HETERO, seed=seed)
            for seed in range(2)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(ClusterRef(nnodes=8, kind="uniform"),),
        schedulers=(SchedulerRef(backfill=True),),
    )

    def test_grid_really_is_heterogeneous(self):
        workload = self.SPEC.workloads[0].build()
        assert len({j.resources.nodes for j in workload.jobs}) >= 2

    def test_pooled_equals_serial_byte_for_byte(self):
        serial = run_campaign(self.SPEC, workers=1)
        pooled = run_campaign(self.SPEC, workers=2)
        assert serial.rows == pooled.rows
        assert serial.to_table() == pooled.to_table()


class TestInSituHeterogeneous:
    def test_analytics_nodes_shrinks_the_request(self):
        workload = in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2",
                                    analytics_nodes=1)
        assert workload.jobs[0].resources is None
        assert workload.jobs[1].resources == ResourceRequest(
            nodes=1, ntasks=2, cpus_per_task=1
        )

    def test_shrunk_analytics_coallocates_on_one_node(self):
        workload = in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2",
                                    analytics_nodes=1)
        result = ScenarioRunner(True).run(workload, trace=False)
        assert len(result.jobs["Pils Conf. 2"].allocated_nodes) == 1
        assert result.metrics.wait_times()["Pils Conf. 2"] == 0.0
