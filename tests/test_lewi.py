"""Tests of the LeWI (Lend-When-Idle) module."""

from __future__ import annotations

import pytest

from repro.core.errors import DlbError
from repro.core.flags import DromFlags
from repro.core.lewi import LewiModule
from repro.cpuset.mask import CpuSet


@pytest.fixture
def lewi_setup(shmem):
    """Two processes sharing a node: pid 1 on socket 0, pid 2 on socket 1."""
    shmem.register(1, CpuSet.from_range(0, 8))
    shmem.register(2, CpuSet.from_range(8, 16))
    return LewiModule(shmem), shmem


class TestLend:
    def test_default_lend_keeps_one_cpu(self, lewi_setup):
        lewi, _ = lewi_setup
        code, lent = lewi.lend(1)
        assert code is DlbError.DLB_SUCCESS
        assert lent == CpuSet.from_range(1, 8)
        assert lewi.lent_by(1) == lent
        assert lewi.idle_cpus() == lent
        assert lewi.effective_mask(1) == CpuSet([0])

    def test_lend_specific_mask(self, lewi_setup):
        lewi, _ = lewi_setup
        code, lent = lewi.lend(1, CpuSet([6, 7]))
        assert code is DlbError.DLB_SUCCESS
        assert lent == CpuSet([6, 7])

    def test_lend_only_owned_cpus(self, lewi_setup):
        lewi, _ = lewi_setup
        code, lent = lewi.lend(1, CpuSet([7, 8]))
        assert lent == CpuSet([7])

    def test_lend_unknown_pid(self, lewi_setup):
        lewi, _ = lewi_setup
        code, lent = lewi.lend(99)
        assert code is DlbError.DLB_ERR_NOPROC
        assert lent.is_empty()

    def test_single_cpu_process_does_not_lend(self, shmem):
        shmem.register(5, CpuSet([3]))
        lewi = LewiModule(shmem)
        code, lent = lewi.lend(5)
        assert code is DlbError.DLB_NOUPDT
        assert lent.is_empty()

    def test_double_lend_is_noupdt(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        code, lent = lewi.lend(1)
        assert code is DlbError.DLB_NOUPDT


class TestBorrowReclaim:
    def test_borrow_takes_idle_cpus(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        code, borrowed = lewi.borrow(2)
        assert code is DlbError.DLB_SUCCESS
        assert borrowed == CpuSet.from_range(1, 8)
        assert lewi.borrowed_by(2) == borrowed
        assert lewi.effective_mask(2) == CpuSet.from_range(1, 16)
        assert lewi.idle_cpus().is_empty()

    def test_borrow_with_limit(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        code, borrowed = lewi.borrow(2, max_cpus=3)
        assert borrowed.count() == 3

    def test_cannot_borrow_own_lent_cpus(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        code, borrowed = lewi.borrow(1)
        assert code is DlbError.DLB_NOUPDT

    def test_borrow_nothing_available(self, lewi_setup):
        lewi, _ = lewi_setup
        code, borrowed = lewi.borrow(2)
        assert code is DlbError.DLB_NOUPDT

    def test_borrow_unknown_pid(self, lewi_setup):
        lewi, _ = lewi_setup
        assert lewi.borrow(99)[0] is DlbError.DLB_ERR_NOPROC

    def test_reclaim_revokes_borrowers(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        lewi.borrow(2)
        code, reclaimed, revoked = lewi.reclaim(1)
        assert code is DlbError.DLB_SUCCESS
        assert reclaimed == CpuSet.from_range(1, 8)
        assert revoked == {2: CpuSet.from_range(1, 8)}
        assert lewi.effective_mask(1) == CpuSet.from_range(0, 8)
        assert lewi.effective_mask(2) == CpuSet.from_range(8, 16)

    def test_reclaim_without_lending(self, lewi_setup):
        lewi, _ = lewi_setup
        code, reclaimed, revoked = lewi.reclaim(1)
        assert code is DlbError.DLB_NOUPDT
        assert reclaimed.is_empty()
        assert revoked == {}

    def test_return_borrowed_back_to_pool(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1)
        lewi.borrow(2)
        code, returned = lewi.return_borrowed(2, CpuSet([1, 2]))
        assert code is DlbError.DLB_SUCCESS
        assert returned == CpuSet([1, 2])
        assert lewi.idle_cpus() == CpuSet([1, 2])
        assert lewi.borrowed_by(2) == CpuSet.from_range(3, 8)

    def test_return_borrowed_nothing(self, lewi_setup):
        lewi, _ = lewi_setup
        assert lewi.return_borrowed(2)[0] is DlbError.DLB_NOUPDT


class TestTeardown:
    def test_unregister_purges_lender_state(self, lewi_setup):
        """Regression: CPUs lent by a finished process stayed borrowable with
        a stale lender pid after the process unregistered."""
        lewi, shmem = lewi_setup
        lewi.lend(1)
        shmem.unregister(1)
        assert lewi.idle_cpus().is_empty()
        assert lewi.lent_by(1).is_empty()
        code, borrowed = lewi.borrow(2)
        assert code is DlbError.DLB_NOUPDT
        assert borrowed.is_empty()

    def test_unregister_lender_revokes_existing_borrows(self, lewi_setup):
        lewi, shmem = lewi_setup
        lewi.lend(1)
        lewi.borrow(2)
        shmem.unregister(1)
        assert lewi.borrowed_by(2).is_empty()
        assert lewi.idle_cpus().is_empty()
        # The survivor's effective mask is back to what it owns.
        assert lewi.effective_mask(2) == CpuSet.from_range(8, 16)

    def test_unregister_borrower_returns_cpus_to_pool(self, lewi_setup):
        lewi, shmem = lewi_setup
        lewi.lend(1)
        lewi.borrow(2)
        shmem.unregister(2)
        assert lewi.borrowed_by(2).is_empty()
        assert lewi.idle_cpus() == CpuSet.from_range(1, 8)
        # The lender can still reclaim; nothing is borrowed any more.
        code, reclaimed, revoked = lewi.reclaim(1)
        assert code is DlbError.DLB_SUCCESS
        assert reclaimed == CpuSet.from_range(1, 8)
        assert revoked == {}

    def test_forget_is_also_directly_callable(self, lewi_setup):
        lewi, _ = lewi_setup
        lewi.lend(1, CpuSet([6, 7]))
        lewi.forget(1)
        assert lewi.lent_by(1).is_empty()
        assert lewi.idle_cpus().is_empty()

    def test_post_finalize_purges_lewi_state(self, lewi_setup, admin):
        """The administrator teardown path (DROM_PostFinalize) purges too."""
        lewi, shmem = lewi_setup
        lewi.lend(1)
        admin.post_finalize(1, DromFlags.NONE)
        assert not shmem.has(1)
        assert lewi.idle_cpus().is_empty()
        assert lewi.borrow(2)[0] is DlbError.DLB_NOUPDT


class TestComposition:
    def test_lewi_and_drom_coexist(self, lewi_setup, admin):
        """LeWI lending composes with a DROM mask change on the same process."""
        lewi, shmem = lewi_setup
        lewi.lend(1, CpuSet([6, 7]))
        admin.set_process_mask(1, CpuSet.from_range(0, 4), DromFlags.STEAL)
        shmem.poll(1)
        # After DROM shrinks the process, its effective mask excludes both the
        # removed CPUs and what it lent.
        assert lewi.effective_mask(1) == CpuSet.from_range(0, 4) - lewi.lent_by(1)
