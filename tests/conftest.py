"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.drom import attach_admin
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology, NodeTopology


@pytest.fixture
def mn3_node() -> NodeTopology:
    """One MareNostrum III node: 2 sockets x 8 cores, 128 GB."""
    return NodeTopology.marenostrum3()


@pytest.fixture
def mn3_cluster() -> ClusterTopology:
    """The paper's two-node partition."""
    return ClusterTopology.marenostrum3(2)


@pytest.fixture
def shmem(mn3_node: NodeTopology) -> NodeSharedMemory:
    """A fresh DLB shared memory segment on an MN3 node."""
    return NodeSharedMemory(mn3_node)


@pytest.fixture
def admin(shmem: NodeSharedMemory):
    """An attached DROM administrator on the node's shared memory."""
    return attach_admin(shmem)


@pytest.fixture
def full_mask(mn3_node: NodeTopology) -> CpuSet:
    return mn3_node.full_mask()
