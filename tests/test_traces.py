"""Tests of the content-addressed trace tier (`repro.traces`).

Covers the store round trip (byte-identical artifacts, exact float
equality), the two-tier campaign memoisation contract ("skip execution only
when both tiers hit"), scenario replay equality against live executions, the
query engine, the CLI, merge/sharding, and the reader edge cases the
satellites call out (empty tracer, horizon-0 run, mask-change-only trace,
``EV_STEP_IPC_MILLI`` round trip through the compressed tier).
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    HighPriorityWorkloadRef,
    RunSpec,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
    run_scenario_pair,
)
from repro.experiments.usecase1 import imbalance_trace, scenario_timelines
from repro.experiments.usecase2 import run_usecase2
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.results import ParaverTraceSink, ResultStore, content_key, prv_text, read_prv
from repro.results.sinks import EV_STEP_IPC_MILLI
from repro.traces import (
    TRACE_FORMAT_VERSION,
    ScenarioReplay,
    TraceReader,
    TraceStore,
)
from repro.traces.__main__ import main as traces_main
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)


def small_spec(name: str = "traces", seeds=(0,)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        workloads=tuple(SyntheticWorkloadRef(spec=SMALL, seed=s) for s in seeds),
        clusters=(ClusterRef(nnodes=4),),
    )


@pytest.fixture(scope="module")
def traced_run():
    run = RunSpec(
        index=0,
        scenario=DROM,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )
    return run, execute_run(run, trace=True)


class TestTraceStoreRoundTrip:
    def test_put_get_exact_equality(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        path = store.put(run, result)
        assert path == store.path_for(content_key(run))
        entry = store.get(run)
        assert entry is not None
        assert entry.tracer.steps() == result.tracer.steps()
        assert entry.tracer.mask_changes() == result.tracer.mask_changes()
        assert entry.header["end_time"] == result.end_time
        assert entry.header["scenario"] == run.scenario

    def test_reput_is_byte_identical(self, traced_run, tmp_path):
        # gzip mtime is pinned, so the artifact is a pure function of the
        # trace — re-puts and shard merges dedupe byte-wise.
        run, result = traced_run
        store = TraceStore(tmp_path)
        first = store.put(run, result).read_bytes()
        assert store.put(run, result).read_bytes() == first

    def test_same_key_as_metrics_tier(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        store.put(run, result)
        assert store.keys() == [content_key(run)]

    def test_contains_and_miss(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        assert run not in store
        assert store.get(run) is None
        store.put(run, result)
        assert run in store

    def test_stale_version_is_a_miss_and_gc_collects(self, traced_run, tmp_path):
        # Version 2 predates the chunked layout and the sched member; it is
        # outside the compat set.  v3 *is* accepted — the backward-compat
        # path has its own coverage in tests/test_sched_obs.py.
        run, result = traced_run
        store = TraceStore(tmp_path)
        path = store.put(run, result)
        text = gzip.decompress(path.read_bytes()).decode()
        lines = text.splitlines()
        header = json.loads(lines[0])
        header["version"] = 2
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        assert run not in store
        assert store.get(run) is None
        assert store.gc(dry_run=True) == [content_key(run)]
        assert store.gc() == [content_key(run)]
        assert len(store) == 0

    def test_corrupt_artifact_is_a_miss(self, traced_run, tmp_path):
        run, _result = traced_run
        store = TraceStore(tmp_path)
        store.path_for(content_key(run)).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(content_key(run)).write_bytes(b"not gzip at all")
        assert store.get(run) is None
        assert list(store.entries()) == []

    def test_truncated_artifact_is_a_miss_and_collectable(self, traced_run, tmp_path):
        # Regression: a gzip stream cut mid-way (interrupted shard copy)
        # raises EOFError/zlib.error, which must read as a miss — never
        # abort a campaign — and must be gc-able.
        run, result = traced_run
        store = TraceStore(tmp_path)
        path = store.put(run, result)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert run not in store
        assert store.get(run) is None
        assert list(store.entries()) == []
        fresh = TraceStore(tmp_path / "fresh")
        assert fresh.merge(store) == 0
        assert store.gc() == [content_key(run)]
        assert not path.exists()

    def test_load_by_prefix(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        store.put(run, result)
        key = content_key(run)
        assert store.load(key[:10]).key == key
        with pytest.raises(KeyError, match="no trace"):
            store.load("ffffff")


class TestTraceStoreMerge:
    def test_union_of_shards(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        shard_a, shard_b = spec.shard(2)
        store_a = TraceStore(tmp_path / "a")
        store_b = TraceStore(tmp_path / "b")
        run_campaign(shard_a, trace_store=store_a)
        run_campaign(shard_b, trace_store=store_b)
        merged = TraceStore(tmp_path / "merged")
        assert merged.merge(store_a) == len(store_a)
        assert merged.merge(store_b) == len(store_b)
        assert set(merged.keys()) == set(store_a.keys()) | set(store_b.keys())
        # The merged tier serves the full campaign without simulating.
        mstore = ResultStore(tmp_path / "metrics")
        run_campaign(spec, store=mstore)  # warm the metrics tier
        warm = run_campaign(spec, store=mstore, trace_store=merged)
        assert warm.executed == 0

    def test_local_current_entry_wins_and_stale_source_skipped(
        self, traced_run, tmp_path
    ):
        run, result = traced_run
        local = TraceStore(tmp_path / "local")
        remote = TraceStore(tmp_path / "remote")
        local.put(run, result)
        before = local.path_for(content_key(run)).read_bytes()
        remote.put(run, result)
        assert local.merge(remote) == 0
        assert local.path_for(content_key(run)).read_bytes() == before
        # A stale-format source artifact is never imported.
        stale = remote.path_for(content_key(run))
        stale.write_bytes(gzip.compress(b'{"record": "run", "version": 0}\n'))
        fresh = TraceStore(tmp_path / "fresh")
        assert fresh.merge(remote) == 0
        assert len(fresh) == 0


class TestTwoTierCampaign:
    def test_cold_then_warm_executes_zero(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = run_campaign(spec, store=store, trace_store=traces)
        assert cold.executed == spec.nruns and cold.cache_hits == 0
        assert len(traces) == spec.nruns
        warm = run_campaign(spec, store=store, trace_store=traces)
        assert warm.executed == 0 and warm.cache_hits == spec.nruns
        assert warm.rows == cold.rows

    def test_metrics_hit_trace_miss_resimulates_and_backfills(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        run_campaign(spec, store=store)  # metrics tier only
        backfill = run_campaign(spec, store=store, trace_store=traces)
        assert backfill.executed == spec.nruns  # trace misses force re-runs
        assert len(traces) == spec.nruns
        warm = run_campaign(spec, store=store, trace_store=traces)
        assert warm.executed == 0

    def test_pooled_writes_identical_artifacts(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        serial = TraceStore(tmp_path / "serial")
        pooled = TraceStore(tmp_path / "pooled")
        run_campaign(spec, workers=1, trace_store=serial)
        run_campaign(spec, workers=2, trace_store=pooled)
        assert serial.keys() == pooled.keys()
        for key in serial.keys():
            assert (
                serial.path_for(key).read_bytes() == pooled.path_for(key).read_bytes()
            )

    def test_pooled_warm_run_executes_zero(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = run_campaign(spec, workers=2, store=store, trace_store=traces)
        warm = run_campaign(spec, workers=2, store=store, trace_store=traces)
        assert cold.executed == spec.nruns and warm.executed == 0
        assert warm.rows == cold.rows


class TestScenarioReplay:
    def test_pair_replays_when_both_tiers_hit(self, tmp_path):
        ref = SyntheticWorkloadRef(spec=SMALL, seed=0)
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = run_scenario_pair(
            ref, cluster=ClusterRef(nnodes=4), store=store, trace_store=traces
        )
        assert all(not r.replayed for r in cold.values())
        warm = run_scenario_pair(
            ref, cluster=ClusterRef(nnodes=4), store=store, trace_store=traces
        )
        assert all(isinstance(r, ScenarioReplay) and r.replayed for r in warm.values())
        for scenario in (SERIAL, DROM):
            live, replay = cold[scenario], warm[scenario]
            assert replay.tracer.steps() == live.tracer.steps()
            assert replay.tracer.mask_changes() == live.tracer.mask_changes()
            assert replay.metrics.total_run_time == live.metrics.total_run_time
            assert replay.metrics.response_times() == dict(
                live.metrics.response_times()
            )
            assert replay.metrics.wait_times() == dict(live.metrics.wait_times())
            assert replay.end_time == live.end_time
            assert replay.workload.name == live.workload.name
            for job in live.metrics.response_times():
                assert replay.job_utilisation(job) == pytest.approx(
                    live.job_utilisation(job)
                )

    def test_sinks_are_fed_on_replays(self, tmp_path):
        # Regression: replays carry a full tracer, so a warm pair must still
        # export through its sinks (the pre-tier behaviour), byte-identically.
        from repro.results import JsonlTraceSink

        ref = SyntheticWorkloadRef(spec=SMALL, seed=0)
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        run_scenario_pair(
            ref, cluster=ClusterRef(nnodes=4), store=store, trace_store=traces,
            sinks=(JsonlTraceSink(cold_dir),),
        )
        warm = run_scenario_pair(
            ref, cluster=ClusterRef(nnodes=4), store=store, trace_store=traces,
            sinks=(JsonlTraceSink(warm_dir),),
        )
        assert all(r.replayed for r in warm.values())
        cold_files = sorted(p.name for p in cold_dir.glob("*.jsonl"))
        warm_files = sorted(p.name for p in warm_dir.glob("*.jsonl"))
        assert cold_files == warm_files and len(warm_files) == 2
        for name in warm_files:
            assert (warm_dir / name).read_text() == (cold_dir / name).read_text()

    def test_metrics_only_store_still_executes(self, tmp_path):
        # Without the trace tier the pair must not try to replay.
        ref = SyntheticWorkloadRef(spec=SMALL, seed=0)
        store = ResultStore(tmp_path / "m")
        run_scenario_pair(ref, cluster=ClusterRef(nnodes=4), store=store)
        again = run_scenario_pair(ref, cluster=ClusterRef(nnodes=4), store=store)
        assert all(not r.replayed for r in again.values())


class TestWarmFigures:
    def test_usecase2_warm_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = run_usecase2(store=store, trace_store=traces)
        warm = run_usecase2(store=store, trace_store=traces)
        assert cold.executed == 2 and warm.executed == 0
        for scenario in ("serial", "drom"):
            assert warm.cycles_rendering(scenario) == cold.cycles_rendering(scenario)
            for job, hist in cold.ipc_histograms(scenario).items():
                assert (warm.ipc_histograms(scenario)[job] == hist).all()
        assert warm.ipc_comparison() == cold.ipc_comparison()
        assert warm.total_run_time_gain == cold.total_run_time_gain
        assert warm.wait_times() == cold.wait_times()
        assert warm.coreneuron_expanded() == cold.coreneuron_expanded()

    def test_usecase2_shares_cells_with_the_fig15_campaign(self, tmp_path):
        # run_usecase2's scenario pair and usecase2_responses' campaign use
        # the same workload reference, so one warm store serves Figs 13-15.
        run = RunSpec(index=0, scenario=SERIAL, workload=HighPriorityWorkloadRef())
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        run_usecase2(store=store, trace_store=traces)
        assert content_key(run) in store.keys()
        assert content_key(run) in traces.keys()

    def test_scenario_timelines_warm_equality(self, tmp_path):
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = scenario_timelines(store=store, trace_store=traces)
        warm = scenario_timelines(store=store, trace_store=traces)
        assert warm == cold  # frozen dataclasses: rendering + intervals

    def test_imbalance_trace_warm_equality(self, tmp_path):
        store = ResultStore(tmp_path / "m")
        traces = TraceStore(tmp_path / "t")
        cold = imbalance_trace(store=store, trace_store=traces)
        warm = imbalance_trace(store=store, trace_store=traces)
        assert warm == cold


class TestTraceReader:
    def test_queries_match_tracer(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        store.put(run, result)
        reader = TraceReader(store.get(run))
        assert reader.jobs() == result.tracer.jobs()
        intervals = reader.job_intervals()
        for job in reader.jobs():
            assert intervals[job] == result.tracer.span(job)
            assert reader.ipc_series(job) == [
                (s.start, s.ipc) for s in result.tracer.steps(job)
            ]
        assert reader.mask_change_sequence() == result.tracer.mask_changes()
        assert reader.render_job_widths(bin_seconds=100.0)

    def test_team_size_series_tracks_mask_changes(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path)
        store.put(run, result)
        reader = TraceReader(store.get(run))
        changed = {c.job for c in result.tracer.mask_changes()}
        assert changed, "DROM run should observe mask changes"
        for job in changed:
            ranks = {c.rank for c in result.tracer.mask_changes(job)}
            for rank in ranks:
                series = reader.team_size_series(job, rank)
                changes = [
                    c for c in result.tracer.mask_changes(job) if c.rank == rank
                ]
                assert series[0] == (0.0, changes[0].old_threads)
                assert series[1:] == [(c.time, c.new_threads) for c in changes]

    def test_ipc_histogram_matches_counter_log(self, traced_run):
        _run, result = traced_run
        reader = TraceReader(result.tracer)
        job = result.tracer.jobs()[0]
        total = reader.ipc_histogram(job)
        per_thread = result.tracer.counter_log().ipc_histogram(job)
        assert total.sum() == sum(c.sum() for c in per_thread.values())


class TestReaderEdgeCases:
    """Satellite: read_prv/read_jsonl edge cases through the compressed tier."""

    @staticmethod
    def _store_and_reload(tmp_path, tracer: Tracer, scenario: str = SERIAL):
        """Round-trip a hand-built tracer through a TraceStore artifact."""
        from repro.workload.runner import ScenarioResult

        run = RunSpec(
            index=0,
            scenario=scenario,
            workload=SyntheticWorkloadRef(spec=SMALL, seed=99),
            cluster=ClusterRef(nnodes=4),
        )
        ends = [s.end for s in tracer]
        result = ScenarioResult(
            scenario=scenario,
            workload=run.workload.build(),
            metrics=None,
            tracer=tracer,
            jobs={},
            end_time=max(ends) if ends else 0.0,
        )
        store = TraceStore(tmp_path)
        store.put(run, result)
        return store.get(run)

    def test_empty_tracer_round_trip(self, tmp_path):
        entry = self._store_and_reload(tmp_path, Tracer())
        assert len(entry.tracer) == 0
        assert entry.tracer.mask_changes() == []
        reader = TraceReader(entry)
        assert reader.job_intervals() == {}
        # The .prv export of an empty trace still has a valid header.
        out = tmp_path / "empty.prv"
        out.write_text(prv_text(entry.tracer))
        header, states, events = read_prv(out)
        assert header.startswith("#Paraver") and states == [] and events == []

    def test_horizon_zero_run(self, tmp_path):
        # All steps have zero duration at t=0: the horizon is 0 but the
        # trace is non-empty, and every derived view must stay well-formed.
        tracer = Tracer()
        tracer.record_step(
            StepRecord(
                job="j", rank=0, node="n0", start=0.0, duration=0.0, phase="p",
                nthreads=2, thread_utilisation=(1.0, 1.0), ipc=1.5, work_units=1.0,
            )
        )
        entry = self._store_and_reload(tmp_path, tracer)
        reader = TraceReader(entry)
        assert reader.job_intervals() == {"j": (0.0, 0.0)}
        assert reader.view().horizon() == 0.0
        out = tmp_path / "h0.prv"
        out.write_text(prv_text(entry.tracer))
        header, states, events = read_prv(out)
        assert ":0_us:" in header
        assert len(states) == 2 and len(events) == 1

    def test_mask_change_only_trace(self, tmp_path):
        tracer = Tracer()
        tracer.record_mask_change(
            MaskChangeRecord(job="j", rank=0, time=1.0, old_threads=4, new_threads=2)
        )
        entry = self._store_and_reload(tmp_path, tracer, scenario=DROM)
        assert len(entry.tracer) == 0
        assert entry.tracer.mask_changes() == tracer.mask_changes()
        reader = TraceReader(entry)
        assert reader.team_size_series("j") == [(0.0, 4), (1.0, 2)]
        # The .prv export drops the unanchorable event but stays valid.
        out = tmp_path / "mask.prv"
        out.write_text(prv_text(entry.tracer))
        header, states, events = read_prv(out)
        assert header.startswith("#Paraver") and states == [] and events == []

    def test_step_ipc_milli_round_trip(self, traced_run, tmp_path):
        # EV_STEP_IPC_MILLI values exported from a store-replayed tracer must
        # equal the live export's, line for line.
        run, result = traced_run
        store = TraceStore(tmp_path / "t")
        store.put(run, result)
        live = prv_text(result.tracer)
        replayed = prv_text(store.get(run).tracer)
        assert replayed == live  # full byte equality, a fortiori the events
        marker = f":{EV_STEP_IPC_MILLI}:"
        ipc_events = [l for l in live.splitlines() if marker in l]
        assert ipc_events, "expected per-step IPC events"
        expected = [int(round(s.ipc * 1000)) for s in result.tracer]
        values = [
            int(line.split(marker, 1)[1].split(":", 1)[0]) for line in ipc_events
        ]
        assert values == expected


class TestTracesCli:
    @pytest.fixture()
    def populated(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path / "t")
        store.put(run, result)
        return run, result, store

    def test_ls_and_show(self, populated, capsys):
        run, _result, store = populated
        assert traces_main(["ls", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert content_key(run)[:12] in out and "drom" in out
        assert traces_main(["show", content_key(run)[:10], "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "scenario  drom" in out

    def test_show_unknown_key(self, populated, capsys):
        _run, _result, store = populated
        assert traces_main(["show", "ffff", "--store", str(store.root)]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_export_prv_matches_live_sink(self, populated, tmp_path, capsys):
        run, result, store = populated
        live = ParaverTraceSink(tmp_path / "live").write(run, result)
        out_dir = tmp_path / "exported"
        assert traces_main([
            "export", content_key(run)[:10], "--store", str(store.root),
            "--out", str(out_dir),
        ]) == 0
        exported = list(out_dir.glob("*.prv"))
        assert len(exported) == 1
        assert exported[0].read_text() == live.read_text()
        # Re-export overwrites (content-keyed stem), never accumulates.
        assert traces_main([
            "export", content_key(run)[:10], "--store", str(store.root),
            "--out", str(out_dir),
        ]) == 0
        assert len(list(out_dir.glob("*.prv"))) == 1

    def test_export_jsonl_is_the_decompressed_artifact(self, populated, tmp_path, capsys):
        run, _result, store = populated
        out_dir = tmp_path / "exported"
        assert traces_main([
            "export", content_key(run)[:10], "--store", str(store.root),
            "--format", "jsonl", "--out", str(out_dir),
        ]) == 0
        exported = list(out_dir.glob("*.jsonl"))
        assert len(exported) == 1
        raw = gzip.decompress(store.path_for(content_key(run)).read_bytes())
        assert exported[0].read_bytes() == raw

    def test_gc_collects_stale_artifact(self, populated, capsys):
        run, _result, store = populated
        path = store.path_for(content_key(run))
        path.write_bytes(gzip.compress(b'{"record": "run", "version": 0}\n'))
        assert traces_main(["gc", "--store", str(store.root)]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert path.exists()
        assert traces_main(["gc", "--store", str(store.root), "--delete"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not path.exists()


class TestMergeCliWithTraces:
    def test_merge_ships_both_tiers(self, tmp_path, capsys):
        from repro.results.__main__ import main as results_main

        spec = small_spec(seeds=(0, 1))
        shards = spec.shard(2)
        for i, shard in enumerate(shards):
            run_campaign(
                shard,
                store=ResultStore(tmp_path / f"m{i}"),
                trace_store=TraceStore(tmp_path / f"t{i}"),
            )
        code = results_main([
            "merge", str(tmp_path / "m"), str(tmp_path / "m0"), str(tmp_path / "m1"),
            "--traces", str(tmp_path / "t"), str(tmp_path / "t0"), str(tmp_path / "t1"),
        ])
        assert code == 0
        warm = run_campaign(
            spec, store=ResultStore(tmp_path / "m"), trace_store=TraceStore(tmp_path / "t")
        )
        assert warm.executed == 0 and warm.cache_hits == spec.nruns

    def test_merge_traces_needs_target_and_shard(self, tmp_path, capsys):
        from repro.results.__main__ import main as results_main

        (tmp_path / "m0").mkdir()
        code = results_main([
            "merge", str(tmp_path / "m"), str(tmp_path / "m0"),
            "--traces", str(tmp_path / "t"),
        ])
        assert code == 2
        assert "--traces" in capsys.readouterr().err

    def test_merge_missing_trace_shard_fails(self, tmp_path, capsys):
        from repro.results.__main__ import main as results_main

        (tmp_path / "m0").mkdir()
        code = results_main([
            "merge", str(tmp_path / "m"), str(tmp_path / "m0"),
            "--traces", str(tmp_path / "t"), str(tmp_path / "missing"),
        ])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err
