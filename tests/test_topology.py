"""Tests of node and cluster topology models."""

from __future__ import annotations

import pytest

from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology, NodeTopology, Socket


class TestSocket:
    def test_valid_socket(self):
        socket = Socket(index=0, cpus=CpuSet.from_range(0, 8))
        assert socket.cpus.count() == 8

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Socket(index=-1, cpus=CpuSet([0]))

    def test_empty_socket_rejected(self):
        with pytest.raises(ValueError):
            Socket(index=0, cpus=CpuSet.empty())


class TestNodeTopology:
    def test_marenostrum3_shape(self, mn3_node):
        assert mn3_node.ncpus == 16
        assert mn3_node.nsockets == 2
        assert mn3_node.cores_per_socket == 8
        assert mn3_node.memory_gb == 128.0

    def test_full_mask(self, mn3_node):
        assert mn3_node.full_mask() == CpuSet.from_range(0, 16)

    def test_socket_of(self, mn3_node):
        assert mn3_node.socket_of(0).index == 0
        assert mn3_node.socket_of(8).index == 1
        with pytest.raises(ValueError):
            mn3_node.socket_of(99)

    def test_socket_mask(self, mn3_node):
        assert mn3_node.socket_mask(0) == CpuSet.from_range(0, 8)
        assert mn3_node.socket_mask(1) == CpuSet.from_range(8, 16)

    def test_sockets_spanned(self, mn3_node):
        assert mn3_node.sockets_spanned(CpuSet.from_range(0, 4)) == 1
        assert mn3_node.sockets_spanned(CpuSet.from_range(6, 10)) == 2
        assert mn3_node.sockets_spanned(CpuSet.empty()) == 0

    def test_validate_mask(self, mn3_node):
        mn3_node.validate_mask(CpuSet.from_range(0, 16))
        with pytest.raises(ValueError):
            mn3_node.validate_mask(CpuSet([16]))

    def test_memory_bandwidth_is_sum_of_sockets(self, mn3_node):
        assert mn3_node.memory_bandwidth_gbs == pytest.approx(80.0)

    def test_uniform_custom_shape(self):
        node = NodeTopology.uniform(sockets=4, cores_per_socket=4, memory_gb=64)
        assert node.ncpus == 16
        assert node.nsockets == 4
        assert node.memory_gb == 64

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            NodeTopology.uniform(sockets=0)
        with pytest.raises(ValueError):
            NodeTopology.uniform(cores_per_socket=0)

    def test_overlapping_sockets_rejected(self):
        with pytest.raises(ValueError):
            NodeTopology(
                name="bad",
                sockets=(
                    Socket(0, CpuSet.from_range(0, 8)),
                    Socket(1, CpuSet.from_range(4, 12)),
                ),
            )

    def test_node_needs_sockets(self):
        with pytest.raises(ValueError):
            NodeTopology(name="empty", sockets=())


class TestClusterTopology:
    def test_marenostrum3_cluster(self, mn3_cluster):
        assert mn3_cluster.nnodes == 2
        assert mn3_cluster.ncpus == 32
        assert mn3_cluster.node_names() == ("mn3-0", "mn3-1")

    def test_node_lookup(self, mn3_cluster):
        assert mn3_cluster.node("mn3-1").name == "mn3-1"
        with pytest.raises(KeyError):
            mn3_cluster.node("nope")

    def test_duplicate_node_names_rejected(self):
        node = NodeTopology.marenostrum3("same")
        with pytest.raises(ValueError):
            ClusterTopology(nodes=(node, NodeTopology.marenostrum3("same")))

    def test_cluster_needs_positive_nodes(self):
        with pytest.raises(ValueError):
            ClusterTopology.marenostrum3(0)
