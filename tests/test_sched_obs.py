"""Tests of the scheduler observability layer (`repro.obs.sched`).

The load-bearing contracts:

* **Event-driven probe** — the controller pushes every lifecycle edge to the
  probe; queue depth is correct even mid-scheduling-pass (skipped jobs stay
  pending), and batched/unbatched executions record identical timelines.
* **Trace format v4** — the sched member round-trips byte-identically, v3
  artifacts still read (with an empty timeline), and a truncated sched
  member is a cache miss.
* **Warm == cold** — fairness/utilization queries over a stored artifact
  equal the live run's answers exactly, with zero simulation.
* **Starvation regression** (ROADMAP item 4's pinned numbers) — under
  greedy backfill a small-job stream grows a wide job's ``max_wait``
  without bound.
"""

from __future__ import annotations

import gzip
import io
import json
import logging

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    RunSpec,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
)
from repro.cpuset.topology import ClusterTopology
from repro.obs import (
    ClusterProbe,
    FairnessSummary,
    JobLifecycleRecord,
    NodeSample,
    QueueSample,
    SchedTimeline,
    Telemetry,
    TickingClockFactory,
    chrome_trace_events,
    summarise,
    validate_chrome_trace,
    write_summary,
)
from repro.obs.bench import (
    append_history,
    history_row,
    load_history,
    render_report,
)
from repro.obs.log import configure, resolve_level
from repro.obs.sched import SLOWDOWN_BOUND
from repro.results.store import ResultStore, content_key
from repro.slurm.jobs import JobSpec
from repro.slurm.slurmctld import Slurmctld
from repro.traces.query import TraceReader
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL, ScenarioRunner
from repro.workload.workloads import in_situ_workload

SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)


def small_run(scenario: str = DROM) -> RunSpec:
    return RunSpec(
        index=0,
        scenario=scenario,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )


def rigid(name: str, nodes: int, cpus: int, priority: int = 0) -> JobSpec:
    return JobSpec(
        name=name,
        nodes=nodes,
        ntasks=nodes,
        cpus_per_task=cpus,
        malleable=False,
        priority=priority,
    )


class TestClusterProbe:
    def test_lifecycle_series_from_controller_events(self):
        probe = ClusterProbe()
        ctld = Slurmctld(ClusterTopology.marenostrum3(2), probe=probe)
        a = ctld.submit(rigid("a", 1, 16), 0.0)
        b = ctld.submit(rigid("b", 2, 16), 1.0)
        ctld.schedule(2.0)  # a starts; b blocked behind it (no backfill)
        ctld.job_completed(a.job_id, 10.0)
        ctld.schedule(10.0)  # b starts on both nodes
        ctld.job_completed(b.job_id, 30.0)
        timeline = probe.timeline()

        assert timeline.queue_depth_series() == [
            (0.0, 1),  # a submitted
            (1.0, 2),  # b submitted
            (2.0, 1),  # a started
            (10.0, 1),  # a completed (b still pending)
            (10.0, 0),  # b started
            (30.0, 0),  # b completed
        ]
        assert timeline.running_series() == [
            (0.0, 0), (1.0, 0), (2.0, 1), (10.0, 0), (10.0, 1), (30.0, 0),
        ]
        rows = timeline.job_lifecycle()
        assert [r.job for r in rows] == ["a", "b"]
        assert rows[0].wait_time == 2.0
        assert rows[1].wait_time == 9.0
        assert rows[1].granted_nodes == 2
        assert rows[1].turnaround == 29.0
        # node samples: a's start (1 node), a's completion, b's start and
        # completion on both nodes
        node_events = timeline.utilization_series()
        assert len(node_events) == 1 + 1 + 2 + 2
        busy = [s for s in timeline.utilization_series("mn3-1") if s.busy_cpus]
        assert all(s.ncpus == 16 for s in node_events)
        assert busy[0].busy_cpus == 16

    def test_queue_depth_counts_skipped_jobs_as_pending(self):
        # Mid-pass the controller's queue is mutated (skipped jobs requeue
        # only at pass end); the probe's own counters must not be fooled.
        probe = ClusterProbe()
        ctld = Slurmctld(
            ClusterTopology.marenostrum3(2), backfill=True, probe=probe
        )
        ctld.submit(rigid("small", 1, 8), 0.0)
        ctld.schedule(0.0)  # small occupies half of node 0
        ctld.submit(rigid("wide", 2, 16, priority=1), 1.0)
        ctld.submit(rigid("blocker", 1, 16), 1.0)
        ctld.schedule(1.0)  # wide pops first and blocks; blocker backfills
        depth = probe.timeline().queue_depth_series()[-1][1]
        assert depth == 1

    def test_cancel_of_pending_job_decrements_depth(self):
        probe = ClusterProbe()
        ctld = Slurmctld(ClusterTopology.marenostrum3(2), probe=probe)
        job = ctld.submit(rigid("doomed", 1, 16), 0.0)
        ctld.cancel(job.job_id, 5.0)
        series = probe.timeline().queue_depth_series()
        assert series == [(0.0, 1), (5.0, 0)]
        row = probe.timeline().job_lifecycle()[0]
        assert row.start_time is None and row.wait_time is None

    def test_probe_is_never_polled(self):
        # The controller only notifies on lifecycle edges: a run's sample
        # count is O(jobs), not O(steps).
        result = execute_run(small_run())
        njobs = len(result.sched.jobs)
        assert result.steps_advanced > 0
        # one sample per submit/start/complete edge, nothing per step
        assert len(result.sched.queue) <= 3 * njobs
        assert len(result.sched.nodes) <= 2 * njobs * 4  # starts+frees x nodes


class TestTimelineQueries:
    def test_fairness_percentiles_nearest_rank(self):
        rows = tuple(
            JobLifecycleRecord(
                job=f"j{i}",
                submit_time=0.0,
                start_time=wait,
                end_time=wait + 100.0,
                requested_nodes=1,
                granted_nodes=1,
                co_allocated=False,
            )
            for i, wait in enumerate([0.0, 10.0, 100.0])
        )
        fairness = SchedTimeline(jobs=rows).fairness_summary()
        assert fairness.njobs == 3 and fairness.started == 3
        assert fairness.p50_wait == 10.0
        assert fairness.p95_wait == 100.0
        assert fairness.max_wait == 100.0
        assert fairness.mean_wait == pytest.approx(110.0 / 3)
        # turnarounds 100/110/200 over run_time 100 -> slowdowns 1.0/1.1/2.0
        assert fairness.p50_slowdown == pytest.approx(1.1)
        assert fairness.max_slowdown == pytest.approx(2.0)

    def test_bounded_slowdown_floors_short_jobs(self):
        row = JobLifecycleRecord(
            job="quick",
            submit_time=0.0,
            start_time=0.0,
            end_time=1.0,  # run_time 1s << SLOWDOWN_BOUND
            requested_nodes=1,
            granted_nodes=1,
            co_allocated=False,
        )
        assert row.bounded_slowdown == max(1.0, 1.0 / SLOWDOWN_BOUND)
        pending = JobLifecycleRecord(
            job="pending",
            submit_time=0.0,
            start_time=None,
            end_time=None,
            requested_nodes=1,
            granted_nodes=0,
            co_allocated=False,
        )
        assert pending.bounded_slowdown is None
        summary = SchedTimeline(jobs=(pending,)).fairness_summary()
        assert summary.njobs == 1 and summary.started == 0
        assert summary.max_wait == 0.0

    def test_utilization_integrates_step_function(self):
        nodes = (
            NodeSample(0.0, "n1", 8, 1, 16),
            NodeSample(10.0, "n1", 0, 0, 16),
            NodeSample(0.0, "n2", 16, 1, 16),
        )
        timeline = SchedTimeline(nodes=nodes)
        # n1: 8 cpus x 10s; n2: 16 cpus x 20s
        assert timeline.busy_cpu_seconds(20.0) == 8 * 10 + 16 * 20
        assert timeline.capacity_cpu_seconds(20.0) == 2 * 16 * 20
        assert timeline.utilization(20.0) == pytest.approx(400.0 / 640.0)
        assert [s.node for s in timeline.utilization_series("n2")] == ["n2"]

    def test_codec_round_trip_and_unknown_record(self):
        result = execute_run(small_run())
        timeline = result.sched
        assert len(timeline) > 0
        assert SchedTimeline.from_records(timeline.to_records()) == timeline
        with pytest.raises(ValueError, match="unknown sched record"):
            SchedTimeline.from_records([{"record": "step"}])
        sample = QueueSample(1.0, 2, 3)
        assert QueueSample.from_record(sample.to_record()) == sample


class TestRunnerIntegration:
    def test_batched_and_reference_loops_record_identical_timelines(self):
        workload = in_situ_workload()
        for drom_enabled in (False, True):
            fast = ScenarioRunner(drom_enabled, batching=True).run(workload)
            slow = ScenarioRunner(drom_enabled, batching=False).run(workload)
            assert fast.sched == slow.sched
            assert len(fast.sched.jobs) == 2

    def test_drom_erases_the_serial_wait(self):
        # The paper's core claim, now visible at the scheduler level.
        workload = in_situ_workload()
        serial = ScenarioRunner(False).run(workload).sched.fairness_summary()
        drom = ScenarioRunner(True).run(workload).sched.fairness_summary()
        assert serial.max_wait > 1000.0
        assert drom.max_wait == 0.0
        assert serial.max_slowdown > drom.max_slowdown


class TestSchedPersistence:
    @pytest.fixture(scope="class")
    def stored(self, tmp_path_factory):
        run = small_run()
        result = execute_run(run, trace=True)
        store = TraceStore(tmp_path_factory.mktemp("traces"))
        path = store.put(run, result)
        return run, result, store, path

    def test_v4_round_trip_and_warm_equals_cold(self, stored):
        run, result, store, _path = stored
        entry = store.get(run)
        assert entry is not None
        assert entry.header["version"] == 4
        assert entry.header["nsched"] == len(result.sched)
        assert entry.sched == result.sched

        warm = TraceReader(entry)
        live = TraceReader(result.tracer, sched=result.sched)
        assert warm.fairness_summary() == live.fairness_summary()
        assert warm.queue_depth_series() == live.queue_depth_series()
        assert warm.utilization_series() == live.utilization_series()
        assert warm.utilization_series(
            warm.sched.node_names()[0]
        ) == live.utilization_series(live.sched.node_names()[0])
        assert warm.job_lifecycle() == live.job_lifecycle()

    def test_reput_is_byte_identical(self, stored):
        run, result, store, path = stored
        before = path.read_bytes()
        store.put(run, result)
        assert path.read_bytes() == before

    def test_sched_member_inflates_lazily(self, stored):
        run, _result, store, _path = stored
        entry = store.get(run)
        assert "sched" not in entry._inflated
        entry.sched_records()
        assert "sched" in entry._inflated
        # and it never inflated a step segment to answer
        assert entry.segments_inflated == 0

    def test_v3_artifact_reads_with_empty_sched(self, stored, tmp_path):
        # Hand-build a v3 artifact from the v4 one: drop the trailing sched
        # member and rewrite the header without the v4 fields.  The store
        # must keep serving it (empty timeline), not treat it as a miss.
        run, _result, store, path = stored
        data = path.read_bytes()
        header, header_bytes = TraceStore._header_span(path)
        sched_bytes = header["sched_bytes"]
        assert sched_bytes > 0
        body = data[header_bytes : len(data) - sched_bytes]
        header = {
            k: v for k, v in header.items() if k not in ("sched_bytes", "nsched")
        }
        header["version"] = 3
        from repro.traces.store import _gzip_member

        v3_store = TraceStore(tmp_path)
        v3_path = v3_store.path_for(content_key(run))
        v3_path.parent.mkdir(parents=True, exist_ok=True)
        v3_path.write_bytes(
            _gzip_member(json.dumps(header, sort_keys=True) + "\n") + body
        )
        entry = v3_store.get(run)
        assert entry is not None
        assert entry.sched == SchedTimeline()
        assert TraceReader(entry).fairness_summary().njobs == 0
        # the step records are still all there
        assert len(entry.tracer) == entry.header["nsteps"]

    def test_truncated_sched_member_is_a_miss(self, stored, tmp_path):
        run, result, _store, _path = stored
        store = TraceStore(tmp_path / "t")
        path = store.put(run, result)
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        assert store.get(run) is None
        assert run not in store
        path.write_bytes(data)
        assert store.get(run) is not None

    def test_replay_exposes_sched(self, stored, tmp_path):
        from repro.campaign import run_scenario_pair

        run, _result, _store, _path = stored
        store = ResultStore(tmp_path / "metrics")
        trace_store = TraceStore(tmp_path / "traces")
        cold = run_scenario_pair(
            run.workload, store=store, trace_store=trace_store
        )
        warm = run_scenario_pair(
            run.workload, store=store, trace_store=trace_store
        )
        for scenario in (SERIAL, DROM):
            assert warm[scenario].replayed
            assert warm[scenario].sched == cold[scenario].sched
            assert len(warm[scenario].sched.jobs) > 0


class TestStarvationRegression:
    """ROADMAP item 4's pinned numbers: greedy backfill starves a wide job.

    A stream of overlapping small jobs keeps one node partly busy at every
    scheduling pass, so the 2-node rigid job at the *head* of the queue
    waits for the entire stream — its wait grows linearly with the stream
    length.  EASY/conservative backfill must later cap this by reserving
    for the head job.
    """

    @staticmethod
    def _wide_wait_under_stream(nsmall: int) -> float:
        probe = ClusterProbe()
        ctld = Slurmctld(
            ClusterTopology.marenostrum3(2),
            drom_enabled=False,
            backfill=True,
            probe=probe,
        )
        first = ctld.submit(rigid("small-0", 1, 8), 0.0)
        ctld.schedule(0.0)
        wide = ctld.submit(rigid("wide", 2, 16), 1.0)
        ctld.schedule(1.0)  # wide blocked behind small-0
        previous = first
        for i in range(1, nsmall):
            t = 10.0 * i
            current = ctld.submit(rigid(f"small-{i}", 1, 8), t)
            ctld.schedule(t)  # greedy backfill starts it beside the wide job
            ctld.job_completed(previous.job_id, t + 5.0)
            ctld.schedule(t + 5.0)  # wide still blocked: small-i is running
            previous = current
        end = 10.0 * nsmall + 5.0
        ctld.job_completed(previous.job_id, end)
        ctld.schedule(end)  # stream over: the wide job finally starts
        ctld.job_completed(wide.job_id, end + 50.0)
        timeline = probe.timeline()
        row = next(r for r in timeline.job_lifecycle() if r.job == "wide")
        assert row.wait_time is not None
        assert timeline.fairness_summary().max_wait == row.wait_time
        return row.wait_time

    def test_wide_job_max_wait_grows_unbounded(self):
        short = self._wide_wait_under_stream(4)
        long = self._wide_wait_under_stream(8)
        longer = self._wide_wait_under_stream(16)
        assert short == pytest.approx(44.0)
        assert long == pytest.approx(84.0)
        assert longer == pytest.approx(164.0)
        # linear in the stream length: each extra small job adds its period
        assert long - short == pytest.approx(40.0)
        assert longer - long == pytest.approx(80.0)


class TestTelemetryAndExports:
    def small_sweep(self) -> CampaignSpec:
        return CampaignSpec(
            name="sched-sweep",
            workloads=(SyntheticWorkloadRef(spec=SMALL, seed=0),),
            scenarios=(SERIAL, DROM),
            clusters=(ClusterRef(nnodes=4),),
        )

    def test_summary_scheduler_block(self, tmp_path):
        obs = Telemetry(clock_factory=TickingClockFactory())
        run_campaign(self.small_sweep(), telemetry=obs)
        document = write_summary(obs, tmp_path / "telemetry.json")
        sched = document["summary"]["scheduler"]
        assert sched["jobs"] == 4  # 2 jobs x 2 scenarios
        assert sched["started"] == 4
        assert sched["capacity_cpu_seconds"] > 0
        assert 0.0 < sched["utilization"] < 2.0
        assert sched["max_wait"] >= sched["mean_wait"] >= 0.0

    def test_simulate_span_counters_and_series(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        run_campaign(self.small_sweep(), telemetry=obs)
        simulate = [
            s for root in obs.roots for s in root.walk() if s.name == "simulate"
        ]
        assert simulate
        for span in simulate:
            assert span.counters["sched_jobs"] == 2
            assert span.counters["sched_capacity_cpu_seconds"] > 0
            assert isinstance(span.attrs["sched_queue_series"], list)
            assert span.attrs["sched_queue_series"][0][1] == 1

    def test_chrome_trace_counter_track_validates(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        run_campaign(self.small_sweep(), telemetry=obs)
        events = chrome_trace_events(obs)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected sched counter events"
        assert all("pending" in e["args"] for e in counters)
        # the series attr stays out of the complete events' args
        for event in events:
            if event["ph"] == "X":
                assert "sched_queue_series" not in event.get("args", {})
        validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_bad_counter(self):
        base = {"name": "c", "cat": "t", "ph": "C", "pid": 0, "tid": 0}
        with pytest.raises(ValueError, match="invalid 'ts'"):
            validate_chrome_trace({"traceEvents": [dict(base, ts=-1, args={"a": 1})]})
        with pytest.raises(ValueError, match="numeric"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, ts=0, args={"a": "high"})]}
            )
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [dict(base, ph="B", ts=0)]})

    def test_executor_series_records_and_exports(self, tmp_path):
        from repro.exec.local import LocalPoolExecutor

        obs = Telemetry(clock_factory=TickingClockFactory())
        run_campaign(
            self.small_sweep(),
            store=ResultStore(tmp_path / "store"),
            executor=[LocalPoolExecutor(slots=2)],
            telemetry=obs,
        )
        executor_spans = [
            s for root in obs.roots for s in root.walk() if s.name == "executor"
        ]
        assert executor_spans
        series = executor_spans[0].attrs["queue_series"]
        assert series and all(len(sample) == 3 for sample in series)
        events = chrome_trace_events(obs)
        queue_counters = [
            e for e in events if e["ph"] == "C" and e["name"].startswith("queue ")
        ]
        assert queue_counters
        assert {"queued", "in_flight"} <= set(queue_counters[0]["args"])
        validate_chrome_trace({"traceEvents": events})

    def test_telemetry_stays_observation_only(self, tmp_path):
        # Default-on probes + sched persistence must not move a single
        # artifact byte between telemetry-on and telemetry-off campaigns.
        spec = self.small_sweep()
        plain = ResultStore(tmp_path / "plain")
        observed = ResultStore(tmp_path / "observed")
        run_campaign(spec, store=plain)
        run_campaign(
            spec,
            store=observed,
            telemetry=Telemetry(clock_factory=TickingClockFactory()),
        )
        for key in sorted(plain.scan()):
            assert (plain.root / f"{key}.json").read_bytes() == (
                observed.root / f"{key}.json"
            ).read_bytes()


class TestLogFallback:
    def test_configure_warns_and_falls_back_on_bad_level(self):
        stream = io.StringIO()
        logger = configure("chatty", stream=stream)
        try:
            assert logger.level == logging.WARNING
            assert "unknown log level" in stream.getvalue()
            assert "falling back" in stream.getvalue()
        finally:
            configure("warning")

    def test_resolve_level_still_strict(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")


class TestBenchHistory:
    REPORT = {
        "gate": {"minimum_speedup": 5.0, "passed": True},
        "aggregate": {
            "speedup": 10.0,
            "cells": 4,
            "span_seconds": {"simulate": 2.0, "summarise": 0.5},
        },
    }

    def test_history_row_distils_report(self):
        row = history_row("core", self.REPORT, commit="abc1234", timestamp=1)
        assert row["gate"] == "core"
        assert row["passed"] is True
        assert row["speedup"] == 10.0
        assert row["span_seconds"] == {"simulate": 2.0, "summarise": 0.5}
        assert row["commit"] == "abc1234"
        # shape-tolerant: a report with no aggregate still rows up
        sparse = history_row("store", {"gate": {"passed": False}})
        assert sparse["passed"] is False and sparse["span_seconds"] == {}

    def test_append_is_idempotent_per_gate(self, tmp_path):
        path = tmp_path / "history.jsonl"
        row = history_row("core", self.REPORT, commit="abc", timestamp=1)
        assert append_history(path, [row]) == 1
        assert append_history(path, [dict(row, timestamp=2)]) == 0
        changed = history_row(
            "core", {**self.REPORT, "aggregate": {"speedup": 11.0}}, commit="def"
        )
        assert append_history(path, [changed]) == 1
        assert len(load_history(path)) == 2

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, [history_row("core", self.REPORT)])
        with open(path, "a") as stream:
            stream.write('{"record": "bench", "gate": "core"')  # torn
        assert len(load_history(path)) == 1

    def test_report_flags_regressions(self):
        fast = history_row("core", self.REPORT, commit="aaa")
        slow = history_row(
            "core",
            {
                "gate": {"passed": True},
                "aggregate": {
                    "speedup": 6.0,  # -40% vs 10x
                    "span_seconds": {"simulate": 4.0},  # +60% vs 2.5s total
                },
            },
            commit="bbb",
        )
        text, nregressions = render_report([fast, slow])
        assert nregressions == 2
        assert "REGRESSION" in text and "speedup 10.00x -> 6.00x" in text
        text, nregressions = render_report([fast, dict(fast, commit="ccc")])
        assert nregressions == 0 and "no regressions" in text

    def test_cli_report(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        path = tmp_path / "history.jsonl"
        append_history(
            path,
            [
                history_row("core", self.REPORT, commit="aaa"),
                history_row(
                    "core",
                    {"gate": {"passed": True}, "aggregate": {"speedup": 2.0}},
                    commit="bbb",
                ),
            ],
        )
        assert obs_main(["bench", "report", "--history", str(path)]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert (
            obs_main(["bench", "report", "--history", str(path), "--strict"]) == 1
        )
        assert obs_main(["bench", "report", "--history", str(tmp_path / "no")]) == 0
        assert "empty" in capsys.readouterr().out


class TestTracesCli:
    def test_show_sched(self, tmp_path, capsys):
        from repro.traces.__main__ import main as traces_main

        run = small_run()
        result = execute_run(run, trace=True)
        store = TraceStore(tmp_path)
        store.put(run, result)
        key = content_key(run)
        assert traces_main(["show", key[:12], "--store", str(tmp_path), "--sched"]) == 0
        out = capsys.readouterr().out
        assert "fairness" in out and "queue" in out and "cluster" in out
        assert "Submit (s)" in out
