"""Tests of the analytic performance model primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.apps.perfmodel import (
    MemoryBandwidthModel,
    NOMINAL_CYCLES_PER_US,
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
)
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@pytest.fixture
def node():
    return NodeTopology.marenostrum3()


def simple_profile(partition=StaticPartition(0), alpha=0.01, numa=0.1, memory=None):
    return PerformanceProfile(
        name="test",
        phases=(
            PhaseProfile(
                name="compute",
                work_fraction=1.0,
                efficiency=ThreadEfficiency(alpha=alpha, numa_penalty=numa),
                memory=memory or MemoryBandwidthModel(),
                base_ipc=1.0,
                comm_overhead_per_rank=0.05,
            ),
        ),
        partition=partition,
    )


class TestThreadEfficiency:
    def test_single_thread_is_perfect(self):
        eff = ThreadEfficiency(alpha=0.05)
        assert eff.efficiency(1) == 1.0

    def test_efficiency_decreases_with_threads(self):
        eff = ThreadEfficiency(alpha=0.02)
        assert eff.efficiency(16) < eff.efficiency(8) < eff.efficiency(2)

    def test_numa_penalty_applies_only_when_spanning(self):
        eff = ThreadEfficiency(alpha=0.0, numa_penalty=0.2)
        assert eff.efficiency(8, sockets_spanned=1) == 1.0
        assert eff.efficiency(8, sockets_spanned=2) == pytest.approx(0.8)

    def test_throughput_monotone_in_threads(self):
        eff = ThreadEfficiency(alpha=0.02)
        values = [eff.throughput(n) for n in range(1, 17)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadEfficiency(alpha=-0.1)
        with pytest.raises(ValueError):
            ThreadEfficiency(numa_penalty=1.0)
        with pytest.raises(ValueError):
            ThreadEfficiency().efficiency(0)

    @given(st.integers(min_value=1, max_value=64), st.floats(min_value=0, max_value=0.2))
    def test_efficiency_in_unit_interval(self, n, alpha):
        eff = ThreadEfficiency(alpha=alpha, numa_penalty=0.1)
        value = eff.efficiency(n, sockets_spanned=2)
        assert 0.0 < value <= 1.0


class TestStaticPartition:
    def test_no_partition_is_fully_malleable(self):
        part = StaticPartition(chunks_per_thread=0)
        assert not part.is_static
        assert part.rounds(16, 3) == 1
        assert part.imbalance_factor(16, 3) == 1.0

    def test_even_division_has_no_imbalance(self):
        part = StaticPartition(chunks_per_thread=4)
        assert part.imbalance_factor(16, 16) == pytest.approx(1.0)
        assert part.imbalance_factor(16, 8) == pytest.approx(1.0)

    def test_figure5_case_one_thread_removed(self):
        """16->15 threads with 4 chunks/thread: 5 rounds instead of ~4.27."""
        part = StaticPartition(chunks_per_thread=4)
        assert part.rounds(16, 15) == 5
        assert part.imbalance_factor(16, 15) == pytest.approx(5 / (64 / 15))

    def test_relative_imbalance_shrinks_with_more_removed_cpus(self):
        """The paper's Conf. 3 observation: stealing more CPUs distributes the
        orphaned chunks better, so the *relative* excess over ideal shrinks."""
        part = StaticPartition(chunks_per_thread=4)
        assert part.imbalance_factor(16, 12) < part.imbalance_factor(16, 15)

    def test_thread_utilisation_shape(self):
        part = StaticPartition(chunks_per_thread=4)
        util = part.thread_utilisation(16, 15)
        assert len(util) == 15
        # 64 chunks over 15 threads: 4 threads do 5 chunks, 11 threads do 4.
        assert util.count(1.0) == 4
        assert util.count(pytest.approx(0.8)) == 11

    def test_thread_utilisation_full_team_all_busy(self):
        part = StaticPartition(chunks_per_thread=4)
        assert part.thread_utilisation(16, 16) == [1.0] * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticPartition(chunks_per_thread=-1)
        with pytest.raises(ValueError):
            StaticPartition(4).rounds(16, 0)
        with pytest.raises(ValueError):
            StaticPartition(4).thread_utilisation(16, 0)

    @given(st.integers(1, 8), st.integers(1, 32), st.integers(1, 32))
    def test_imbalance_at_least_one(self, chunks, initial, current):
        part = StaticPartition(chunks_per_thread=chunks)
        assert part.imbalance_factor(initial, current) >= 1.0 - 1e-12

    @given(st.integers(1, 8), st.integers(1, 32), st.integers(1, 32))
    def test_utilisation_bounded(self, chunks, initial, current):
        part = StaticPartition(chunks_per_thread=chunks)
        util = part.thread_utilisation(initial, current)
        assert len(util) == current
        assert max(util) == 1.0
        assert all(0.0 <= u <= 1.0 for u in util)


class TestMemoryBandwidthModel:
    def test_compute_only_phase_has_no_memory_time(self, node):
        model = MemoryBandwidthModel(traffic_gb_per_work_unit=0.0)
        assert not model.is_memory_bound
        assert model.memory_time(100.0, CpuSet.from_range(0, 4), node) == 0.0

    def test_bandwidth_saturates_at_socket_cap(self, node):
        model = MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=1.0)
        one_core = model.achievable_bandwidth(CpuSet([0]), node)
        two_cores = model.achievable_bandwidth(CpuSet([0, 1]), node)
        four_cores = model.achievable_bandwidth(CpuSet.from_range(0, 4), node)
        assert one_core == pytest.approx(20.0)
        assert two_cores == pytest.approx(40.0)
        assert four_cores == pytest.approx(40.0)  # socket cap reached

    def test_two_sockets_double_the_cap(self, node):
        model = MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=1.0)
        assert model.achievable_bandwidth(CpuSet([0, 8]), node) == pytest.approx(40.0)
        assert model.achievable_bandwidth(CpuSet.from_range(0, 16), node) == pytest.approx(80.0)

    def test_memory_time_scaling(self, node):
        model = MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=2.0)
        t = model.memory_time(100.0, CpuSet([0, 1]), node)
        assert t == pytest.approx(100.0 * 2.0 / 40.0)

    def test_empty_mask_gives_infinite_time(self, node):
        model = MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=2.0)
        assert model.achievable_bandwidth(CpuSet.empty(), node) == 0.0
        assert math.isinf(model.memory_time(1.0, CpuSet.empty(), node))


class TestPerformanceProfile:
    def test_phase_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PerformanceProfile(
                name="bad",
                phases=(
                    PhaseProfile("a", 0.5, ThreadEfficiency()),
                    PhaseProfile("b", 0.6, ThreadEfficiency()),
                ),
            )

    def test_phase_lookup(self):
        profile = simple_profile()
        assert profile.phase("compute").name == "compute"
        with pytest.raises(KeyError):
            profile.phase("missing")

    def test_iteration_time_decreases_with_more_cpus(self, node):
        profile = simple_profile()
        phase = profile.phases[0]
        t4 = profile.iteration_time(phase, 100, CpuSet.from_range(0, 4), node, 4, 2)
        t8 = profile.iteration_time(phase, 100, CpuSet.from_range(0, 8), node, 8, 2)
        assert t8 < t4

    def test_static_partition_penalty_visible(self, node):
        static = simple_profile(partition=StaticPartition(chunks_per_thread=1))
        flexible = simple_profile(partition=StaticPartition(chunks_per_thread=0))
        phase_s, phase_f = static.phases[0], flexible.phases[0]
        mask = CpuSet.from_range(0, 15)
        t_static = static.iteration_time(phase_s, 100, mask, node, 16, 2)
        t_flexible = flexible.iteration_time(phase_f, 100, mask, node, 16, 2)
        assert t_static > t_flexible

    def test_memory_bound_phase_is_roofline_limited(self, node):
        memory = MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=50.0)
        profile = simple_profile(memory=memory)
        phase = profile.phases[0]
        t2 = profile.iteration_time(phase, 10, CpuSet([0, 1]), node, 2, 2)
        t8 = profile.iteration_time(phase, 10, CpuSet.from_range(0, 8), node, 8, 2)
        # Bandwidth saturates the socket at 2 cores: more CPUs do not help.
        assert t8 == pytest.approx(t2)

    def test_interference_inflates_time(self, node):
        profile = simple_profile()
        phase = profile.phases[0]
        base = profile.iteration_time(phase, 100, CpuSet.from_range(0, 4), node, 4, 2)
        slowed = profile.iteration_time(
            phase, 100, CpuSet.from_range(0, 4), node, 4, 2, interference=1.5
        )
        assert slowed == pytest.approx(base * 1.5)

    def test_comm_overhead_grows_with_ranks(self, node):
        profile = simple_profile()
        phase = profile.phases[0]
        t2 = profile.iteration_time(phase, 100, CpuSet.from_range(0, 4), node, 4, total_ranks=2)
        t4 = profile.iteration_time(phase, 100, CpuSet.from_range(0, 4), node, 4, total_ranks=4)
        assert t4 > t2

    def test_zero_work_takes_zero_time(self, node):
        profile = simple_profile()
        assert profile.iteration_time(profile.phases[0], 0.0, CpuSet([0]), node, 1, 2) == 0.0

    def test_empty_mask_takes_infinite_time(self, node):
        profile = simple_profile()
        assert math.isinf(
            profile.iteration_time(profile.phases[0], 1.0, CpuSet.empty(), node, 1, 2)
        )

    def test_ipc_higher_on_single_socket(self, node):
        profile = simple_profile(numa=0.3)
        phase = profile.phases[0]
        ipc_local = profile.ipc(phase, CpuSet.from_range(0, 8), node, 8)
        ipc_spanning = profile.ipc(phase, CpuSet.from_range(4, 12), node, 8)
        assert ipc_local > ipc_spanning

    def test_ipc_of_empty_mask_is_zero(self, node):
        profile = simple_profile()
        assert profile.ipc(profile.phases[0], CpuSet.empty(), node, 1) == 0.0

    def test_cycles_per_us_scales_with_busy_fraction(self):
        profile = simple_profile()
        assert profile.cycles_per_us(1.0) == NOMINAL_CYCLES_PER_US
        assert profile.cycles_per_us(0.5) == NOMINAL_CYCLES_PER_US / 2
        assert profile.cycles_per_us(2.0) == NOMINAL_CYCLES_PER_US
        assert profile.cycles_per_us(-1.0) == 0.0

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            PhaseProfile("x", 0.0, ThreadEfficiency())
