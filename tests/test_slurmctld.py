"""Tests of the slurmctld controller: FCFS scheduling and DROM co-allocation."""

from __future__ import annotations

import pytest

from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import JobSpec, JobState
from repro.slurm.slurmctld import Slurmctld


def spec(name="job", nodes=2, ntasks=2, cpt=16, priority=0, malleable=True):
    return JobSpec(
        name=name, nodes=nodes, ntasks=ntasks, cpus_per_task=cpt,
        priority=priority, malleable=malleable,
    )


@pytest.fixture
def serial_ctld(mn3_cluster):
    return Slurmctld(mn3_cluster, drom_enabled=False)


@pytest.fixture
def drom_ctld(mn3_cluster):
    return Slurmctld(mn3_cluster, drom_enabled=True)


class TestSubmission:
    def test_submit_queues_pending_job(self, serial_ctld):
        job = serial_ctld.submit(spec(), time=5.0)
        assert job.state is JobState.PENDING
        assert job.submit_time == 5.0
        assert serial_ctld.pending_jobs() == [job]

    def test_too_many_nodes_rejected(self, serial_ctld):
        with pytest.raises(ValueError):
            serial_ctld.submit(spec(nodes=3, ntasks=3), time=0.0)

    def test_cancel_pending_job(self, serial_ctld):
        job = serial_ctld.submit(spec(), time=0.0)
        serial_ctld.cancel(job.job_id, time=1.0)
        assert job.state is JobState.CANCELLED
        assert serial_ctld.pending_jobs() == []


class TestSerialScheduling:
    def test_first_job_starts_immediately(self, serial_ctld):
        job = serial_ctld.submit(spec(), time=0.0)
        decisions = serial_ctld.schedule(0.0)
        assert len(decisions) == 1
        assert decisions[0].job is job
        assert not decisions[0].co_allocated
        assert job.state is JobState.RUNNING
        assert len(job.allocated_nodes) == 2

    def test_second_full_job_waits(self, serial_ctld):
        first = serial_ctld.submit(spec(name="first"), time=0.0)
        serial_ctld.schedule(0.0)
        second = serial_ctld.submit(spec(name="second"), time=10.0)
        assert serial_ctld.schedule(10.0) == []
        assert second.state is JobState.PENDING
        assert second.pending_reason == "Resources"
        # once the first job completes, the second starts
        serial_ctld.job_completed(first.job_id, 100.0)
        decisions = serial_ctld.schedule(100.0)
        assert [d.job for d in decisions] == [second]
        assert second.wait_time == 90.0

    def test_small_jobs_share_free_cpus_without_drom(self, serial_ctld):
        serial_ctld.submit(spec(name="small1", ntasks=2, cpt=4), time=0.0)
        serial_ctld.submit(spec(name="small2", ntasks=2, cpt=4), time=0.0)
        decisions = serial_ctld.schedule(0.0)
        # 4+4 CPUs per node fit side by side even in stock SLURM.
        assert len(decisions) == 2
        assert not any(d.co_allocated for d in decisions)

    def test_fcfs_blocks_later_jobs_without_backfill(self, serial_ctld):
        serial_ctld.submit(spec(name="big1"), time=0.0)
        serial_ctld.schedule(0.0)
        serial_ctld.submit(spec(name="big2"), time=1.0)
        small = serial_ctld.submit(spec(name="small", ntasks=2, cpt=1), time=2.0)
        decisions = serial_ctld.schedule(2.0)
        # small would fit, but FCFS without backfill keeps it behind big2
        assert decisions == []
        assert small.state is JobState.PENDING

    def test_backfill_lets_small_job_jump(self, mn3_cluster):
        ctld = Slurmctld(mn3_cluster, drom_enabled=False, backfill=True)
        # big1 leaves one CPU free per node; big2 cannot start, but the small
        # one-CPU-per-node job can be backfilled around it.
        ctld.submit(spec(name="big1", ntasks=2, cpt=15), time=0.0)
        ctld.schedule(0.0)
        ctld.submit(spec(name="big2"), time=1.0)
        small = ctld.submit(spec(name="small", ntasks=2, cpt=1), time=2.0)
        decisions = ctld.schedule(2.0)
        assert [d.job.spec.name for d in decisions] == ["small"]
        assert small.state is JobState.RUNNING


class TestDromCoAllocation:
    def test_full_jobs_are_co_allocated(self, drom_ctld):
        drom_ctld.submit(spec(name="sim"), time=0.0)
        drom_ctld.schedule(0.0)
        analytics = drom_ctld.submit(spec(name="analytics", ntasks=2, cpt=1), time=10.0)
        decisions = drom_ctld.schedule(10.0)
        assert len(decisions) == 1
        assert decisions[0].co_allocated
        assert analytics.state is JobState.RUNNING
        assert analytics.wait_time == 0.0

    def test_non_malleable_new_job_cannot_co_allocate(self, drom_ctld):
        drom_ctld.submit(spec(name="sim"), time=0.0)
        drom_ctld.schedule(0.0)
        rigid = drom_ctld.submit(spec(name="rigid", malleable=False), time=5.0)
        assert drom_ctld.schedule(5.0) == []
        assert rigid.state is JobState.PENDING

    def test_non_malleable_running_job_blocks_co_allocation(self, drom_ctld):
        drom_ctld.submit(spec(name="rigid", malleable=False), time=0.0)
        drom_ctld.schedule(0.0)
        new = drom_ctld.submit(spec(name="sim"), time=5.0)
        assert drom_ctld.schedule(5.0) == []
        assert new.state is JobState.PENDING

    def test_co_allocation_respects_task_capacity(self, drom_ctld):
        """Co-allocation never oversubscribes: total tasks per node <= CPUs."""
        drom_ctld.submit(spec(name="wide1", ntasks=16, cpt=2), time=0.0)
        drom_ctld.schedule(0.0)
        drom_ctld.submit(spec(name="wide2", ntasks=16, cpt=2), time=1.0)
        decisions = drom_ctld.schedule(1.0)
        assert len(decisions) == 1  # 8 + 8 tasks per node = 16 <= 16 CPUs
        drom_ctld.submit(spec(name="wide3", ntasks=2, cpt=1), time=2.0)
        assert drom_ctld.schedule(2.0) == []

    def test_priority_order_respected(self, drom_ctld):
        low = drom_ctld.submit(spec(name="low", priority=0), time=0.0)
        high = drom_ctld.submit(spec(name="high", priority=10), time=0.0)
        decisions = drom_ctld.schedule(0.0)
        assert decisions[0].job is high
        assert decisions[1].job is low  # co-allocated next to it

    def test_completed_job_frees_controller_state(self, drom_ctld):
        job = drom_ctld.submit(spec(name="sim"), time=0.0)
        drom_ctld.schedule(0.0)
        drom_ctld.job_completed(job.job_id, 50.0)
        assert job.state is JobState.COMPLETED
        for node in drom_ctld.nodes.values():
            assert node.idle
        assert drom_ctld.all_done()
        assert drom_ctld.completed_jobs() == [job]
        assert drom_ctld.running_jobs() == []
