"""Tests of the observability layer: spans, counters, exports, logging.

The two load-bearing properties under test:

* **Determinism** — with a deterministic fake clock factory, a serial and a
  pooled execution of the same campaign emit byte-identical
  ``telemetry.json`` documents (structure, counters *and* durations).
* **Observation only** — enabling telemetry perturbs no artifact: both
  store tiers are byte-identical between a telemetry-on and a
  telemetry-off campaign.
"""

from __future__ import annotations

import io
import json
import logging
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_cli
from repro.campaign.spec import RunSpec
from repro.obs import (
    DISABLED,
    ProgressLine,
    Span,
    Telemetry,
    TickingClock,
    TickingClockFactory,
    chrome_trace_events,
    summarise,
    validate_chrome_trace,
    write_chrome_trace,
    write_summary,
)
from repro.obs.log import configure, get_logger, resolve_level
from repro.results.store import ResultStore
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

#: Cheap synthetic family (same shape as the campaign tests').
SMALL = WorkloadSpec(njobs=3, mean_interarrival=90.0, work_scale=0.04, iterations=16)


def small_sweep(nworkloads: int = 2, **kwargs) -> CampaignSpec:
    defaults = dict(
        name="obs-sweep",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SMALL, seed=i) for i in range(nworkloads)
        ),
        scenarios=(SERIAL, DROM),
        clusters=(ClusterRef(nnodes=4, kind="mn3"),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def store_bytes(root) -> dict[str, bytes]:
    """filename -> bytes of every file under a store root."""
    root = os.fspath(root)
    out = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, root)] = fh.read()
    return out


class TestSpanPrimitives:
    def test_span_tree_nests_and_times(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        with obs.span("outer", label="x") as outer:
            with obs.span("inner") as inner:
                inner.count("things", 3)
                inner.count("things", 2)
        assert obs.roots == [outer]
        assert outer.children == [inner]
        assert inner.counters == {"things": 5}
        # Ticking clock: outer opened at t=0, inner 1..2, outer closed at 3.
        assert (outer.start, inner.start, inner.end, outer.end) == (0.0, 1.0, 2.0, 3.0)
        assert outer.duration == 3.0 and inner.duration == 1.0

    def test_walk_and_find(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        with obs.span("a"):
            with obs.span("b"):
                pass
            with obs.span("b"):
                pass
        root = obs.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "b"]
        assert len(root.find("b")) == 2

    def test_payload_roundtrip(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        with obs.span("a", k=1) as a:
            a.count("n", 2)
            with obs.span("b"):
                pass
        payload = obs.roots[0].to_payload()
        assert Span.from_payload(payload).to_payload() == payload

    def test_record_is_closed_and_detached(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        span = obs.record("cell", index=4)
        assert span.end is not None and span not in obs.roots
        obs.adopt(span)
        assert obs.roots == [span]

    def test_adopt_under_parent(self):
        obs = Telemetry(clock_factory=TickingClockFactory())
        detached = Span(name="cell")
        with obs.span("campaign") as campaign:
            pass
        obs.adopt(detached, parent=campaign)
        assert campaign.children == [detached]

    def test_disabled_is_total_noop(self):
        with DISABLED.span("anything", k=1) as span:
            span.count("n")
        assert DISABLED.roots == [] and not DISABLED.enabled
        assert DISABLED.record("x").duration == 0.0

    def test_ticking_clock(self):
        clock = TickingClock(tick=2.0, start=1.0)
        assert [clock(), clock(), clock()] == [1.0, 3.0, 5.0]
        factory = TickingClockFactory()
        assert factory()() == factory()() == 0.0  # every clock starts fresh


class TestRunCounters:
    """Telemetry counters agree with the signals the stack already reports."""

    def test_simulate_counters_match_result(self):
        run = RunSpec(
            index=0,
            scenario=DROM,
            workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        )
        obs = Telemetry()
        result = execute_run(run, telemetry=obs)
        simulate = obs.roots[1]
        assert [r.name for r in obs.roots] == ["build", "simulate"]
        assert simulate.counters["events"] == result.events_executed > 0
        assert simulate.counters["steps"] == result.steps_advanced > 0
        assert simulate.counters["batches"] == result.batches_executed > 0

    def test_reference_loop_counts_steps_but_no_batches(self):
        run = RunSpec(
            index=0,
            scenario=SERIAL,
            workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        )
        batched = execute_run(run, batching=True)
        reference = execute_run(run, batching=False)
        # Both paths advance the same steps; only the fast path batches.
        assert reference.steps_advanced == batched.steps_advanced > 0
        assert reference.batches_executed == 0
        assert 0 < batched.batches_executed <= batched.steps_advanced

    def test_campaign_counters_match_result(self, tmp_path):
        spec = small_sweep()
        store = ResultStore(tmp_path / "store")
        obs = Telemetry(clock_factory=TickingClockFactory())
        result = run_campaign(spec, store=store, telemetry=obs)
        campaign = obs.roots[0]
        assert campaign.counters["executed"] == result.executed == spec.nruns
        assert campaign.counters["cached"] == result.cache_hits == 0
        cells = campaign.find("cell")
        assert len(cells) == spec.nruns
        # Per-cell events counters sum to the campaign's simulated events.
        total_events = sum(c.counters.get("events", 0) for c in cells)
        summary = summarise(obs)
        assert summary["counters"]["events"] == total_events > 0
        assert summary["cells"] == {
            "total": spec.nruns,
            "executed": spec.nruns,
            "cached": 0,
            "metrics_hits": 0,
            "trace_hits": 0,
            "backfilled": 0,
        }

    def test_warm_campaign_counts_hits_per_tier(self, tmp_path):
        spec = small_sweep()
        store = ResultStore(tmp_path / "store")
        trace_store = TraceStore(tmp_path / "traces")
        run_campaign(spec, store=store, trace_store=trace_store)
        obs = Telemetry(clock_factory=TickingClockFactory())
        warm = run_campaign(
            spec, store=store, trace_store=trace_store, telemetry=obs
        )
        assert warm.executed == 0 and warm.cache_hits == spec.nruns
        assert warm.metrics_hits == warm.trace_hits == spec.nruns
        assert warm.backfilled == 0
        campaign = obs.roots[0]
        assert campaign.counters["metrics_hits"] == spec.nruns
        assert campaign.counters["trace_hits"] == spec.nruns
        cells = campaign.find("cell")
        assert all(c.attrs["cached"] for c in cells)
        summary = summarise(obs)
        assert summary["cells"]["cached"] == spec.nruns
        assert summary["rates"]["hit_rate"] == 1.0

    def test_backfill_accounting(self, tmp_path):
        """Metrics hit + trace miss re-simulates and is counted as backfill."""
        spec = small_sweep(nworkloads=1)
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store=store)  # warm the metrics tier only
        trace_store = TraceStore(tmp_path / "traces")
        obs = Telemetry(clock_factory=TickingClockFactory())
        result = run_campaign(
            spec, store=store, trace_store=trace_store, telemetry=obs
        )
        assert result.executed == spec.nruns and result.cache_hits == 0
        assert result.metrics_hits == result.backfilled == spec.nruns
        assert result.trace_hits == 0
        cells = obs.roots[0].find("cell")
        assert all(c.attrs["backfilled"] for c in cells)
        assert all(c.counters.get("metrics_hit") == 1 for c in cells)

    def test_tier_summary_and_table_footer(self, tmp_path):
        spec = small_sweep(nworkloads=1)
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(spec, store=store)
        warm = run_campaign(spec, store=store)
        line = warm.tier_summary()
        assert f"metrics tier {spec.nruns} hit / 0 miss" in line
        assert "0 backfill" in line
        # The footer is opt-in: default tables stay warm/cold byte-identical.
        assert warm.to_table() == cold.to_table()
        assert warm.to_table(tiers=True) == warm.to_table() + "\n" + line


class TestDeterminism:
    def test_serial_and_pooled_telemetry_byte_identical(self, tmp_path):
        """The flagship contract: fake clock in, identical telemetry out."""
        spec = small_sweep()
        documents = []
        for mode, workers in (("serial", 1), ("pooled", 4)):
            store = ResultStore(tmp_path / mode / "store")
            trace_store = TraceStore(tmp_path / mode / "traces")
            obs = Telemetry(clock_factory=TickingClockFactory())
            run_campaign(
                spec,
                workers=workers,
                store=store,
                trace_store=trace_store,
                telemetry=obs,
            )
            path = tmp_path / mode / "telemetry.json"
            write_summary(obs, path)
            documents.append(path.read_bytes())
        assert documents[0] == documents[1]

    def test_warm_serial_and_pooled_telemetry_byte_identical(self, tmp_path):
        spec = small_sweep()
        store = ResultStore(tmp_path / "store")
        trace_store = TraceStore(tmp_path / "traces")
        run_campaign(spec, store=store, trace_store=trace_store)
        documents = []
        for workers in (1, 4):
            obs = Telemetry(clock_factory=TickingClockFactory())
            run_campaign(
                spec,
                workers=workers,
                store=store,
                trace_store=trace_store,
                telemetry=obs,
            )
            path = tmp_path / f"telemetry-{workers}.json"
            write_summary(obs, path)
            documents.append(path.read_bytes())
        assert documents[0] == documents[1]

    def test_telemetry_perturbs_no_artifact(self, tmp_path):
        """Both store tiers byte-identical with telemetry on vs off."""
        spec = small_sweep()
        roots = {}
        for mode, telemetry in (
            ("off", None),
            ("on", Telemetry(clock_factory=TickingClockFactory())),
        ):
            store = ResultStore(tmp_path / mode / "store")
            trace_store = TraceStore(tmp_path / mode / "traces")
            result = run_campaign(
                spec,
                store=store,
                trace_store=trace_store,
                telemetry=telemetry,
                progress=io.StringIO(),
            )
            roots[mode] = (
                store_bytes(tmp_path / mode / "store"),
                store_bytes(tmp_path / mode / "traces"),
                result.rows,
            )
        assert roots["on"][0] == roots["off"][0]  # metrics tier
        assert roots["on"][1] == roots["off"][1]  # trace tier
        assert roots["on"][2] == roots["off"][2]  # aggregated rows


class TestExports:
    @pytest.fixture()
    def telemetry(self, tmp_path):
        obs = Telemetry(clock_factory=TickingClockFactory())
        store = ResultStore(tmp_path / "store")
        run_campaign(small_sweep(nworkloads=1), store=store, telemetry=obs)
        return obs

    def test_summary_document_shape(self, telemetry, tmp_path):
        path = tmp_path / "telemetry.json"
        document = write_summary(telemetry, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == document
        summary = document["summary"]
        assert summary["campaign"] == "obs-sweep"
        assert summary["cells"]["executed"] == 2
        assert summary["counters"]["events"] > 0
        assert summary["counters"]["store_write_bytes"] > 0
        assert summary["cell_wall_clock"]["p95"] >= summary["cell_wall_clock"]["p50"] > 0
        assert summary["rates"]["cells_per_sec"] > 0
        assert document["spans"][0]["name"] == "campaign"

    def test_chrome_trace_validates_and_tracks_cells(self, telemetry, tmp_path):
        document = write_chrome_trace(telemetry, tmp_path / "trace.json")
        assert validate_chrome_trace(document) == len(document["traceEvents"])
        assert validate_chrome_trace(json.loads((tmp_path / "trace.json").read_text()))
        events = document["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "campaign" in names
        assert any(name.startswith("cell 0000") for name in names)
        # Each cell tree is rebased to zero on its own track.
        cell_events = [e for e in events if e["ph"] == "X" and e["name"] == "cell"]
        assert cell_events and all(e["ts"] == 0.0 for e in cell_events)
        assert {e["tid"] for e in cell_events} == {1, 2}
        campaign_events = [
            e for e in events if e["ph"] == "X" and e["name"] == "campaign"
        ]
        assert [e["tid"] for e in campaign_events] == [0]
        # Counters and attrs ride along as args.
        simulate = next(e for e in events if e["name"] == "simulate")
        assert simulate["args"]["events"] > 0

    @pytest.mark.parametrize(
        "document, message",
        [
            ([], "traceEvents"),
            ({"traceEvents": []}, "non-empty"),
            ({"traceEvents": [{"ph": "X"}]}, "missing"),
            ({"traceEvents": [{"name": "x", "ph": "B", "pid": 0, "tid": 0}]}, "phase"),
            (
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 0}
                    ]
                },
                "invalid",
            ),
        ],
    )
    def test_chrome_trace_validation_rejects(self, document, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(document)

    def test_chrome_trace_events_for_scenario_pair_trees(self):
        # Trees without cell indices (e.g. hand-rolled spans) stay on track 0.
        obs = Telemetry(clock_factory=TickingClockFactory())
        with obs.span("campaign"):
            with obs.span("prep"):
                pass
        events = chrome_trace_events(obs)
        assert all(e["tid"] == 0 for e in events)


class TestProgress:
    def test_progress_line_renders_counts_rate_and_eta(self):
        stream = io.StringIO()
        line = ProgressLine(4, stream, clock=TickingClock())
        line.advance(cached=True)
        line.advance()
        line.finish()
        text = stream.getvalue()
        assert "campaign 2/4 ( 50%)" in text
        assert "1 cache hit(s)" in text
        assert "ETA" in text
        assert text.endswith("\n")

    def test_progress_line_zero_total(self):
        stream = io.StringIO()
        ProgressLine(0, stream).finish()
        assert stream.getvalue().endswith("\n")

    def test_run_campaign_progress_stream(self, tmp_path):
        stream = io.StringIO()
        spec = small_sweep(nworkloads=1)
        run_campaign(spec, progress=stream)
        text = stream.getvalue()
        assert f"{spec.nruns}/{spec.nruns}" in text
        assert text.endswith("\n")


class TestLogging:
    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level(None) == logging.WARNING
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert resolve_level(None) == logging.DEBUG
        # An explicit level always beats the environment.
        assert resolve_level("error") == logging.ERROR
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")

    def test_configure_is_idempotent(self):
        logger = configure("info")
        configure("info")
        marked = [
            h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1

    def test_configure_writes_to_stream(self, tmp_path):
        stream = io.StringIO()
        configure("debug", stream=stream)
        try:
            get_logger("campaign").debug("hello %s", "there")
        finally:
            configure("warning")
        assert "DEBUG repro.campaign: hello there" in stream.getvalue()

    def test_store_operations_log(self, tmp_path, caplog):
        spec = small_sweep(nworkloads=1)
        store = ResultStore(tmp_path / "store")
        with caplog.at_level(logging.DEBUG, logger="repro"):
            run_campaign(spec, store=store)
        messages = [r.getMessage() for r in caplog.records]
        assert any("campaign 'obs-sweep'" in m for m in messages)
        assert any(m.startswith("put ") for m in messages)
        caplog.clear()
        with caplog.at_level(logging.DEBUG, logger="repro"):
            run_campaign(spec, store=store)
        messages = [r.getMessage() for r in caplog.records]
        assert any("served from store" in m for m in messages)

    def test_gc_logs_summary(self, tmp_path, caplog):
        store = ResultStore(tmp_path / "store")
        run_campaign(small_sweep(nworkloads=1), store=store)
        with caplog.at_level(logging.INFO, logger="repro"):
            removed = store.gc(predicate=lambda entry: True)
        assert len(removed) == 2
        assert any(
            "gc removed 2 of 2" in r.getMessage() for r in caplog.records
        )


class TestCli:
    def test_cli_telemetry_progress_and_chrome_trace(self, tmp_path, capsys):
        summary_path = tmp_path / "telemetry.json"
        trace_path = tmp_path / "chrome.json"
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--work-scale", "0.04",
                "--iterations", "12",
                "--progress",
                "--telemetry", str(summary_path),
                "--chrome-trace", str(trace_path),
                "--store", str(tmp_path / "store"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(summary_path.read_text())
        assert document["summary"]["cells"]["executed"] == 2
        assert validate_chrome_trace(json.loads(trace_path.read_text()))
        assert "telemetry summary written to" in captured.out
        assert "chrome trace written to" in captured.out
        # Store runs append the per-tier footer; the progress line repaints
        # on stderr.
        assert "tiers: metrics tier" in captured.out
        assert "2/2" in captured.err

    def test_cli_log_level_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--work-scale", "0.04",
                "--iterations", "12",
                "--log-level", "info",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "INFO repro.campaign: campaign 'cli-sweep'" in captured.err

    def test_cli_defaults_stay_quiet(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        code = campaign_cli(
            [
                "--workloads", "1",
                "--njobs", "2",
                "--work-scale", "0.04",
                "--iterations", "12",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.err == ""
        assert "tiers:" not in captured.out  # no stores, no tier footer
