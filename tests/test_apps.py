"""Tests of the application models (NEST, CoreNeuron, Pils, STREAM)."""

from __future__ import annotations

import pytest

from repro.apps import (
    AppConfig,
    ApplicationModel,
    coreneuron_model,
    nest_model,
    pils_model,
    stream_model,
)
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology
from repro.workload import configs


@pytest.fixture
def node():
    return NodeTopology.marenostrum3()


class TestAppConfig:
    def test_total_cpus(self):
        assert AppConfig("c", 4, 8).total_cpus == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            AppConfig("c", 0, 8)
        with pytest.raises(ValueError):
            AppConfig("c", 2, 0)

    def test_str(self):
        assert str(AppConfig("Conf. 1", 2, 16)) == "Conf. 1 (2 x 16)"


class TestWorkPlans:
    def test_plan_steps_cover_total_work(self, node):
        model = nest_model()
        config = AppConfig("Conf. 1", 2, 16)
        plan = model.build_rank_plan(0, config)
        total = sum(step.work_units for step in plan.steps)
        assert total == pytest.approx(model.total_work / config.mpi_ranks)

    def test_plan_has_one_step_per_iteration_at_least(self):
        model = nest_model(iterations=100)
        plan = model.build_rank_plan(0, AppConfig("c", 2, 16))
        assert len(plan.steps) >= 100

    def test_every_phase_present_in_plan(self):
        model = coreneuron_model()
        plan = model.build_rank_plan(0, AppConfig("c", 2, 16))
        assert {s.phase.name for s in plan.steps} == {"model-setup", "solve"}

    def test_plans_built_per_rank(self):
        model = pils_model(total_work=100)
        plans = model.build_plans(AppConfig("c", 4, 2))
        assert len(plans) == 4
        assert [p.rank for p in plans] == [0, 1, 2, 3]

    def test_plan_advance_and_finish(self):
        model = stream_model(iterations=5)
        plan = model.build_rank_plan(0, AppConfig("c", 2, 2))
        n = len(plan.steps)
        for _ in range(n):
            assert not plan.finished
            plan.advance()
        assert plan.finished
        assert plan.remaining_steps == 0
        with pytest.raises(IndexError):
            plan.current_step()

    def test_model_validation(self):
        with pytest.raises(ValueError):
            ApplicationModel(profile=nest_model().profile, total_work=0)
        with pytest.raises(ValueError):
            ApplicationModel(profile=nest_model().profile, total_work=10, iterations=0)


class TestCalibration:
    """Standalone runtimes stay in the ballpark of the paper's workloads."""

    def test_nest_conf1_runtime(self, node):
        runtime = nest_model().standalone_runtime(configs.NEST_CONFIGS["Conf. 1"], node)
        assert 2200 <= runtime <= 3200

    def test_coreneuron_longer_than_nest(self, node):
        nest_rt = nest_model().standalone_runtime(configs.NEST_CONFIGS["Conf. 1"], node)
        cn_rt = coreneuron_model().standalone_runtime(configs.CORENEURON_CONFIGS["Conf. 1"], node)
        assert cn_rt > nest_rt

    def test_nest_conf2_within_30pct_of_conf1(self, node):
        """The paper keeps both configurations because neither dominates."""
        model = nest_model()
        rt1 = model.standalone_runtime(configs.NEST_CONFIGS["Conf. 1"], node)
        rt2 = model.standalone_runtime(configs.NEST_CONFIGS["Conf. 2"], node)
        assert abs(rt1 - rt2) / rt1 < 0.30

    def test_pils_is_short_analytics_job(self, node):
        for conf in ("Conf. 1", "Conf. 2", "Conf. 3"):
            app = configs.pils(conf)
            runtime = app.model.standalone_runtime(app.config, node)
            assert 60 <= runtime <= 600

    def test_stream_runtime_saturates_beyond_two_cpus(self, node):
        """Over two CPUs per node STREAM performance keeps constant."""
        model = stream_model()
        t2 = model.standalone_runtime(AppConfig("2cpu", 2, 2), node)
        t8 = model.standalone_runtime(AppConfig("8cpu", 2, 8), node)
        assert t8 == pytest.approx(t2, rel=0.05)

    def test_simulators_scale_from_8_to_16_threads_sublinearly(self, node):
        """Doubling the threads of a rank helps, but far from 2x (the paper's
        locality/IPC observation that motivates Conf. 2)."""
        for factory in (nest_model, coreneuron_model):
            model = factory()
            t8 = model.standalone_runtime(AppConfig("one-socket", 2, 8), node)
            t16 = model.standalone_runtime(AppConfig("two-sockets", 2, 16), node)
            speedup = t8 / t16
            assert 1.0 < speedup < 1.7


class TestMalleabilityVariants:
    def test_fully_malleable_nest_has_no_partition(self):
        assert not nest_model(chunks_per_thread=0).profile.partition.is_static
        assert nest_model().profile.partition.is_static

    def test_non_malleable_flag(self):
        assert nest_model(malleable=False).malleable is False
        assert pils_model(100, malleable=False).malleable is False

    def test_step_time_uses_current_mask(self, node):
        model = nest_model()
        config = AppConfig("Conf. 1", 2, 16)
        plan_full = model.build_rank_plan(0, config)
        plan_shrunk = model.build_rank_plan(0, config)
        # advance past the init phase so both plans sit on a solve step
        for plan in (plan_full, plan_shrunk):
            while plan.current_step().phase.name != "simulate":
                plan.advance()
        t_full = model.step_time(plan_full, CpuSet.from_range(0, 16), node, 2)
        t_shrunk = model.step_time(plan_shrunk, CpuSet.from_range(0, 15), node, 2)
        assert t_shrunk > t_full

    def test_step_ipc_positive(self, node):
        model = coreneuron_model()
        plan = model.build_rank_plan(0, AppConfig("Conf. 1", 2, 16))
        assert model.step_ipc(plan, CpuSet.from_range(0, 16), node) > 0


class TestTable1Configs:
    def test_table1_rows_shape(self):
        rows = configs.table1_rows()
        assert [r[0] for r in rows] == ["NEST", "CoreNeuron", "Pils", "STREAM"]
        assert rows[0][1] == "2 x 16"
        assert rows[2][3] == "2 x 4"
        assert rows[3][2] == "-"

    def test_config_factories(self):
        assert configs.nest("Conf. 2").config.threads_per_rank == 8
        assert configs.coreneuron().app_name == "CoreNeuron"
        assert configs.pils("Conf. 3").model.total_work == configs.PILS_WORK["Conf. 3"]
        assert configs.stream().config.total_cpus == 4
        assert configs.nest().label == "NEST Conf. 1"

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            configs.nest("Conf. 9")
