"""Engine edge cases: periodic-callback boundaries, kill-while-joined,
yield validation, horizon semantics, and the skip-ahead API added for the
batched fast path (``WakeAt`` / ``next_event_time`` / ``advance_until`` /
per-process wake priorities)."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    SimProcess,
    SimulationEngine,
    SimulationError,
    Timeout,
    WakeAt,
)


class TestCallEveryUntilBoundary:
    def test_tick_exactly_at_until_still_fires(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(1.0, lambda: ticks.append(engine.now), until=3.0)
        engine.run()
        # The tick landing exactly on the boundary runs; the next one does not.
        assert ticks == [1.0, 2.0, 3.0]

    def test_until_between_ticks_drops_the_next_tick(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(1.0, lambda: ticks.append(engine.now), until=2.5)
        engine.run()
        assert ticks == [1.0, 2.0]

    def test_until_before_first_tick_fires_nothing(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(2.0, lambda: ticks.append(engine.now), until=1.0)
        engine.run()
        assert ticks == []


class TestKillWhileJoined:
    def test_killing_a_joined_process_resumes_the_waiter(self):
        engine = SimulationEngine()
        resumed = []

        def sleeper():
            yield Timeout(100.0)
            return "never"

        def waiter(target):
            value = yield target
            resumed.append((engine.now, value))

        target = engine.spawn(sleeper(), name="sleeper")
        engine.spawn(waiter(target), name="waiter")
        engine.call_at(5.0, target.kill, "stopped")
        engine.run()
        assert resumed == [(5.0, "stopped")]
        assert target.finished and target.value == "stopped"
        assert target.finished_at == 5.0

    def test_kill_after_finish_is_a_noop(self):
        engine = SimulationEngine()

        def quick():
            yield Timeout(1.0)
            return "done"

        process = engine.spawn(quick(), name="quick")
        engine.run()
        process.kill("ignored")
        assert process.value == "done"

    def test_wait_all_with_one_target_killed(self):
        engine = SimulationEngine()
        collected = []

        def sleeper(delay):
            yield Timeout(delay)
            return delay

        def waiter(targets):
            values = yield targets
            collected.append((engine.now, values))

        fast = engine.spawn(sleeper(1.0), name="fast")
        slow = engine.spawn(sleeper(50.0), name="slow")
        engine.spawn(waiter([fast, slow]), name="waiter")
        engine.call_at(2.0, slow.kill, "cut")
        engine.run()
        assert collected == [(2.0, [1.0, "cut"])]


class TestYieldValidation:
    def test_negative_numeric_yield_is_rejected(self):
        engine = SimulationEngine()

        def bad():
            yield -1.0

        engine.spawn(bad(), name="bad")
        with pytest.raises(SimulationError, match="negative delay"):
            engine.run()

    def test_bool_yield_is_not_a_delay(self):
        # bool is an int subclass; yielding one is almost certainly a bug in
        # the process body, so it must not silently sleep for 1 second.
        engine = SimulationEngine()

        def bad():
            yield True

        engine.spawn(bad(), name="bad")
        with pytest.raises(SimulationError, match="unsupported"):
            engine.run()

    def test_timeout_constructor_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Timeout(-0.5)


class TestRunUntilHorizon:
    def test_event_exactly_at_horizon_runs_and_clock_stops_there(self):
        engine = SimulationEngine()
        fired = []
        engine.call_at(5.0, lambda: fired.append(engine.now))
        engine.call_at(6.0, lambda: fired.append(engine.now))
        assert engine.run(until=5.0) == 5.0
        assert fired == [5.0]
        assert engine.pending() == 1

    def test_wake_at_exactly_at_horizon_runs(self):
        engine = SimulationEngine()
        woke = []

        def proc():
            yield WakeAt(5.0)
            woke.append(engine.now)

        engine.spawn(proc(), name="proc")
        engine.run(until=5.0)
        assert woke == [5.0]


class TestSkipAheadApi:
    def test_next_event_time_peeks_the_queue(self):
        engine = SimulationEngine()
        assert engine.next_event_time() is None
        engine.call_at(3.0, lambda: None)
        engine.call_at(7.0, lambda: None)
        assert engine.next_event_time() == 3.0
        assert engine.peek() == engine.next_event_time()

    def test_advance_until_returns_a_wake_token(self):
        engine = SimulationEngine()
        token = engine.advance_until(4.5)
        assert isinstance(token, WakeAt)
        assert token.time == 4.5

    def test_wake_at_lands_on_the_exact_float(self):
        # The point of WakeAt over Timeout: no "now + delay" re-addition, so
        # a left-fold-accumulated boundary is hit bit-for-bit.
        engine = SimulationEngine()
        target = 0.1 + 0.2  # 0.30000000000000004
        seen = []

        def proc():
            yield engine.advance_until(target)
            seen.append(engine.now)

        engine.spawn(proc(), name="proc")
        engine.run()
        assert seen == [target]

    def test_wake_at_in_the_past_clamps_to_now(self):
        engine = SimulationEngine()
        seen = []

        def proc():
            yield Timeout(2.0)
            yield WakeAt(1.0)  # already in the past: wakes immediately
            seen.append(engine.now)

        engine.spawn(proc(), name="proc")
        engine.run()
        assert seen == [2.0]


class TestSpawnPriorities:
    def test_priority_orders_same_instant_wakes(self):
        engine = SimulationEngine()
        order = []

        def worker(label):
            yield Timeout(1.0)
            order.append(label)

        engine.spawn(worker("second"), name="second", priority=2)
        engine.spawn(worker("first"), name="first", priority=1)
        engine.run()
        assert order == ["first", "second"]

    def test_equal_priorities_fall_back_to_spawn_order(self):
        engine = SimulationEngine()
        order = []

        def worker(label):
            yield Timeout(1.0)
            order.append(label)

        engine.spawn(worker("a"), name="a", priority=1)
        engine.spawn(worker("b"), name="b", priority=1)
        engine.run()
        assert order == ["a", "b"]

    def test_priority_zero_callbacks_beat_executor_wakes(self):
        # The runner relies on this: scheduler events (submits, completions)
        # are plain priority-0 callbacks and must run before any same-instant
        # executor wake, whose spawn priority is always >= 1.
        engine = SimulationEngine()
        order = []

        def worker():
            yield Timeout(1.0)
            order.append("wake")

        engine.spawn(worker(), name="worker", priority=3)
        engine.call_at(1.0, lambda: order.append("event"))
        engine.run()
        assert order == ["event", "wake"]

    def test_process_repr_and_handle_state(self):
        engine = SimulationEngine()

        def quick():
            yield Timeout(1.0)

        process = engine.spawn(quick(), name="quick", priority=4)
        assert isinstance(process, SimProcess)
        assert process.priority == 4
        assert "running" in repr(process)
        engine.run()
        assert "finished" in repr(process)
