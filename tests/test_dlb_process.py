"""Tests of the process-side DLB handle (DLB_Init / DLB_PollDROM / DLB_Finalize)."""

from __future__ import annotations

import pytest

from repro.core.dlb import DlbProcess
from repro.core.drom import DROM_PREINIT_MASK_ENV, DROM_PREINIT_PID_ENV
from repro.core.errors import DlbError, DlbException
from repro.core.flags import DromFlags
from repro.cpuset.mask import CpuSet


class TestLifecycle:
    def test_init_registers_with_mask(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 4), environ={})
        assert proc.init() is DlbError.DLB_SUCCESS
        assert proc.initialized
        assert shmem.has(1)
        assert proc.current_mask() == CpuSet.from_range(0, 4)

    def test_double_init(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet([0]), environ={})
        proc.init()
        assert proc.init() is DlbError.DLB_ERR_INIT

    def test_init_without_mask_and_without_preinit_raises(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, environ={})
        with pytest.raises(DlbException):
            proc.init()

    def test_finalize_unregisters(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet([0]), environ={})
        proc.init()
        assert proc.finalize() is DlbError.DLB_SUCCESS
        assert not shmem.has(1)
        assert proc.finalize() is DlbError.DLB_ERR_NOINIT

    def test_finalize_tolerates_admin_cleanup(self, shmem, admin):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet([0]), environ={})
        proc.init()
        admin.post_finalize(1, DromFlags.NONE)
        # The administrator already removed the entry; finalize still succeeds.
        assert proc.finalize() is DlbError.DLB_SUCCESS

    def test_operations_before_init_raise(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet([0]), environ={})
        with pytest.raises(DlbException):
            proc.poll_drom()
        with pytest.raises(DlbException):
            proc.current_mask()
        with pytest.raises(DlbException):
            proc.enable_async(lambda mask: None)


class TestPreInitAdoption:
    def test_init_adopts_preinitialized_entry(self, shmem, admin):
        result = admin.pre_init(55, CpuSet.from_range(4, 8), DromFlags.NONE)
        proc = DlbProcess(pid=55, shmem=shmem, environ=result.next_environ)
        assert proc.init() is DlbError.DLB_SUCCESS
        assert proc.current_mask() == CpuSet.from_range(4, 8)
        assert not shmem.entry(55).preinitialized

    def test_init_from_mask_env_when_entry_missing(self, shmem):
        environ = {DROM_PREINIT_MASK_ENV: "2-3"}
        proc = DlbProcess(pid=7, shmem=shmem, environ=environ)
        assert proc.init() is DlbError.DLB_SUCCESS
        assert proc.current_mask() == CpuSet([2, 3])

    def test_preinit_env_for_other_pid_is_ignored(self, shmem, admin):
        admin.pre_init(55, CpuSet.from_range(4, 8), DromFlags.NONE)
        environ = {DROM_PREINIT_PID_ENV: "55", DROM_PREINIT_MASK_ENV: "4-7"}
        proc = DlbProcess(pid=77, shmem=shmem, mask=CpuSet([0]), environ=environ)
        assert proc.init() is DlbError.DLB_SUCCESS
        assert proc.current_mask() == CpuSet([0])


class TestPolling:
    def test_poll_without_update(self, shmem):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 4), environ={})
        proc.init()
        code, ncpus, mask = proc.poll_drom()
        assert code is DlbError.DLB_NOUPDT
        assert ncpus == 4
        assert mask is None
        assert proc.polls == 1
        assert proc.updates == 0

    def test_poll_after_admin_change(self, shmem, admin):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 16), environ={})
        proc.init()
        admin.set_process_mask(1, CpuSet.from_range(0, 8))
        code, ncpus, mask = proc.poll_drom()
        assert code is DlbError.DLB_SUCCESS
        assert ncpus == 8
        assert mask == CpuSet.from_range(0, 8)
        assert proc.updates == 1
        # second poll: nothing new
        assert proc.poll_drom()[0] is DlbError.DLB_NOUPDT

    def test_listing_1_manual_integration_pattern(self, shmem, admin):
        """The iterative-application pattern of Listing 1 works end to end."""
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 16), environ={})
        proc.init()
        applied: list[int] = []
        for iteration in range(5):
            if iteration == 2:
                admin.set_process_mask(1, CpuSet.from_range(0, 12))
            code, ncpus, mask = proc.poll_drom()
            if code is DlbError.DLB_SUCCESS:
                applied.append(ncpus)
        proc.finalize()
        assert applied == [12]


class TestAsyncMode:
    def test_async_callback_replaces_polling(self, shmem, admin):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 16), environ={})
        proc.init()
        received = []
        assert proc.enable_async(received.append) is DlbError.DLB_SUCCESS
        admin.set_process_mask(1, CpuSet.from_range(0, 8))
        assert received == [CpuSet.from_range(0, 8)]
        assert proc.updates == 1
        # nothing left for the polling path
        assert proc.poll_drom()[0] is DlbError.DLB_NOUPDT

    def test_disable_async_restores_polling(self, shmem, admin):
        proc = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 16), environ={})
        proc.init()
        received = []
        proc.enable_async(received.append)
        proc.disable_async()
        admin.set_process_mask(1, CpuSet.from_range(0, 8))
        assert received == []
        assert proc.poll_drom()[0] is DlbError.DLB_SUCCESS
