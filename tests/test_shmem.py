"""Tests of the DLB node shared memory (registration, stealing, polling)."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    CpuOwnershipError,
    ProcessAlreadyRegisteredError,
    ProcessNotRegisteredError,
)
from repro.core.shmem import NodeSharedMemory, ShmemRegistry
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


class TestRegistration:
    def test_register_and_query(self, shmem):
        entry = shmem.register(100, CpuSet.from_range(0, 8))
        assert entry.pid == 100
        assert entry.current_mask == CpuSet.from_range(0, 8)
        assert not entry.dirty
        assert shmem.has(100)
        assert shmem.pids() == [100]
        assert len(shmem) == 1

    def test_register_twice_rejected(self, shmem):
        shmem.register(100, CpuSet.from_range(0, 4))
        with pytest.raises(ProcessAlreadyRegisteredError):
            shmem.register(100, CpuSet.from_range(4, 8))

    def test_register_outside_topology_rejected(self, shmem):
        with pytest.raises(ValueError):
            shmem.register(100, CpuSet([99]))

    def test_register_empty_mask_rejected(self, shmem):
        with pytest.raises(ValueError):
            shmem.register(100, CpuSet.empty())

    def test_overlap_without_steal_rejected(self, shmem):
        shmem.register(100, CpuSet.from_range(0, 8))
        with pytest.raises(CpuOwnershipError):
            shmem.register(200, CpuSet.from_range(4, 12))

    def test_overlap_with_steal_shrinks_victim(self, shmem):
        shmem.register(100, CpuSet.from_range(0, 16))
        entry = shmem.register(200, CpuSet.from_range(8, 16), steal=True)
        assert entry.assigned_mask == CpuSet.from_range(8, 16)
        victim = shmem.entry(100)
        assert victim.assigned_mask == CpuSet.from_range(0, 8)
        assert victim.dirty  # not yet acknowledged
        assert entry.stolen_from == {100: CpuSet.from_range(8, 16)}

    def test_capacity_limit(self, mn3_node):
        shmem = NodeSharedMemory(mn3_node, max_processes=2)
        shmem.register(1, CpuSet([0]))
        shmem.register(2, CpuSet([1]))
        with pytest.raises(CpuOwnershipError):
            shmem.register(3, CpuSet([2]))

    def test_unregister(self, shmem):
        shmem.register(100, CpuSet([0]))
        shmem.unregister(100)
        assert not shmem.has(100)
        with pytest.raises(ProcessNotRegisteredError):
            shmem.unregister(100)

    def test_iteration_yields_entries(self, shmem):
        shmem.register(1, CpuSet([0]))
        shmem.register(2, CpuSet([1]))
        assert sorted(e.pid for e in shmem) == [1, 2]


class TestMaskManagement:
    def test_set_mask_marks_dirty_until_poll(self, shmem):
        shmem.register(100, CpuSet.from_range(0, 16))
        shmem.set_mask(100, CpuSet.from_range(0, 8))
        entry = shmem.entry(100)
        assert entry.dirty
        assert entry.assigned_mask == CpuSet.from_range(0, 8)
        assert entry.current_mask == CpuSet.from_range(0, 16)
        polled = shmem.poll(100)
        assert polled == CpuSet.from_range(0, 8)
        assert not shmem.entry(100).dirty
        assert shmem.entry(100).updates_applied == 1

    def test_poll_without_update_returns_none(self, shmem):
        shmem.register(100, CpuSet([0]))
        assert shmem.poll(100) is None

    def test_set_mask_unknown_pid(self, shmem):
        with pytest.raises(ProcessNotRegisteredError):
            shmem.set_mask(999, CpuSet([0]))

    def test_set_mask_empty_rejected(self, shmem):
        shmem.register(100, CpuSet([0]))
        with pytest.raises(ValueError):
            shmem.set_mask(100, CpuSet.empty())

    def test_set_mask_steal_from_other(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16))
        shmem.set_mask(2, CpuSet.from_range(4, 16), steal=True)
        assert shmem.get_mask(1) == CpuSet.from_range(0, 4)
        assert shmem.get_mask(2) == CpuSet.from_range(4, 16)

    def test_set_mask_overlap_without_steal_rejected(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16))
        with pytest.raises(CpuOwnershipError):
            shmem.set_mask(2, CpuSet.from_range(6, 16))

    def test_busy_free_and_oversubscribed(self, shmem, mn3_node):
        shmem.register(1, CpuSet.from_range(0, 4))
        shmem.register(2, CpuSet.from_range(8, 10))
        assert shmem.busy_mask() == CpuSet.from_range(0, 4) | CpuSet.from_range(8, 10)
        assert shmem.free_mask() == mn3_node.full_mask() - shmem.busy_mask()
        assert shmem.oversubscribed_cpus().is_empty()

    def test_return_stolen_restores_owner(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 16))
        shmem.register(2, CpuSet.from_range(8, 16), steal=True)
        returned = shmem.return_stolen(2)
        assert returned == {1: CpuSet.from_range(8, 16)}
        assert shmem.get_mask(1) == CpuSet.from_range(0, 16)
        # the thief's mask shrank accordingly — nothing left of the theft
        assert shmem.entry(2).stolen_from == {}

    def test_return_stolen_skips_gone_owner(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 16))
        shmem.register(2, CpuSet.from_range(8, 16), steal=True)
        shmem.unregister(1)
        assert shmem.return_stolen(2) == {}
        assert shmem.get_mask(2) == CpuSet.from_range(8, 16)

    def test_no_op_assignment_does_not_mark_dirty(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 4))
        shmem.set_mask(1, CpuSet.from_range(0, 4))
        assert not shmem.entry(1).dirty


class TestAsyncAndObservers:
    def test_async_callback_delivers_immediately(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 16))
        received = []
        shmem.set_async_callback(1, lambda pid, mask: received.append((pid, mask)))
        shmem.set_mask(1, CpuSet.from_range(0, 8))
        assert received == [(1, CpuSet.from_range(0, 8))]
        # already acknowledged: nothing pending to poll
        assert not shmem.entry(1).dirty
        assert shmem.poll(1) is None

    def test_observer_sees_every_assignment(self, shmem):
        seen = []
        shmem.add_observer(lambda pid, mask: seen.append((pid, mask.count())))
        shmem.register(1, CpuSet.from_range(0, 16))
        shmem.set_mask(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16), steal=True)
        # one observation for the explicit set_mask, none for registration
        # itself (registration is the initial state, not a change), and none
        # for pid 2 stealing CPUs pid 1 no longer held.
        assert (1, 8) in seen

    def test_clock_is_used_for_registration_time(self, shmem):
        shmem.set_clock(lambda: 123.0)
        entry = shmem.register(1, CpuSet([0]))
        assert entry.registered_at == 123.0


class TestShmemRegistry:
    def test_create_get(self, mn3_node):
        registry = ShmemRegistry()
        shmem = registry.create(mn3_node)
        assert registry.get(mn3_node.name) is shmem
        assert mn3_node.name in registry
        assert len(registry) == 1
        assert registry.names() == [mn3_node.name]

    def test_create_twice_rejected(self, mn3_node):
        registry = ShmemRegistry()
        registry.create(mn3_node)
        with pytest.raises(ValueError):
            registry.create(mn3_node)

    def test_get_or_create(self, mn3_node):
        registry = ShmemRegistry()
        first = registry.get_or_create(mn3_node)
        second = registry.get_or_create(mn3_node)
        assert first is second

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            ShmemRegistry().get("nope")
