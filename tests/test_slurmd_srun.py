"""Tests of slurmd, slurmstepd and srun working together on the full launch flow."""

from __future__ import annotations

import pytest

from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import Job, JobSpec
from repro.slurm.launcher import Srun
from repro.slurm.slurmd import Slurmd
from repro.slurm.slurmstepd import allocate_pid


def make_job(name="job", nodes=2, ntasks=2, cpt=16, malleable=True, node_names=("mn3-0", "mn3-1")):
    job = Job(spec=JobSpec(name=name, nodes=nodes, ntasks=ntasks, cpus_per_task=cpt, malleable=malleable))
    job.mark_submitted(0.0)
    job.mark_started(0.0, tuple(node_names[:nodes]))
    return job


@pytest.fixture
def stack(mn3_cluster):
    slurmds = {n.name: Slurmd(n, drom_enabled=True) for n in mn3_cluster.nodes}
    return slurmds, Srun(slurmds)


class TestSlurmd:
    def test_launch_job_step_creates_tasks(self, mn3_cluster):
        slurmd = Slurmd(mn3_cluster.nodes[0], drom_enabled=True)
        job = make_job(nodes=1, ntasks=2, cpt=8, node_names=("mn3-0",))
        record = slurmd.launch_job_step(job, first_global_rank=0)
        assert len(record.launches) == 2
        assert {t.global_rank for t in record.launches} == {0, 1}
        assert slurmd.used_cpus() == 16
        assert slurmd.free_cpus() == 0
        assert slurmd.running_tasks() == 2
        assert slurmd.has_step(job.job_id)
        assert slurmd.running_job_ids() == [job.job_id]

    def test_duplicate_step_rejected(self, mn3_cluster):
        slurmd = Slurmd(mn3_cluster.nodes[0])
        job = make_job(nodes=1, ntasks=1, cpt=4, node_names=("mn3-0",))
        slurmd.launch_job_step(job, 0)
        with pytest.raises(ValueError):
            slurmd.launch_job_step(job, 0)

    def test_job_step_completed_cleans_up(self, mn3_cluster):
        slurmd = Slurmd(mn3_cluster.nodes[0])
        job = make_job(nodes=1, ntasks=1, cpt=4, node_names=("mn3-0",))
        record = slurmd.launch_job_step(job, 0)
        pid = record.launches[0].pid
        assert slurmd.shmem.has(pid)
        assert slurmd.job_step_completed(job.job_id) == {}
        assert not slurmd.shmem.has(pid)
        assert slurmd.running_tasks() == 0
        # unknown job is a no-op
        assert slurmd.job_step_completed(9999) == {}


class TestSlurmstepd:
    def test_environment_propagates_preinit_variables(self, mn3_cluster):
        slurmd = Slurmd(mn3_cluster.nodes[0])
        job = make_job(nodes=1, ntasks=1, cpt=8, node_names=("mn3-0",))
        record = slurmd.launch_job_step(job, first_global_rank=3)
        launch = record.launches[0]
        assert launch.environ["SLURM_JOB_ID"] == str(job.job_id)
        assert launch.environ["SLURM_PROCID"] == "3"
        assert launch.environ["SLURMD_NODENAME"] == "mn3-0"
        assert launch.environ["DLB_DROM_PREINIT_PID"] == str(launch.pid)
        assert CpuSet.parse(launch.environ["DLB_DROM_PREINIT_MASK"]) == launch.mask

    def test_step_terminated_is_idempotent(self, mn3_cluster):
        slurmd = Slurmd(mn3_cluster.nodes[0])
        job = make_job(nodes=1, ntasks=2, cpt=4, node_names=("mn3-0",))
        record = slurmd.launch_job_step(job, 0)
        record.stepd.step_terminated()
        assert record.stepd.all_terminated
        record.stepd.step_terminated()  # second call does nothing

    def test_pid_allocation_is_unique(self):
        pids = {allocate_pid() for _ in range(100)}
        assert len(pids) == 100


class TestSrun:
    def test_launch_spreads_ranks_over_nodes(self, stack):
        _, srun = stack
        job = make_job(ntasks=4, cpt=8)
        launch = srun.launch(job)
        ranks_per_node = {node: [t.global_rank for t in launch.tasks_on(node)] for node in job.allocated_nodes}
        assert ranks_per_node == {"mn3-0": [0, 1], "mn3-1": [2, 3]}
        assert [t.global_rank for t in launch.tasks()] == [0, 1, 2, 3]

    def test_launch_requires_allocation(self, stack):
        _, srun = stack
        job = Job(spec=JobSpec(name="x", nodes=1, ntasks=1, cpus_per_task=1))
        with pytest.raises(ValueError):
            srun.launch(job)

    def test_launch_unknown_node_rejected(self, stack):
        _, srun = stack
        job = make_job(node_names=("mn3-0", "other-node"))
        with pytest.raises(KeyError):
            srun.launch(job)

    def test_terminate_expands_survivors(self, stack):
        """End-to-end Figure 2: job 2 expands on both nodes once job 1 ends."""
        slurmds, srun = stack
        sim = make_job(name="sim", ntasks=2, cpt=16)
        srun.launch(sim)
        analytics = make_job(name="analytics", ntasks=2, cpt=16)
        launch2 = srun.launch(analytics)
        # co-allocation shrank the simulation to 8 CPUs per node
        for node in ("mn3-0", "mn3-1"):
            assert slurmds[node].plugin.job_mask(sim.job_id).count() == 8
        expansions = srun.terminate(sim)
        for node in ("mn3-0", "mn3-1"):
            pid = launch2.tasks_on(node)[0].pid
            assert expansions[node][pid] == CpuSet.from_range(0, 16)

    def test_tasks_on_missing_node_is_empty(self, stack):
        _, srun = stack
        job = make_job()
        launch = srun.launch(job)
        assert launch.tasks_on("unknown") == []
