"""Tests of the DROM administrator API (the paper's Section 3.2 interface)."""

from __future__ import annotations

import pytest

from repro.core.drom import (
    DROM_PREINIT_MASK_ENV,
    DROM_PREINIT_PID_ENV,
    DromAdmin,
    attach_admin,
)
from repro.core.errors import DlbError, NotAttachedError
from repro.core.flags import DromFlags
from repro.cpuset.mask import CpuSet


class TestAttachDetach:
    def test_attach_then_detach(self, shmem):
        admin = DromAdmin(shmem)
        assert not admin.attached
        assert admin.attach() is DlbError.DLB_SUCCESS
        assert admin.attached
        assert admin.detach() is DlbError.DLB_SUCCESS
        assert not admin.attached

    def test_double_attach_returns_error_code(self, shmem):
        admin = DromAdmin(shmem)
        admin.attach()
        assert admin.attach() is DlbError.DLB_ERR_INIT

    def test_detach_without_attach(self, shmem):
        assert DromAdmin(shmem).detach() is DlbError.DLB_ERR_NOINIT

    def test_operations_require_attach(self, shmem):
        admin = DromAdmin(shmem)
        with pytest.raises(NotAttachedError):
            admin.get_pid_list()
        with pytest.raises(NotAttachedError):
            admin.set_process_mask(1, CpuSet([0]))

    def test_attach_admin_helper(self, shmem):
        admin = attach_admin(shmem)
        assert admin.attached


class TestQueries:
    def test_get_pid_list(self, shmem, admin):
        shmem.register(10, CpuSet([0]))
        shmem.register(20, CpuSet([1]))
        assert admin.get_pid_list() == [10, 20]
        assert admin.get_pid_list(max_len=1) == [10]

    def test_get_process_mask(self, shmem, admin):
        shmem.register(10, CpuSet.from_range(0, 4))
        code, mask = admin.get_process_mask(10)
        assert code is DlbError.DLB_SUCCESS
        assert mask == CpuSet.from_range(0, 4)

    def test_get_process_mask_unknown_pid(self, admin):
        code, mask = admin.get_process_mask(999)
        assert code is DlbError.DLB_ERR_NOPROC
        assert mask is None


class TestSetProcessMask:
    def test_returns_noted_until_target_polls(self, shmem, admin):
        shmem.register(10, CpuSet.from_range(0, 16))
        code = admin.set_process_mask(10, CpuSet.from_range(0, 8))
        assert code is DlbError.DLB_NOTED
        assert shmem.poll(10) == CpuSet.from_range(0, 8)

    def test_success_when_target_uses_async_mode(self, shmem, admin):
        shmem.register(10, CpuSet.from_range(0, 16))
        shmem.set_async_callback(10, lambda pid, mask: None)
        code = admin.set_process_mask(10, CpuSet.from_range(0, 8))
        assert code is DlbError.DLB_SUCCESS

    def test_unknown_pid(self, admin):
        assert admin.set_process_mask(999, CpuSet([0])) is DlbError.DLB_ERR_NOPROC

    def test_ownership_violation_without_steal(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16))
        code = admin.set_process_mask(2, CpuSet.from_range(4, 16))
        assert code is DlbError.DLB_ERR_PERM

    def test_steal_flag_shrinks_other_process(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16))
        code = admin.set_process_mask(2, CpuSet.from_range(4, 16), DromFlags.STEAL)
        assert code in (DlbError.DLB_NOTED, DlbError.DLB_SUCCESS)
        assert shmem.get_mask(1) == CpuSet.from_range(0, 4)

    def test_empty_mask_rejected(self, shmem, admin):
        shmem.register(1, CpuSet([0]))
        assert admin.set_process_mask(1, CpuSet.empty()) is DlbError.DLB_ERR_REQST

    def test_dry_run_does_not_change_anything(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        code = admin.set_process_mask(1, CpuSet.from_range(0, 4), DromFlags.DRY_RUN)
        assert code is DlbError.DLB_SUCCESS
        assert shmem.get_mask(1) == CpuSet.from_range(0, 16)
        assert not shmem.entry(1).dirty

    def test_sync_query_times_out_if_target_never_polls(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        code = admin.set_process_mask(
            1,
            CpuSet.from_range(0, 8),
            DromFlags.SYNC_QUERY,
            sync_timeout=0.01,
            sync_poll_interval=0.002,
        )
        assert code is DlbError.DLB_ERR_TIMEOUT

    def test_sync_query_consumes_no_wall_clock_time_under_simulation(self, shmem, admin):
        """Regression: the sim-default administrator used to busy-wait on real
        time.monotonic()/time.sleep for the full sync_timeout."""
        import time

        shmem.register(1, CpuSet.from_range(0, 16))
        start = time.perf_counter()
        code = admin.set_process_mask(
            1,
            CpuSet.from_range(0, 8),
            DromFlags.SYNC_QUERY,
            sync_timeout=5.0,  # would stall 5 real seconds with the old code
        )
        elapsed = time.perf_counter() - start
        assert code is DlbError.DLB_ERR_TIMEOUT
        assert elapsed < 0.5
        # The change is still registered (asynchronous semantics preserved).
        assert shmem.get_mask(1) == CpuSet.from_range(0, 8)
        assert shmem.entry(1).dirty

    def test_sync_query_already_acknowledged_still_succeeds(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        shmem.set_async_callback(1, lambda pid, mask: None)  # acks immediately
        code = admin.set_process_mask(
            1, CpuSet.from_range(0, 8), DromFlags.SYNC_QUERY
        )
        assert code is DlbError.DLB_SUCCESS

    def test_sync_query_with_injected_clock_waits_for_acknowledgement(self, shmem):
        from repro.core.drom import DromAdmin

        clock = [0.0]
        sleeps = []

        def fake_sleep(interval: float) -> None:
            sleeps.append(interval)
            clock[0] += interval
            # The target polls while the administrator sleeps (the real-thread
            # behaviour the injectable time sources exist for).
            shmem.poll(1)

        admin = DromAdmin(shmem, clock=lambda: clock[0], sleep=fake_sleep)
        admin.attach()
        shmem.register(1, CpuSet.from_range(0, 16))
        code = admin.set_process_mask(
            1,
            CpuSet.from_range(0, 8),
            DromFlags.SYNC_QUERY,
            sync_timeout=1.0,
            sync_poll_interval=0.01,
        )
        assert code is DlbError.DLB_SUCCESS
        assert sleeps  # it really went through the wait loop
        assert shmem.entry(1).current_mask == CpuSet.from_range(0, 8)

    def test_half_injected_time_sources_rejected(self, shmem):
        from repro.core.drom import DromAdmin

        with pytest.raises(ValueError, match="together"):
            DromAdmin(shmem, clock=lambda: 0.0)
        with pytest.raises(ValueError, match="together"):
            DromAdmin(shmem, sleep=lambda _t: None)

    def test_sync_query_with_injected_clock_times_out_deterministically(self, shmem):
        from repro.core.drom import DromAdmin

        clock = [0.0]
        sleeps = []

        def fake_sleep(interval: float) -> None:
            sleeps.append(interval)
            clock[0] += interval  # nobody ever acknowledges

        admin = DromAdmin(shmem, clock=lambda: clock[0], sleep=fake_sleep)
        admin.attach()
        shmem.register(1, CpuSet.from_range(0, 16))
        code = admin.set_process_mask(
            1,
            CpuSet.from_range(0, 8),
            DromFlags.SYNC_QUERY,
            sync_timeout=0.05,
            sync_poll_interval=0.01,
        )
        assert code is DlbError.DLB_ERR_TIMEOUT
        assert len(sleeps) == 5  # exactly sync_timeout / sync_poll_interval


class TestPreInitPostFinalize:
    def test_preinit_reserves_and_builds_environ(self, shmem, admin):
        result = admin.pre_init(42, CpuSet.from_range(0, 4), DromFlags.NONE)
        assert result.code is DlbError.DLB_SUCCESS
        assert result.next_environ[DROM_PREINIT_PID_ENV] == "42"
        assert CpuSet.parse(result.next_environ[DROM_PREINIT_MASK_ENV]) == CpuSet.from_range(0, 4)
        assert shmem.entry(42).preinitialized

    def test_preinit_with_steal_reports_shrunk_victims(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        result = admin.pre_init(2, CpuSet.from_range(8, 16), DromFlags.STEAL)
        assert result.code is DlbError.DLB_SUCCESS
        assert result.shrunk == {1: CpuSet.from_range(8, 16)}
        assert shmem.get_mask(1) == CpuSet.from_range(0, 8)

    def test_preinit_without_steal_cannot_take_busy_cpus(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        result = admin.pre_init(2, CpuSet.from_range(8, 16), DromFlags.NONE)
        assert result.code is DlbError.DLB_ERR_PERM

    def test_preinit_existing_pid_rejected(self, shmem, admin):
        shmem.register(7, CpuSet([0]))
        result = admin.pre_init(7, CpuSet([1]), DromFlags.STEAL)
        assert result.code is DlbError.DLB_ERR_INIT

    def test_preinit_preserves_caller_environ(self, shmem, admin):
        result = admin.pre_init(9, CpuSet([0]), DromFlags.NONE, environ={"FOO": "bar"})
        assert result.next_environ["FOO"] == "bar"

    def test_post_finalize_cleans_and_returns_stolen(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        admin.pre_init(2, CpuSet.from_range(8, 16), DromFlags.STEAL)
        code, returned = admin.post_finalize(2, DromFlags.RETURN_STOLEN)
        assert code is DlbError.DLB_SUCCESS
        assert returned == {1: CpuSet.from_range(8, 16)}
        assert not shmem.has(2)
        assert shmem.get_mask(1) == CpuSet.from_range(0, 16)

    def test_post_finalize_already_cleaned(self, admin):
        code, returned = admin.post_finalize(404)
        assert code is DlbError.DLB_NOUPDT
        assert returned == {}

    def test_post_finalize_without_return_flag_keeps_cpus_free(self, shmem, admin):
        shmem.register(1, CpuSet.from_range(0, 16))
        admin.pre_init(2, CpuSet.from_range(8, 16), DromFlags.STEAL)
        code, returned = admin.post_finalize(2, DromFlags.NONE)
        assert code is DlbError.DLB_SUCCESS
        assert returned == {}
        # The CPUs are not given back automatically; they are simply free.
        assert shmem.get_mask(1) == CpuSet.from_range(0, 8)
        assert shmem.free_mask() == CpuSet.from_range(8, 16)


class TestFlags:
    def test_flag_predicates(self):
        flags = DromFlags.SYNC_QUERY | DromFlags.STEAL
        assert flags.is_sync()
        assert flags.allows_steal()
        assert not flags.returns_stolen()
        assert not flags.is_dry_run()
        assert DromFlags.RETURN_STOLEN.returns_stolen()
        assert DromFlags.DRY_RUN.is_dry_run()
        assert not DromFlags.NONE.is_sync()

    def test_error_code_helpers(self):
        assert DlbError.DLB_SUCCESS.ok()
        assert DlbError.DLB_NOTED.ok()
        assert not DlbError.DLB_ERR_PERM.ok()
        assert DlbError.DLB_ERR_PERM.is_error()
        assert not DlbError.DLB_NOUPDT.is_error()
