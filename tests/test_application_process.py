"""Tests of the ApplicationProcess abstraction (DLB + programming model glue)."""

from __future__ import annotations

import pytest

from repro.core.flags import DromFlags
from repro.cpuset.mask import CpuSet
from repro.runtime.mpi import MpiCommunicator
from repro.runtime.process import ApplicationProcess, ProcessSpec, ThreadModel


def make_process(shmem, thread_model=ThreadModel.OPENMP, pid=1, rank=0, comm=None,
                 mask=None, environ=None):
    spec = ProcessSpec(
        pid=pid,
        node=shmem.name,
        mpi_rank=rank,
        thread_model=thread_model,
        initial_mask=mask or CpuSet.from_range(0, 16),
    )
    return ApplicationProcess(spec, shmem, comm=comm, environ=environ or {})


class TestLifecycle:
    def test_start_registers_and_builds_runtime(self, shmem):
        proc = make_process(shmem)
        proc.start()
        assert proc.started
        assert shmem.has(1)
        assert proc.openmp is not None
        assert proc.num_threads == 16

    def test_double_start_rejected(self, shmem):
        proc = make_process(shmem)
        proc.start()
        with pytest.raises(RuntimeError):
            proc.start()

    def test_finish_unregisters(self, shmem):
        proc = make_process(shmem)
        proc.start()
        proc.finish()
        assert proc.finished
        assert not shmem.has(1)
        proc.finish()  # idempotent

    def test_poll_before_start_rejected(self, shmem):
        proc = make_process(shmem)
        with pytest.raises(RuntimeError):
            proc.poll_malleability()

    def test_ompss_variant(self, shmem):
        proc = make_process(shmem, thread_model=ThreadModel.OMPSS)
        proc.start()
        assert proc.ompss is not None
        assert proc.openmp is None
        assert proc.num_threads == 16

    def test_none_variant_has_no_runtime(self, shmem):
        proc = make_process(shmem, thread_model=ThreadModel.NONE)
        proc.start()
        assert proc.openmp is None and proc.ompss is None


class TestMalleability:
    def test_openmp_process_adopts_new_mask(self, shmem, admin):
        proc = make_process(shmem)
        proc.start()
        admin.set_process_mask(1, CpuSet.from_range(0, 8), DromFlags.STEAL)
        assert proc.poll_malleability() is True
        assert proc.num_threads == 8
        assert proc.current_mask == CpuSet.from_range(0, 8)

    def test_ompss_process_adopts_new_mask(self, shmem, admin):
        proc = make_process(shmem, thread_model=ThreadModel.OMPSS)
        proc.start()
        admin.set_process_mask(1, CpuSet.from_range(4, 8), DromFlags.STEAL)
        assert proc.poll_malleability() is True
        assert proc.current_mask == CpuSet.from_range(4, 8)

    def test_non_malleable_process_never_reacts(self, shmem, admin):
        proc = make_process(shmem, thread_model=ThreadModel.NONE)
        proc.start()
        admin.set_process_mask(1, CpuSet.from_range(0, 4), DromFlags.STEAL)
        assert proc.poll_malleability() is False
        # the runtime view is unchanged even though the registry shrank it
        assert proc.current_mask.count() == 4 or proc.current_mask.count() == 16

    def test_no_pending_change_returns_false(self, shmem):
        proc = make_process(shmem)
        proc.start()
        assert proc.poll_malleability() is False

    def test_mask_listeners_fire(self, shmem, admin):
        proc = make_process(shmem)
        proc.start()
        seen = []
        proc.on_mask_change(lambda mask: seen.append(mask.count()))
        admin.set_process_mask(1, CpuSet.from_range(0, 2), DromFlags.STEAL)
        proc.poll_malleability()
        assert seen == [2]

    def test_enter_parallel_region_polls_through_ompt(self, shmem, admin):
        proc = make_process(shmem)
        proc.start()
        admin.set_process_mask(1, CpuSet.from_range(0, 10), DromFlags.STEAL)
        team = proc.enter_parallel_region()
        assert team == 10
        assert proc.num_threads == 10

    def test_enter_parallel_region_requires_openmp(self, shmem):
        proc = make_process(shmem, thread_model=ThreadModel.OMPSS)
        proc.start()
        with pytest.raises(RuntimeError):
            proc.enter_parallel_region()


class TestPreInitFlow:
    def test_process_adopts_preinit_reservation(self, shmem, admin):
        """The DROM_PreInit -> fork/exec -> DLB_Init workflow of Section 3.2."""
        shmem.register(100, CpuSet.from_range(0, 16))
        result = admin.pre_init(200, CpuSet.from_range(8, 16), DromFlags.STEAL)
        proc = make_process(
            shmem, pid=200, mask=None if False else CpuSet.from_range(8, 16),
            environ=result.next_environ,
        )
        proc.start()
        assert proc.current_mask == CpuSet.from_range(8, 16)
        # the running process sees its shrink at its next malleability point
        victim_mask = shmem.poll(100)
        assert victim_mask == CpuSet.from_range(0, 8)

    def test_pmpi_interception_installed_with_comm(self, shmem, admin):
        comm = MpiCommunicator(size=2)
        proc = make_process(shmem, comm=comm, rank=0)
        proc.start()
        admin.set_process_mask(1, CpuSet.from_range(0, 4), DromFlags.STEAL)
        # An MPI call by this rank is a malleability point.
        comm.rank(0).barrier()
        assert proc.num_threads == 4
