"""Tests of the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import ProcessExit, SimulationEngine, SimulationError, Timeout
from repro.sim.events import Event, EventLog


class TestCallbacks:
    def test_call_at_runs_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(5.0, lambda: seen.append(("b", engine.now)))
        engine.call_at(1.0, lambda: seen.append(("a", engine.now)))
        engine.run()
        assert seen == [("a", 1.0), ("b", 5.0)]

    def test_call_after_is_relative(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.call_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.call_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.call_after(-1.0, lambda: None)

    def test_ties_preserve_submission_order(self):
        engine = SimulationEngine()
        seen = []
        for i in range(5):
            engine.call_at(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(1.0, lambda: seen.append("low"), priority=5)
        engine.call_at(1.0, lambda: seen.append("high"), priority=-5)
        engine.run()
        assert seen == ["high", "low"]

    def test_callbacks_receive_args(self):
        engine = SimulationEngine()
        seen = []
        engine.call_after(1.0, seen.append, 42)
        engine.run()
        assert seen == [42]

    def test_run_until_stops_clock(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(100.0, lambda: seen.append("late"))
        final = engine.run(until=10.0)
        assert final == 10.0
        assert seen == []
        assert engine.pending() == 1

    def test_run_until_beyond_queue_advances_clock(self):
        engine = SimulationEngine()
        engine.call_at(3.0, lambda: None)
        assert engine.run(until=50.0) == 50.0

    def test_run_until_executes_event_exactly_at_boundary(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(10.0, lambda: seen.append(engine.now))
        assert engine.run(until=10.0) == 10.0
        assert seen == [10.0]
        assert engine.pending() == 0

    def test_run_until_with_empty_queue_advances_to_until(self):
        engine = SimulationEngine()
        assert engine.run(until=7.5) == 7.5
        assert engine.now == 7.5

    def test_run_until_can_resume_in_segments(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(5.0, lambda: seen.append("early"))
        engine.call_at(15.0, lambda: seen.append("late"))
        engine.run(until=10.0)
        assert seen == ["early"]
        assert engine.now == 10.0
        engine.run(until=20.0)
        assert seen == ["early", "late"]
        assert engine.now == 20.0

    def test_run_until_keeps_later_events_pending(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(10.0, lambda: seen.append("boundary"))
        engine.call_at(10.0 + 1e-9, lambda: seen.append("just after"))
        engine.run(until=10.0)
        assert seen == ["boundary"]
        assert engine.pending() == 1
        engine.run()
        assert seen == ["boundary", "just after"]

    def test_peek_and_pending(self):
        engine = SimulationEngine()
        assert engine.peek() is None
        engine.call_at(4.0, lambda: None)
        assert engine.peek() == 4.0
        assert engine.pending() == 1

    def test_call_every_repeats_until_limit(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(engine.now), until=45.0)
        engine.run(until=100.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_call_every_requires_positive_interval(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.call_every(0.0, lambda: None)


class TestProcesses:
    def test_process_timeout_advances_clock(self):
        engine = SimulationEngine()

        def proc():
            yield Timeout(3.0)
            yield 2.0
            return "done"

        handle = engine.spawn(proc())
        engine.run()
        assert engine.now == 5.0
        assert handle.finished
        assert handle.value == "done"
        assert handle.finished_at == 5.0

    def test_yield_none_reschedules_same_instant(self):
        engine = SimulationEngine()
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield None
            order.append("b2")

        engine.spawn(a())
        engine.spawn(b())
        engine.run()
        assert order == ["a1", "b1", "a2", "b2"]
        assert engine.now == 0.0

    def test_joining_another_process(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(4.0)
            return 99

        def waiter(target):
            value = yield target
            return ("got", value, engine.now)

        w = engine.spawn(worker())
        j = engine.spawn(waiter(w))
        engine.run()
        assert j.value == ("got", 99, 4.0)

    def test_joining_finished_process_resumes_immediately(self):
        engine = SimulationEngine()

        def worker():
            yield Timeout(1.0)
            return "w"

        w = engine.spawn(worker())
        engine.run()

        def waiter():
            value = yield w
            return value

        j = engine.spawn(waiter())
        engine.run()
        assert j.value == "w"

    def test_wait_for_all(self):
        engine = SimulationEngine()

        def worker(delay, val):
            yield Timeout(delay)
            return val

        w1 = engine.spawn(worker(2.0, "a"))
        w2 = engine.spawn(worker(5.0, "b"))

        def waiter():
            values = yield [w1, w2]
            return (engine.now, values)

        j = engine.spawn(waiter())
        engine.run()
        assert j.value == (5.0, ["a", "b"])

    def test_process_exit_exception(self):
        engine = SimulationEngine()

        def proc():
            yield Timeout(1.0)
            raise ProcessExit("early")
            yield Timeout(100.0)  # pragma: no cover

        handle = engine.spawn(proc())
        engine.run()
        assert handle.finished
        assert handle.value == "early"
        assert engine.now == 1.0

    def test_kill_stops_process(self):
        engine = SimulationEngine()

        def proc():
            yield Timeout(100.0)
            return "never"

        handle = engine.spawn(proc())
        engine.call_at(5.0, lambda: handle.kill("killed"))
        engine.run()
        assert handle.finished
        assert handle.value == "killed"
        assert handle.finished_at == 5.0

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()

        def proc():
            yield -1.0

        engine.spawn(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_yield_rejected(self):
        engine = SimulationEngine()

        def proc():
            yield "nonsense"

        engine.spawn(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_on_finish_callback(self):
        engine = SimulationEngine()
        seen = []

        def proc():
            yield Timeout(2.0)
            return 7

        handle = engine.spawn(proc())
        handle.on_finish(seen.append)
        engine.run()
        assert seen == [7]
        # Late registration fires immediately.
        handle.on_finish(seen.append)
        assert seen == [7, 7]

    def test_timeout_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Timeout(-0.1)

    def test_determinism(self):
        """Identical inputs produce identical event timelines."""

        def scenario():
            engine = SimulationEngine()
            log = []

            def proc(name, delay):
                for i in range(3):
                    yield Timeout(delay)
                    log.append((engine.now, name, i))

            engine.spawn(proc("x", 1.5))
            engine.spawn(proc("y", 2.0))
            engine.call_every(1.0, lambda: log.append((engine.now, "tick", -1)), until=5.0)
            engine.run()
            return log

        assert scenario() == scenario()


class TestEventLog:
    def test_append_and_query(self):
        log = EventLog()
        log.append(1.0, "start", job=1)
        log.append(2.0, "stop", job=1)
        assert len(log) == 2
        assert log.named("start")[0].get("job") == 1
        assert log.last().name == "stop"
        assert log.last("start").time == 1.0
        assert log.names() == {"start", "stop"}

    def test_out_of_order_append_rejected(self):
        log = EventLog()
        log.append(5.0, "a")
        with pytest.raises(ValueError):
            log.append(1.0, "b")

    def test_between_filters_by_time(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.append(t, "e")
        assert [e.time for e in log.between(2.0, 4.0)] == [2.0, 3.0]

    def test_filter_predicate(self):
        log = EventLog()
        log.append(1.0, "a", v=1)
        log.append(2.0, "a", v=2)
        assert len(log.filter(lambda e: e.get("v") == 2)) == 1

    def test_last_of_empty_is_none(self):
        assert EventLog().last() is None

    def test_extend_from_merges_sorted(self):
        a, b = EventLog(), EventLog()
        a.append(1.0, "a1")
        a.append(3.0, "a2")
        b.append(2.0, "b1")
        a.extend_from(list(b))
        assert [e.name for e in a] == ["a1", "b1", "a2"]

    def test_events_order_by_time_then_seq(self):
        e1 = Event(time=1.0, seq=0, name="x")
        e2 = Event(time=1.0, seq=1, name="y")
        assert e1 < e2
