"""Tests of the per-run trace sinks (.prv-style + JSONL) and their round trips."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    RunSpec,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
    run_scenario_pair,
)
from repro.results import (
    JsonlTraceSink,
    ParaverTraceSink,
    ResultStore,
    content_key,
    read_jsonl_trace,
    read_prv,
    run_stem,
)
from repro.results.sinks import EV_THREAD_COUNT
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)


@pytest.fixture(scope="module")
def traced_run():
    run = RunSpec(
        index=0,
        scenario=DROM,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )
    return run, execute_run(run, trace=True)


class TestJsonlSink:
    def test_round_trip(self, traced_run, tmp_path):
        run, result = traced_run
        path = JsonlTraceSink(tmp_path).write(run, result)
        assert path.name == f"{run_stem(run)}.jsonl"
        header, tracer = read_jsonl_trace(path)
        assert header["key"] == content_key(run)
        assert header["scenario"] == run.scenario
        assert header["end_time"] == result.end_time
        # The trace itself survives byte-exactly (floats round-trip via repr).
        assert tracer.steps() == result.tracer.steps()
        assert tracer.mask_changes() == result.tracer.mask_changes()

    def test_rewrite_overwrites(self, traced_run, tmp_path):
        run, result = traced_run
        sink = JsonlTraceSink(tmp_path)
        first = sink.write(run, result).read_text()
        assert sink.write(run, result).read_text() == first
        assert len(list(tmp_path.glob("*.jsonl"))) == 1

    def test_same_cell_from_two_campaigns_writes_one_file(self, traced_run, tmp_path):
        # Regression: run_stem used to embed the grid index, so the same
        # cell reached from two campaigns accumulated duplicate files,
        # contradicting the content-addressing contract.  The index now
        # survives only as a JSON header field.
        import dataclasses
        import json

        run, result = traced_run
        moved = dataclasses.replace(run, index=17)
        assert content_key(moved) == content_key(run)
        assert run_stem(moved) == run_stem(run)
        sink = JsonlTraceSink(tmp_path)
        sink.write(run, result)
        path = sink.write(moved, result)
        assert len(list(tmp_path.glob("*.jsonl"))) == 1
        header = json.loads(path.read_text().splitlines()[0])
        assert header["index"] == 17
        # The sidecar run id carries no grid index (it is shared by design).
        assert not header["run_id"].split("|", 1)[0].isdigit()

    def test_header_required(self, tmp_path):
        bad = tmp_path / "x.jsonl"
        step = {
            "record": "step", "job": "j", "rank": 0, "node": "n0", "start": 0.0,
            "duration": 1.0, "phase": "p", "nthreads": 1,
            "thread_utilisation": [1.0], "ipc": 1.0, "work_units": 1.0,
        }
        import json

        bad.write_text(json.dumps(step) + "\n")
        with pytest.raises(ValueError, match="no run header"):
            read_jsonl_trace(bad)

    def test_unknown_record_rejected(self, tmp_path):
        bad = tmp_path / "x.jsonl"
        bad.write_text('{"record": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record"):
            read_jsonl_trace(bad)


class TestParaverSink:
    def test_prv_structure(self, traced_run, tmp_path):
        run, result = traced_run
        path = ParaverTraceSink(tmp_path).write(run, result)
        assert path.name == f"{run_stem(run)}.prv"
        header, states, events = read_prv(path)
        assert header.startswith("#Paraver")
        # One state record per step per thread.
        expected_states = sum(step.nthreads for step in result.tracer)
        assert len(states) == expected_states
        # Per-step events plus one per recorded mask change.
        nsteps = len(result.tracer)
        nchanges = len(result.tracer.mask_changes())
        assert len(events) == nsteps + nchanges
        # Times are integer microseconds and monotonically sorted.
        times = [int(line.split(":")[5]) for line in events]
        assert times == sorted(times)

    def test_mask_change_events_carry_team_size(self, traced_run, tmp_path):
        run, result = traced_run
        _header, _states, events = read_prv(ParaverTraceSink(tmp_path).write(run, result))
        changes = result.tracer.mask_changes()
        assert changes, "DROM run should observe mask changes"
        marker = f":{EV_THREAD_COUNT}:"
        values = [
            int(line.rsplit(":", 1)[1]) for line in events if marker in line
        ]
        assert values == [change.new_threads for change in changes]

    def test_mask_change_events_carry_the_ranks_node(self, traced_run, tmp_path):
        # The cpu field of a mask-change event must match the node the
        # (job, rank) runs on in the state records, not a fixed placeholder.
        run, result = traced_run
        _header, states, events = read_prv(ParaverTraceSink(tmp_path).write(run, result))
        rank_cpu = {}
        for line in states:
            fields = line.split(":")
            rank_cpu[(int(fields[2]), int(fields[3]))] = int(fields[1])
        assert len(set(rank_cpu.values())) > 1, "trace should span several nodes"
        marker = f":{EV_THREAD_COUNT}:"
        checked = 0
        for line in events:
            if marker not in line:
                continue
            fields = line.split(":")
            assert int(fields[1]) == rank_cpu[(int(fields[2]), int(fields[3]))]
            checked += 1
        assert checked == len(result.tracer.mask_changes())

    def test_not_a_prv_file_rejected(self, tmp_path):
        bad = tmp_path / "x.prv"
        bad.write_text("hello\n")
        with pytest.raises(ValueError, match="not a .prv"):
            read_prv(bad)

    def test_empty_tracer_still_writes_header(self, tmp_path):
        run = RunSpec(
            index=0,
            scenario=SERIAL,
            workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
            cluster=ClusterRef(nnodes=4),
        )
        result = execute_run(run, trace=False)  # tracer stays empty
        header, states, events = read_prv(ParaverTraceSink(tmp_path).write(run, result))
        assert header.startswith("#Paraver")
        assert states == [] and events == []


class TestCampaignSinkIntegration:
    def test_traced_campaign_writes_one_pair_per_run(self, tmp_path):
        spec = CampaignSpec(
            name="sinks",
            workloads=(SyntheticWorkloadRef(spec=SMALL, seed=0),),
            clusters=(ClusterRef(nnodes=4),),
        )
        sinks = (ParaverTraceSink(tmp_path / "prv"), JsonlTraceSink(tmp_path / "jsonl"))
        result = run_campaign(spec, sinks=sinks)
        assert result.executed == spec.nruns
        prv = sorted((tmp_path / "prv").glob("*.prv"))
        jsonl = sorted((tmp_path / "jsonl").glob("*.jsonl"))
        assert len(prv) == len(jsonl) == spec.nruns
        # Stems pair up across the two sinks and embed the content keys.
        assert [p.stem for p in prv] == [j.stem for j in jsonl]
        for run in spec.expand():
            assert run_stem(run) in {p.stem for p in prv}

    def test_pooled_campaign_writes_the_same_files(self, tmp_path):
        spec = CampaignSpec(
            name="sinks-pool",
            workloads=(SyntheticWorkloadRef(spec=SMALL, seed=0),),
            clusters=(ClusterRef(nnodes=4),),
        )
        serial_dir, pooled_dir = tmp_path / "serial", tmp_path / "pooled"
        run_campaign(spec, workers=1, sinks=(JsonlTraceSink(serial_dir),))
        run_campaign(spec, workers=2, sinks=(JsonlTraceSink(pooled_dir),))
        serial_files = sorted(serial_dir.glob("*.jsonl"))
        pooled_files = sorted(pooled_dir.glob("*.jsonl"))
        assert [p.name for p in serial_files] == [p.name for p in pooled_files]
        for a, b in zip(serial_files, pooled_files):
            assert a.read_text() == b.read_text()

    def test_cache_hits_are_not_re_exported(self, tmp_path):
        spec = CampaignSpec(
            name="sinks-store",
            workloads=(SyntheticWorkloadRef(spec=SMALL, seed=0),),
            clusters=(ClusterRef(nnodes=4),),
        )
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store=store)
        warm = run_campaign(
            spec, store=store, sinks=(JsonlTraceSink(tmp_path / "traces"),)
        )
        assert warm.executed == 0
        assert not (tmp_path / "traces").exists()

    def test_scenario_pair_sinks(self, tmp_path):
        results = run_scenario_pair(
            SyntheticWorkloadRef(spec=SMALL, seed=1),
            cluster=ClusterRef(nnodes=4),
            sinks=(JsonlTraceSink(tmp_path),),
        )
        files = sorted(tmp_path.glob("*.jsonl"))
        assert len(files) == 2
        assert {SERIAL, DROM} == set(results)
        scenarios = {read_jsonl_trace(f)[0]["scenario"] for f in files}
        assert scenarios == {SERIAL, DROM}
