"""Tests of the DROM statistics module and the DROM-aware node policies.

Both features come from the paper's future-work section: collecting run-time
performance data that the scheduler can consult, and using it to choose
"victim" nodes with low utilisation.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ProcessNotRegisteredError
from repro.core.stats import ProcessStats, StatsModule
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import JobSpec
from repro.slurm.policies import FirstFit, LeastAllocatedFirst, LowestUtilisationFirst
from repro.slurm.slurmctld import NodeState, Slurmctld
from repro.workload.runner import DROM, SERIAL, run_both_scenarios
from repro.workload.workloads import in_situ_workload


class TestProcessStats:
    def test_utilisation_and_efficiency(self):
        stats = ProcessStats(pid=1, useful_time=80, idle_time=10, mpi_time=10,
                             cpu_seconds_owned=100)
        assert stats.utilisation == pytest.approx(0.8)
        assert stats.parallel_efficiency == pytest.approx(0.8)

    def test_zero_denominators(self):
        stats = ProcessStats(pid=1)
        assert stats.utilisation == 0.0
        assert stats.parallel_efficiency == 0.0

    def test_utilisation_capped_at_one(self):
        stats = ProcessStats(pid=1, useful_time=200, cpu_seconds_owned=100)
        assert stats.utilisation == 1.0


class TestStatsModule:
    def test_recording_requires_registration(self, shmem):
        stats = StatsModule(shmem)
        with pytest.raises(ProcessNotRegisteredError):
            stats.record_compute(99, 1.0)
        with pytest.raises(ProcessNotRegisteredError):
            stats.process_stats(99)

    def test_accumulation(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 4))
        stats = StatsModule(shmem)
        stats.record_compute(1, useful_time=30.0, idle_time=10.0)
        stats.record_mpi(1, 5.0)
        stats.record_ownership(1, ncpus=4, seconds=10.0)
        stats.record_mask_change(1)
        record = stats.process_stats(1)
        assert record.useful_time == 30.0
        assert record.idle_time == 10.0
        assert record.mpi_time == 5.0
        assert record.cpu_seconds_owned == 40.0
        assert record.mask_changes == 1
        assert record.utilisation == pytest.approx(0.75)
        assert stats.pids() == [1]

    def test_negative_values_rejected(self, shmem):
        shmem.register(1, CpuSet([0]))
        stats = StatsModule(shmem)
        with pytest.raises(ValueError):
            stats.record_compute(1, -1.0)
        with pytest.raises(ValueError):
            stats.record_mpi(1, -1.0)
        with pytest.raises(ValueError):
            stats.record_ownership(1, -1, 1.0)

    def test_node_summary_aggregates(self, shmem):
        shmem.register(1, CpuSet.from_range(0, 8))
        shmem.register(2, CpuSet.from_range(8, 16))
        stats = StatsModule(shmem)
        stats.record_compute(1, 80.0, 20.0)
        stats.record_ownership(1, 8, 12.5)       # 100 cpu-seconds
        stats.record_compute(2, 40.0, 60.0)
        stats.record_ownership(2, 8, 12.5)
        summary = stats.node_summary()
        assert summary.nprocesses == 2
        assert summary.cpus_owned == 16
        assert summary.utilisation == pytest.approx((80 + 40) / 200)
        assert summary.parallel_efficiency == pytest.approx(120 / 200)

    def test_empty_node_summary(self, shmem):
        summary = StatsModule(shmem).node_summary()
        assert summary.nprocesses == 0
        assert summary.utilisation == 0.0

    def test_drop_removes_record(self, shmem):
        shmem.register(1, CpuSet([0]))
        stats = StatsModule(shmem)
        stats.record_compute(1, 1.0)
        stats.drop(1)
        assert stats.pids() == []


class TestNodeSelectionPolicies:
    def make_states(self):
        a = NodeState(name="a", ncpus=16)
        b = NodeState(name="b", ncpus=16)
        c = NodeState(name="c", ncpus=16)
        b.running[1] = (2, 16, True)
        c.running[2] = (1, 4, True)
        return [a, b, c]

    def test_first_fit_keeps_order(self):
        states = self.make_states()
        assert [s.name for s in FirstFit().order(states)] == ["a", "b", "c"]

    def test_least_allocated_first(self):
        states = self.make_states()
        assert [s.name for s in LeastAllocatedFirst().order(states)] == ["a", "c", "b"]

    def test_lowest_utilisation_first_with_mapping(self):
        states = self.make_states()
        policy = LowestUtilisationFirst({"a": 0.9, "b": 0.2, "c": 0.6})
        assert [s.name for s in policy.order(states)] == ["b", "c", "a"]

    def test_lowest_utilisation_unknown_nodes_sort_last(self):
        states = self.make_states()
        policy = LowestUtilisationFirst({"b": 0.2})
        ordered = [s.name for s in policy.order(states)]
        assert ordered[0] == "b"
        assert set(ordered[1:]) == {"a", "c"}

    def test_lowest_utilisation_with_callable(self):
        states = self.make_states()
        policy = LowestUtilisationFirst(lambda name: {"a": 0.1}.get(name))
        assert policy.order(states)[0].name == "a"

    def test_policy_plugs_into_slurmctld(self):
        """With the low-utilisation policy, a one-node job lands on the node
        whose occupant wastes the most CPU."""
        cluster = ClusterTopology.marenostrum3(2)
        utilisation = {"mn3-0": 0.95, "mn3-1": 0.30}
        ctld = Slurmctld(
            cluster, drom_enabled=True,
            node_policy=LowestUtilisationFirst(utilisation),
        )
        # Two running one-node jobs, one per node.
        for _ in range(2):
            ctld.submit(JobSpec(name="running", nodes=1, ntasks=1, cpus_per_task=16), 0.0)
        ctld.schedule(0.0)
        new = ctld.submit(JobSpec(name="new", nodes=1, ntasks=1, cpus_per_task=16), 1.0)
        decisions = ctld.schedule(1.0)
        assert decisions[0].job is new
        assert decisions[0].nodes == ("mn3-1",)  # the badly-utilised node


class TestRunnerStatsIntegration:
    def test_job_stats_collected_per_scenario(self):
        results = run_both_scenarios(in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2"))
        for scenario in (SERIAL, DROM):
            result = results[scenario]
            assert set(result.job_stats.keys()) == {"NEST Conf. 1", "Pils Conf. 2"}
            nest_records = result.job_stats["NEST Conf. 1"]
            assert len(nest_records) == 2  # one per MPI rank
            for record in nest_records:
                assert record.cpu_seconds_owned > 0
                assert 0.0 < record.utilisation <= 1.0

    def test_drom_run_reports_mask_changes_serial_does_not(self):
        results = run_both_scenarios(in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2"))
        drom_changes = sum(r.mask_changes for r in results[DROM].job_stats["NEST Conf. 1"])
        serial_changes = sum(r.mask_changes for r in results[SERIAL].job_stats["NEST Conf. 1"])
        assert drom_changes >= 2
        assert serial_changes == 0

    def test_job_utilisation_helper(self):
        results = run_both_scenarios(in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2"))
        drom = results[DROM]
        assert 0.5 <= drom.job_utilisation("NEST Conf. 1") <= 1.0
        assert drom.job_utilisation("unknown job") == 0.0
