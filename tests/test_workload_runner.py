"""Integration tests of the scenario runner (Serial vs DROM end to end)."""

from __future__ import annotations

import pytest

from repro.cpuset.distribution import EquipartitionPolicy
from repro.metrics.collect import relative_improvement
from repro.workload.runner import DROM, SERIAL, ScenarioRunner, run_both_scenarios
from repro.workload.workloads import (
    Workload,
    WorkloadJob,
    high_priority_workload,
    in_situ_workload,
)
from repro.workload import configs
from repro.runtime.process import ThreadModel


@pytest.fixture(scope="module")
def nest_pils_results():
    """Both scenarios of the NEST Conf. 1 + Pils Conf. 2 workload (shared)."""
    return run_both_scenarios(in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2"))


class TestSerialScenario:
    def test_analytics_waits_for_simulation(self, nest_pils_results):
        serial = nest_pils_results[SERIAL]
        waits = serial.metrics.wait_times()
        assert waits["NEST Conf. 1"] == 0.0
        assert waits["Pils Conf. 2"] > 0.0
        # the analytics starts exactly when the simulation ends
        nest = serial.metrics.job("NEST Conf. 1")
        pils = serial.metrics.job("Pils Conf. 2")
        assert pils.start_time == pytest.approx(nest.end_time)

    def test_total_run_time_is_sum_of_phases(self, nest_pils_results):
        serial = nest_pils_results[SERIAL]
        nest = serial.metrics.job("NEST Conf. 1")
        pils = serial.metrics.job("Pils Conf. 2")
        assert serial.metrics.total_run_time == pytest.approx(
            nest.run_time + pils.run_time, rel=1e-6
        )

    def test_scenario_labels(self, nest_pils_results):
        assert nest_pils_results[SERIAL].scenario == SERIAL
        assert nest_pils_results[DROM].scenario == DROM


class TestDromScenario:
    def test_analytics_starts_immediately(self, nest_pils_results):
        drom = nest_pils_results[DROM]
        assert drom.metrics.wait_times()["Pils Conf. 2"] == 0.0

    def test_simulation_shrinks_and_expands(self, nest_pils_results):
        drom = nest_pils_results[DROM]
        changes = drom.tracer.mask_changes("NEST Conf. 1")
        assert len(changes) >= 2  # shrink at co-allocation, expand at release
        counts = [c.new_threads for c in changes]
        assert min(counts) == 15  # one CPU per node went to Pils Conf. 2
        assert max(counts) == 16  # and came back afterwards

    def test_oversubscription_limited_to_polling_latency(self, nest_pils_results):
        """The running job keeps its old mask until it polls DROM, so a short
        transient overlap right after a mask change is expected — but it must
        stay confined to that polling latency (a tiny fraction of the run) and
        never occur in steady state."""
        drom = nest_pils_results[DROM]
        events = [
            (step.start, step.end, step.node, step.nthreads, step.job, step.rank)
            for step in drom.tracer
        ]
        change_times = [c.time for c in drom.tracer.mask_changes()]
        boundaries = sorted({e[0] for e in events})
        oversubscribed_time = 0.0
        for i, t in enumerate(boundaries):
            horizon = boundaries[i + 1] if i + 1 < len(boundaries) else drom.end_time
            per_node: dict[str, int] = {}
            seen: set[tuple[str, int]] = set()
            for start, end, node, nthreads, job, rank in events:
                if start <= t < end and (job, rank) not in seen:
                    seen.add((job, rank))
                    per_node[node] = per_node.get(node, 0) + nthreads
            for node, total in per_node.items():
                if total > 16:
                    # must be explained by a pending mask change nearby
                    assert any(t - 60.0 <= c <= t + 60.0 for c in change_times), (
                        f"unexplained oversubscription at t={t} on {node}"
                    )
                    oversubscribed_time += horizon - t
        assert oversubscribed_time <= 0.03 * drom.metrics.total_run_time

    def test_drom_beats_serial_on_total_run_time(self, nest_pils_results):
        serial, drom = nest_pils_results[SERIAL], nest_pils_results[DROM]
        assert drom.metrics.total_run_time < serial.metrics.total_run_time

    def test_drom_beats_serial_on_average_response(self, nest_pils_results):
        serial, drom = nest_pils_results[SERIAL], nest_pils_results[DROM]
        gain = relative_improvement(
            serial.metrics.average_response_time, drom.metrics.average_response_time
        )
        assert gain > 0.30

    def test_end_time_matches_metrics(self, nest_pils_results):
        drom = nest_pils_results[DROM]
        assert drom.end_time == pytest.approx(drom.metrics.makespan_end)

    def test_job_lookup_by_label(self, nest_pils_results):
        drom = nest_pils_results[DROM]
        assert drom.job("NEST Conf. 1").spec.name == "NEST Conf. 1"


class TestRunnerVariants:
    def test_single_job_workload_runs_identically_in_both_scenarios(self):
        """With no co-allocation the DROM machinery adds no overhead (the
        paper: 'We didn't find any visible overhead between them')."""
        workload = Workload(
            name="solo NEST",
            jobs=(WorkloadJob(app=configs.nest("Conf. 1"), submit_time=0.0),),
        )
        results = run_both_scenarios(workload)
        assert results[SERIAL].metrics.total_run_time == pytest.approx(
            results[DROM].metrics.total_run_time, rel=1e-9
        )

    def test_custom_policy_is_accepted(self):
        workload = in_situ_workload("NEST", "Conf. 1", "STREAM", "Conf. 1")
        runner = ScenarioRunner(True, policy=EquipartitionPolicy())
        result = runner.run(workload)
        assert result.metrics.total_run_time > 0

    def test_interference_hook_slows_co_run(self):
        workload = in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2")
        plain = ScenarioRunner(True).run(workload)
        slowed = ScenarioRunner(
            True, interference=lambda job, node, others: 1.5 if others else 1.0
        ).run(workload)
        assert slowed.metrics.total_run_time > plain.metrics.total_run_time

    def test_ompss_thread_model_used_for_pils(self, nest_pils_results):
        workload = nest_pils_results[DROM].workload
        assert workload.jobs[1].thread_model is ThreadModel.OMPSS

    def test_trace_can_be_disabled(self):
        workload = in_situ_workload("NEST", "Conf. 1", "STREAM", "Conf. 1")
        result = ScenarioRunner(True).run(workload, trace=False)
        assert len(result.tracer) == 0
        assert result.metrics.total_run_time > 0


class TestMaskChangeRecords:
    def test_old_threads_is_recorded(self, nest_pils_results):
        """Regression: every MaskChangeRecord used to carry old_threads=-1."""
        drom = nest_pils_results[DROM]
        changes = drom.tracer.mask_changes()
        assert changes
        assert all(c.old_threads > 0 for c in changes)

    def test_first_change_starts_from_initial_team(self, nest_pils_results):
        drom = nest_pils_results[DROM]
        first = drom.tracer.mask_changes("NEST Conf. 1")[0]
        assert first.old_threads == 16  # Conf. 1: 16 threads per rank
        assert first.new_threads == 15  # one CPU per node went to Pils

    def test_change_chain_is_consistent_per_rank(self, nest_pils_results):
        """old_threads of each change equals new_threads of the previous one."""
        drom = nest_pils_results[DROM]
        per_rank: dict[tuple[str, int], list] = {}
        for change in drom.tracer.mask_changes():
            per_rank.setdefault((change.job, change.rank), []).append(change)
        for chain in per_rank.values():
            for earlier, later in zip(chain, chain[1:]):
                assert later.old_threads == earlier.new_threads


class TestCompletionStats:
    @staticmethod
    def _small_workload() -> Workload:
        return Workload(
            name="solo STREAM",
            jobs=(WorkloadJob(app=configs.stream("Conf. 1"), submit_time=0.0),),
        )

    def test_unexpected_stats_errors_propagate(self, monkeypatch):
        """Regression: _complete swallowed every exception around the stats
        snapshot, silently dropping job_stats."""
        from repro.core.stats import StatsModule

        def boom(self, pid):
            raise RuntimeError("stats backend corrupted")

        monkeypatch.setattr(StatsModule, "process_stats", boom)
        with pytest.raises(RuntimeError, match="stats backend corrupted"):
            ScenarioRunner(True).run(self._small_workload(), trace=False)

    def test_missing_stats_records_are_tolerated(self, monkeypatch):
        from repro.core.errors import ProcessNotRegisteredError
        from repro.core.stats import StatsModule

        def missing(self, pid):
            raise ProcessNotRegisteredError(pid)

        monkeypatch.setattr(StatsModule, "process_stats", missing)
        result = ScenarioRunner(True).run(self._small_workload(), trace=False)
        assert result.job_stats["STREAM Conf. 1"] == []

    def test_job_stats_snapshot_present_by_default(self):
        result = ScenarioRunner(True).run(self._small_workload(), trace=False)
        records = result.job_stats["STREAM Conf. 1"]
        assert len(records) == 2  # one per MPI rank
        assert all(r.useful_time > 0 for r in records)


class TestUseCase2Workload:
    def test_high_priority_job_structure(self):
        workload = high_priority_workload()
        assert workload.jobs[0].label == "NEST Conf. 1"
        assert workload.jobs[1].label == "CoreNeuron Conf. 1"
        assert workload.jobs[1].priority > workload.jobs[0].priority

    def test_coreneuron_expands_after_nest_ends(self):
        results = run_both_scenarios(high_priority_workload())
        drom = results[DROM]
        changes = drom.tracer.mask_changes("CoreNeuron Conf. 1")
        assert any(c.new_threads == 16 for c in changes)
        nest_end = drom.metrics.job("NEST Conf. 1").end_time
        expansion_times = [c.time for c in changes if c.new_threads == 16]
        assert min(expansion_times) >= nest_end


class TestRunBothScenariosForwarding:
    """Regression: run_both_scenarios used to forward only cluster/policy and
    silently dropped backfill, node_policy, interference and batching."""

    def test_every_option_reaches_both_runners(self, monkeypatch):
        captured = []
        real = ScenarioRunner

        class Recorder(real):
            def __init__(self, drom_enabled, **kwargs):
                captured.append((drom_enabled, dict(kwargs)))
                super().__init__(drom_enabled, **kwargs)

        monkeypatch.setattr("repro.workload.runner.ScenarioRunner", Recorder)

        def interference(job, node, co_runners):
            return 1.0

        run_both_scenarios(
            in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2"),
            interference=interference,
            node_policy="first-fit",
            backfill=True,
            batching=False,
        )
        assert [drom for drom, _ in captured] == [False, True]
        for _drom, kwargs in captured:
            assert kwargs["backfill"] is True
            assert kwargs["node_policy"] == "first-fit"
            assert kwargs["interference"] is interference
            assert kwargs["batching"] is False

    def test_interference_slows_the_drom_scenario(self):
        workload = in_situ_workload("NEST", "Conf. 1", "Pils", "Conf. 2")
        base = run_both_scenarios(workload)
        slowed = run_both_scenarios(
            workload,
            interference=lambda job, node, co: 2.0 if co else 1.0,
        )
        # Co-located DROM jobs slow down; the serial scenario never co-runs.
        assert (
            slowed[DROM].metrics.total_run_time
            > base[DROM].metrics.total_run_time
        )
        assert slowed[SERIAL].metrics.total_run_time == pytest.approx(
            base[SERIAL].metrics.total_run_time
        )
