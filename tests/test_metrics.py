"""Tests of metrics collection, counters, tracing and the Paraver views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.collect import JobMetrics, WorkloadMetrics, relative_improvement
from repro.metrics.counters import CounterLog, CounterSample
from repro.metrics.paraver import ParaverView
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.slurm.jobs import Job, JobSpec


def finished_job(name, submit, start, end):
    job = Job(spec=JobSpec(name=name, nodes=1, ntasks=1, cpus_per_task=1))
    job.mark_submitted(submit)
    job.mark_started(start, ("n0",))
    job.mark_completed(end)
    return job


class TestWorkloadMetrics:
    def test_paper_metric_definitions(self):
        """Total run time = last end - first submit; response = end - submit."""
        jobs = [finished_job("sim", 0.0, 0.0, 100.0), finished_job("ana", 10.0, 100.0, 130.0)]
        metrics = WorkloadMetrics.from_jobs(jobs)
        assert metrics.total_run_time == 130.0
        assert metrics.response_times() == {"sim": 100.0, "ana": 120.0}
        assert metrics.wait_times() == {"sim": 0.0, "ana": 90.0}
        assert metrics.run_times() == {"sim": 100.0, "ana": 30.0}
        assert metrics.average_response_time == 110.0
        assert metrics.makespan_end == 130.0
        assert metrics.job("ana").wait_time == 90.0

    def test_unfinished_job_rejected(self):
        job = Job(spec=JobSpec(name="x", nodes=1, ntasks=1, cpus_per_task=1))
        job.mark_submitted(0.0)
        with pytest.raises(ValueError):
            WorkloadMetrics.from_jobs([job])

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMetrics.from_jobs([])

    def test_unknown_job_lookup(self):
        metrics = WorkloadMetrics.from_jobs([finished_job("a", 0, 0, 1)])
        with pytest.raises(KeyError):
            metrics.job("missing")

    def test_relative_improvement(self):
        assert relative_improvement(100.0, 92.0) == pytest.approx(0.08)
        assert relative_improvement(100.0, 110.0) == pytest.approx(-0.10)
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)

    def test_job_metrics_properties(self):
        jm = JobMetrics(job_id=1, name="j", submit_time=5.0, start_time=10.0, end_time=30.0)
        assert jm.wait_time == 5.0
        assert jm.run_time == 20.0
        assert jm.response_time == 25.0


class TestCounterLog:
    def make_log(self):
        log = CounterLog()
        for t in range(4):
            log.record(CounterSample("sim", rank=0, thread=t, start=0.0, duration=10.0,
                                     ipc=1.0 + 0.1 * t, cycles_per_us=2600))
            log.record(CounterSample("sim", rank=0, thread=t, start=10.0, duration=10.0,
                                     ipc=1.0, cycles_per_us=2600))
        log.record(CounterSample("ana", rank=0, thread=0, start=5.0, duration=5.0,
                                 ipc=0.5, cycles_per_us=1300))
        return log

    def test_basic_queries(self):
        log = self.make_log()
        assert len(log) == 9
        assert log.jobs() == ["sim", "ana"]
        assert len(log.for_job("ana")) == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CounterLog().record(CounterSample("x", 0, 0, 0.0, -1.0, 1.0, 2600))

    def test_mean_ipc_weighted_by_duration(self):
        log = CounterLog()
        log.record(CounterSample("j", 0, 0, 0.0, 10.0, 1.0, 2600))
        log.record(CounterSample("j", 0, 0, 10.0, 30.0, 2.0, 2600))
        assert log.mean_ipc("j") == pytest.approx((1.0 * 10 + 2.0 * 30) / 40)

    def test_mean_ipc_missing_job(self):
        with pytest.raises(ValueError):
            CounterLog().mean_ipc("nope")

    def test_histogram_per_thread(self):
        log = self.make_log()
        hist = log.ipc_histogram("sim", bins=10, range_=(0.0, 2.0))
        assert set(hist.keys()) == {(0, t) for t in range(4)}
        assert all(counts.sum() == 2 for counts in hist.values())

    def test_most_frequent_ipc(self):
        log = self.make_log()
        assert 0.9 <= log.most_frequent_ipc("sim") <= 1.4

    def test_cycles_timeline_bins(self):
        log = self.make_log()
        timeline = log.cycles_timeline("sim", bin_seconds=10.0)
        values = timeline[(0, 0)]
        assert values[0] == pytest.approx(2600)
        assert values[1] == pytest.approx(2600)

    def test_extend(self):
        log = CounterLog()
        log.extend([CounterSample("j", 0, 0, 0.0, 1.0, 1.0, 2600)])
        assert len(log) == 1


class TestTracer:
    def make_tracer(self):
        tracer = Tracer()
        for i in range(3):
            tracer.record_step(StepRecord(
                job="sim", rank=0, node="n0", start=10.0 * i, duration=10.0,
                phase="solve", nthreads=4,
                thread_utilisation=(1.0, 1.0, 0.5, 0.5), ipc=1.2, work_units=5.0,
            ))
        tracer.record_step(StepRecord(
            job="ana", rank=0, node="n0", start=5.0, duration=10.0, phase="compute",
            nthreads=2, thread_utilisation=(1.0, 1.0), ipc=1.8, work_units=3.0,
        ))
        tracer.record_mask_change(MaskChangeRecord("sim", 0, 12.0, 8, 4))
        return tracer

    def test_step_queries(self):
        tracer = self.make_tracer()
        assert len(tracer) == 4
        assert len(tracer.steps("sim")) == 3
        assert len(tracer.steps("sim", rank=0)) == 3
        assert tracer.jobs() == ["sim", "ana"]
        assert tracer.span("sim") == (0.0, 30.0)
        assert len(tracer.mask_changes("sim")) == 1
        assert len(tracer.mask_changes()) == 1
        with pytest.raises(ValueError):
            tracer.span("missing")

    def test_thread_utilisation_time_weighted(self):
        tracer = self.make_tracer()
        util = tracer.thread_utilisation("sim", 0)
        assert util[0] == pytest.approx(1.0)
        assert util[2] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            tracer.thread_utilisation("sim", 99)

    def test_counter_log_expansion(self):
        tracer = self.make_tracer()
        log = tracer.counter_log()
        # 3 steps x 4 threads + 1 step x 2 threads
        assert len(log) == 14
        sim_samples = log.for_job("sim")
        assert all(s.cycles_per_us <= 2600 for s in sim_samples)

    def test_merge(self):
        a, b = self.make_tracer(), self.make_tracer()
        a.merge(b)
        assert len(a) == 8


class TestParaverView:
    def test_thread_activity_rows(self):
        tracer = TestTracer().make_tracer()
        view = ParaverView(tracer, bin_seconds=10.0)
        rows = view.thread_activity("sim")
        assert len(rows) == 4
        assert rows[0].label.endswith("t0")
        assert rows[0].values[0] == pytest.approx(1.0)
        assert rows[2].values[0] == pytest.approx(0.5)

    def test_job_thread_count_row(self):
        tracer = TestTracer().make_tracer()
        view = ParaverView(tracer, bin_seconds=10.0)
        row = view.job_thread_count("sim")
        assert row.values[0] == pytest.approx(4.0)

    def test_renderings_are_strings(self):
        tracer = TestTracer().make_tracer()
        view = ParaverView(tracer, bin_seconds=10.0)
        text = view.render_thread_activity("sim")
        assert "sim r0 t0" in text
        widths = view.render_job_widths(["sim", "ana"])
        assert "sim" in widths and "ana" in widths

    def test_empty_job_rendering(self):
        view = ParaverView(Tracer(), bin_seconds=10.0)
        assert "no trace data" in view.render_thread_activity("ghost")

    def test_invalid_bin_size(self):
        with pytest.raises(ValueError):
            ParaverView(Tracer(), bin_seconds=0.0)

    def test_empty_tracer_horizon_zero(self):
        view = ParaverView(Tracer(), bin_seconds=10.0)
        assert view.horizon() == 0.0
        # A horizon-0 view still renders: one all-idle bin per requested job.
        row = view.job_thread_count("ghost")
        assert row.values.shape == (1,)
        assert row.values[0] == 0.0
        text = view.render_job_widths(["ghost"])
        assert "ghost" in text
        assert "one column" in text

    def test_render_with_zero_maximum(self):
        tracer = TestTracer().make_tracer()
        view = ParaverView(tracer, bin_seconds=10.0)
        row = view.job_thread_count("sim")
        # maximum == 0 must not divide by zero; everything maps to idle.
        rendered = row.render(0.0)
        assert rendered == " " * row.values.size
        assert len(rendered) == len(row.render(4.0))

    def test_render_job_widths_all_idle_rows(self):
        # Jobs with no steps at all: the shared maximum falls back to 1.0 and
        # every cell renders idle instead of raising.
        view = ParaverView(Tracer(), bin_seconds=10.0)
        text = view.render_job_widths(["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3  # header + one row per job
        assert lines[1].endswith("| |") and lines[2].endswith("| |")
