"""Tests of the mask-distribution policies of the task/affinity plugin."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cpuset.distribution import (
    EquipartitionPolicy,
    JobShare,
    PackedPolicy,
    ProportionalPolicy,
    SocketAwareEquipartition,
    distribute_tasks,
    split_among_tasks,
)
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@pytest.fixture
def node() -> NodeTopology:
    return NodeTopology.marenostrum3()


class TestJobShare:
    def test_valid(self):
        share = JobShare(job_id=1, ntasks=2, requested_cpus=16)
        assert share.ntasks == 2

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            JobShare(job_id=1, ntasks=0, requested_cpus=4)

    def test_request_at_least_tasks(self):
        with pytest.raises(ValueError):
            JobShare(job_id=1, ntasks=4, requested_cpus=2)


class TestSplitAmongTasks:
    def test_even_split(self):
        masks = split_among_tasks(CpuSet.from_range(0, 8), 2)
        assert masks[0] == CpuSet.from_range(0, 4)
        assert masks[1] == CpuSet.from_range(4, 8)

    def test_remainder_goes_to_first_tasks(self):
        masks = split_among_tasks(CpuSet.from_range(0, 7), 3)
        assert [m.count() for m in masks] == [3, 2, 2]

    def test_single_task_gets_all(self):
        assert split_among_tasks(CpuSet.from_range(0, 5), 1)[0].count() == 5

    def test_invalid_ntasks(self):
        with pytest.raises(ValueError):
            split_among_tasks(CpuSet.from_range(0, 4), 0)

    def test_masks_are_disjoint_and_cover(self):
        mask = CpuSet([0, 2, 4, 6, 8, 10, 12])
        masks = split_among_tasks(mask, 3)
        union = CpuSet.empty()
        for m in masks:
            assert union.isdisjoint(m)
            union = union | m
        assert union == mask


class TestEquipartition:
    def test_two_full_jobs_split_evenly(self, node):
        """Two full-node requests get half the node each (use case 2)."""
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 16)]
        alloc = EquipartitionPolicy().distribute(node, jobs)
        assert alloc[1].ncpus == 8
        assert alloc[2].ncpus == 8
        assert alloc[1].mask.isdisjoint(alloc[2].mask)

    def test_small_job_only_takes_its_request(self, node):
        """A 2-CPU analytics job leaves the rest to the running simulation
        (the NEST + STREAM case: 'we remove 2 CPUs from the simulation')."""
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 2)]
        alloc = EquipartitionPolicy().distribute(node, jobs)
        assert alloc[2].ncpus == 2
        assert alloc[1].ncpus == 14

    def test_one_cpu_analytics(self, node):
        """Pils Conf. 2 takes a single CPU per node."""
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 1)]
        alloc = EquipartitionPolicy().distribute(node, jobs)
        assert alloc[2].ncpus == 1
        assert alloc[1].ncpus == 15

    def test_every_task_gets_a_cpu(self, node):
        jobs = [JobShare(1, 8, 16), JobShare(2, 8, 16)]
        alloc = EquipartitionPolicy().distribute(node, jobs)
        for job_alloc in alloc.values():
            assert all(not m.is_empty() for m in job_alloc.task_masks)

    def test_oversubscription_rejected(self, node):
        jobs = [JobShare(1, 10, 16), JobShare(2, 10, 16)]
        with pytest.raises(ValueError):
            EquipartitionPolicy().distribute(node, jobs)

    def test_duplicate_job_ids_rejected(self, node):
        with pytest.raises(ValueError):
            EquipartitionPolicy().distribute(node, [JobShare(1, 1, 4), JobShare(1, 1, 4)])

    def test_empty_job_list(self, node):
        assert EquipartitionPolicy().distribute(node, []) == {}


class TestSocketAwareEquipartition:
    def test_two_jobs_get_separate_sockets(self, node):
        """The paper's locality rule: co-allocated jobs end up on different
        sockets when the shares allow it."""
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 16)]
        alloc = SocketAwareEquipartition().distribute(node, jobs)
        assert alloc[1].mask == node.socket_mask(0)
        assert alloc[2].mask == node.socket_mask(1)

    def test_three_jobs_fall_back_to_contiguous(self, node):
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 16), JobShare(3, 1, 16)]
        alloc = SocketAwareEquipartition().distribute(node, jobs)
        total = sum(a.ncpus for a in alloc.values())
        assert total <= node.ncpus
        masks = [a.mask for a in alloc.values()]
        for i, a in enumerate(masks):
            for b in masks[i + 1:]:
                assert a.isdisjoint(b)

    def test_single_job_keeps_full_request(self, node):
        alloc = SocketAwareEquipartition().distribute(node, [JobShare(1, 1, 16)])
        assert alloc[1].ncpus == 16

    def test_small_job_does_not_get_whole_socket(self, node):
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 2)]
        alloc = SocketAwareEquipartition().distribute(node, jobs)
        assert alloc[2].ncpus == 2
        assert alloc[1].ncpus == 14


class TestProportionalPolicy:
    def test_shares_follow_requests(self, node):
        jobs = [JobShare(1, 1, 12), JobShare(2, 1, 4)]
        alloc = ProportionalPolicy().distribute(node, jobs)
        assert alloc[1].ncpus == 12
        assert alloc[2].ncpus == 4

    def test_never_exceeds_request(self, node):
        jobs = [JobShare(1, 1, 2), JobShare(2, 1, 2)]
        alloc = ProportionalPolicy().distribute(node, jobs)
        assert alloc[1].ncpus <= 2
        assert alloc[2].ncpus <= 2


class TestPackedPolicy:
    def test_first_job_keeps_everything(self, node):
        jobs = [JobShare(1, 1, 16), JobShare(2, 1, 2)]
        with pytest.raises(ValueError):
            # With the running job keeping its full request there is nothing
            # left for the new job: the no-malleability baseline cannot
            # co-allocate without oversubscription.
            PackedPolicy().distribute(node, jobs)

    def test_packing_when_space_remains(self, node):
        jobs = [JobShare(1, 1, 10), JobShare(2, 1, 4)]
        alloc = PackedPolicy().distribute(node, jobs)
        assert alloc[1].ncpus == 10
        assert alloc[2].ncpus == 4


class TestDistributeTasksHelper:
    def test_default_policy_is_socket_aware(self, node):
        alloc = distribute_tasks(node, [JobShare(1, 1, 16), JobShare(2, 1, 16)])
        assert alloc[1].mask == node.socket_mask(0)


# -- property-based invariants ----------------------------------------------------------

job_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),   # ntasks
        st.integers(min_value=1, max_value=16),  # requested cpus
    ),
    min_size=1,
    max_size=4,
)


@given(job_strategy)
def test_equipartition_invariants(specs):
    """For any feasible job mix: no oversubscription, no empty task masks,
    nobody above its request unless expanding is impossible, full coverage of
    demand."""
    node = NodeTopology.marenostrum3()
    jobs = [
        JobShare(job_id=i + 1, ntasks=t, requested_cpus=max(r, t))
        for i, (t, r) in enumerate(specs)
    ]
    if sum(j.ntasks for j in jobs) > node.ncpus:
        with pytest.raises(ValueError):
            EquipartitionPolicy().distribute(node, jobs)
        return
    alloc = EquipartitionPolicy().distribute(node, jobs)
    union = CpuSet.empty()
    for job in jobs:
        a = alloc[job.job_id]
        # disjointness
        assert union.isdisjoint(a.mask)
        union = union | a.mask
        # every task has at least one CPU
        assert all(m.count() >= 1 for m in a.task_masks)
        # task masks partition the job mask
        task_union = CpuSet.empty()
        for m in a.task_masks:
            assert task_union.isdisjoint(m)
            task_union = task_union | m
        assert task_union == a.mask
        # at least one CPU per task, never more than the node
        assert job.ntasks <= a.ncpus <= node.ncpus
    assert union.issubset(node.full_mask())


@given(job_strategy)
def test_socket_aware_matches_equipartition_shares(specs):
    """The socket-aware variant changes placement, not the share sizes."""
    node = NodeTopology.marenostrum3()
    jobs = [
        JobShare(job_id=i + 1, ntasks=t, requested_cpus=max(r, t))
        for i, (t, r) in enumerate(specs)
    ]
    if sum(j.ntasks for j in jobs) > node.ncpus:
        return
    flat = EquipartitionPolicy().distribute(node, jobs)
    socketed = SocketAwareEquipartition().distribute(node, jobs)
    for job in jobs:
        assert flat[job.job_id].ncpus == socketed[job.job_id].ncpus
