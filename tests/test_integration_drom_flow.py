"""End-to-end integration test of the full Figure-2 flow at the API level.

This walks the exact sequence of the paper's SLURM integration — job 1
running, job 2 submitted, launch_request, pre_launch/DROM_PreInit, the
running job polling and shrinking, post_term/DROM_PostFinalize and
release_resources — using the public APIs the way a resource-manager
developer would.
"""

from __future__ import annotations

import pytest

from repro.core import DlbError, DromFlags, NodeSharedMemory, attach_admin
from repro.cpuset import CpuSet, NodeTopology
from repro.runtime import ApplicationProcess, MpiCommunicator, ProcessSpec, ThreadModel
from repro.slurm import Slurmd, Srun, JobSpec, Job


class TestManualAdministratorFlow:
    """A user-written administrator process (no SLURM involved)."""

    def test_shrink_expand_cycle(self, mn3_node):
        shmem = NodeSharedMemory(mn3_node)

        # A hybrid application registers through DLB with the full node.
        app = ApplicationProcess(
            ProcessSpec(
                pid=4242,
                node=mn3_node.name,
                mpi_rank=0,
                thread_model=ThreadModel.OPENMP,
                initial_mask=mn3_node.full_mask(),
            ),
            shmem,
        )
        app.start()
        assert app.num_threads == 16

        # The administrator attaches and inspects the node.
        admin = attach_admin(shmem)
        assert admin.get_pid_list() == [4242]
        code, mask = admin.get_process_mask(4242)
        assert code is DlbError.DLB_SUCCESS and mask.count() == 16

        # Shrink the application to one socket.
        assert admin.set_process_mask(
            4242, CpuSet.from_range(0, 8), DromFlags.STEAL
        ) is DlbError.DLB_NOTED
        # The change is adopted at the next malleability point.
        assert app.num_threads == 16
        app.poll_malleability()
        assert app.num_threads == 8
        assert app.openmp.pinning() == {i: i for i in range(8)}

        # Expand back to the full node.
        admin.set_process_mask(4242, mn3_node.full_mask(), DromFlags.STEAL)
        app.enter_parallel_region()
        assert app.num_threads == 16

        app.finish()
        assert admin.get_pid_list() == []
        admin.detach()


class TestSlurmFigure2Flow:
    """The full slurmd/slurmstepd launch procedure of Figure 2."""

    def test_two_jobs_sharing_two_nodes(self, mn3_cluster):
        slurmds = {n.name: Slurmd(n, drom_enabled=True) for n in mn3_cluster.nodes}
        srun = Srun(slurmds)

        # Job 1 (the "simulation") already runs on both nodes with all CPUs.
        job1 = Job(spec=JobSpec(name="job1", nodes=2, ntasks=2, cpus_per_task=16))
        job1.mark_submitted(0.0)
        job1.mark_started(0.0, ("mn3-0", "mn3-1"))
        launch1 = srun.launch(job1)

        apps1 = []
        comm1 = MpiCommunicator(size=2, job_id=job1.job_id)
        for task in launch1.tasks():
            app = ApplicationProcess(
                ProcessSpec(
                    pid=task.pid,
                    node=task.node,
                    mpi_rank=task.global_rank,
                    thread_model=ThreadModel.OPENMP,
                    initial_mask=task.mask,
                ),
                slurmds[task.node].shmem,
                comm=comm1,
                environ=task.environ,
            )
            app.start()
            apps1.append(app)
        assert all(app.num_threads == 16 for app in apps1)

        # Job 2 arrives; srun launches it on the same nodes (steps 1-2.1).
        job2 = Job(spec=JobSpec(name="job2", nodes=2, ntasks=2, cpus_per_task=16))
        job2.mark_submitted(10.0)
        job2.mark_started(10.0, ("mn3-0", "mn3-1"))
        launch2 = srun.launch(job2)

        # New tasks got half of each node, on their own socket.
        for task in launch2.tasks():
            assert task.mask.count() == 8

        # Step 3: job 1's tasks poll DROM at their next MPI call and shrink.
        for rank_index, app in enumerate(apps1):
            comm1.rank(rank_index).barrier()
        assert all(app.num_threads == 8 for app in apps1)

        # No CPU is used by two tasks at once on either node.
        for slurmd in slurmds.values():
            assert slurmd.shmem.oversubscribed_cpus().is_empty()

        # Steps 4-5: job 2 completes; its CPUs return to job 1, which expands.
        srun.terminate(job2)
        for app in apps1:
            app.poll_malleability()
        assert all(app.num_threads == 16 for app in apps1)

        # Cleanup of job 1 leaves the nodes empty.
        for app in apps1:
            app.finish()
        srun.terminate(job1)
        for slurmd in slurmds.values():
            assert len(slurmd.shmem) == 0
            assert slurmd.free_cpus() == 16
