"""Tests of the CpuSet bitset (the reproduction's cpu_set_t)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cpuset.mask import CpuSet

cpu_lists = st.lists(st.integers(min_value=0, max_value=63), max_size=32)


class TestConstruction:
    def test_empty_by_default(self):
        assert CpuSet().is_empty()
        assert CpuSet().count() == 0

    def test_from_iterable_deduplicates(self):
        assert CpuSet([1, 1, 2, 2, 2]).count() == 2

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            CpuSet([-1])

    def test_from_bits(self):
        assert CpuSet.from_bits(0b1011).cpus() == (0, 1, 3)

    def test_from_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuSet.from_bits(-1)

    def test_from_range(self):
        assert CpuSet.from_range(2, 6).cpus() == (2, 3, 4, 5)

    def test_from_range_empty(self):
        assert CpuSet.from_range(3, 3).is_empty()

    def test_from_range_invalid(self):
        with pytest.raises(ValueError):
            CpuSet.from_range(5, 2)
        with pytest.raises(ValueError):
            CpuSet.from_range(-1, 2)

    def test_full(self):
        assert CpuSet.full(16).count() == 16
        assert CpuSet.full(16).highest() == 15

    def test_empty_constructor(self):
        assert CpuSet.empty() == CpuSet()


class TestParse:
    def test_parse_single(self):
        assert CpuSet.parse("3").cpus() == (3,)

    def test_parse_range(self):
        assert CpuSet.parse("0-3").cpus() == (0, 1, 2, 3)

    def test_parse_mixed(self):
        assert CpuSet.parse("0-2,5,8-9").cpus() == (0, 1, 2, 5, 8, 9)

    def test_parse_empty_string(self):
        assert CpuSet.parse("").is_empty()
        assert CpuSet.parse("  ").is_empty()

    def test_parse_invalid_range(self):
        with pytest.raises(ValueError):
            CpuSet.parse("5-2")

    def test_roundtrip_with_to_list_string(self):
        mask = CpuSet([0, 1, 2, 5, 8, 9, 15])
        assert CpuSet.parse(mask.to_list_string()) == mask

    def test_to_list_string_empty(self):
        assert CpuSet.empty().to_list_string() == ""

    def test_to_list_string_compacts_ranges(self):
        assert CpuSet([0, 1, 2, 3, 8]).to_list_string() == "0-3,8"


class TestQueries:
    def test_contains(self):
        mask = CpuSet([2, 4])
        assert mask.contains(2)
        assert not mask.contains(3)
        assert not mask.contains(-1)
        assert 4 in mask
        assert 5 not in mask
        assert "x" not in mask

    def test_lowest_highest(self):
        mask = CpuSet([5, 9, 3])
        assert mask.lowest() == 3
        assert mask.highest() == 9

    def test_lowest_of_empty_raises(self):
        with pytest.raises(ValueError):
            CpuSet.empty().lowest()
        with pytest.raises(ValueError):
            CpuSet.empty().highest()

    def test_len_and_bool(self):
        assert len(CpuSet([1, 2, 3])) == 3
        assert bool(CpuSet([1]))
        assert not bool(CpuSet())

    def test_subset_superset(self):
        small, big = CpuSet([1, 2]), CpuSet([0, 1, 2, 3])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert small <= big
        assert big >= small
        assert small < big
        assert big > small
        assert not big <= small

    def test_isdisjoint(self):
        assert CpuSet([0, 1]).isdisjoint(CpuSet([2, 3]))
        assert not CpuSet([0, 1]).isdisjoint(CpuSet([1, 2]))

    def test_first_and_last(self):
        mask = CpuSet([1, 3, 5, 7, 9])
        assert mask.first(2) == CpuSet([1, 3])
        assert mask.last(2) == CpuSet([7, 9])
        assert mask.first(100) == mask
        assert mask.first(0).is_empty()

    def test_first_negative_raises(self):
        with pytest.raises(ValueError):
            CpuSet([1]).first(-1)
        with pytest.raises(ValueError):
            CpuSet([1]).last(-1)


class TestAlgebra:
    def test_union_intersection_difference(self):
        a, b = CpuSet([0, 1, 2]), CpuSet([2, 3])
        assert (a | b).cpus() == (0, 1, 2, 3)
        assert (a & b).cpus() == (2,)
        assert (a - b).cpus() == (0, 1)
        assert (a ^ b).cpus() == (0, 1, 3)

    def test_add_remove_return_new_objects(self):
        a = CpuSet([0])
        b = a.add(5)
        assert a.cpus() == (0,)
        assert b.cpus() == (0, 5)
        c = b.remove(0)
        assert c.cpus() == (5,)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            CpuSet().add(-1)
        with pytest.raises(ValueError):
            CpuSet().remove(-2)

    def test_equality_and_hash(self):
        assert CpuSet([1, 2]) == CpuSet([2, 1])
        assert hash(CpuSet([1, 2])) == hash(CpuSet([2, 1]))
        assert CpuSet([1]) != CpuSet([2])
        assert CpuSet([1]).__eq__(42) is NotImplemented

    def test_immutability(self):
        mask = CpuSet([1])
        with pytest.raises(AttributeError):
            mask._bits = 5  # type: ignore[attr-defined]

    def test_repr_lists_cpus(self):
        assert repr(CpuSet([3, 1])) == "CpuSet([1, 3])"


class TestProperties:
    @given(cpu_lists)
    def test_count_matches_unique_cpus(self, cpus):
        assert CpuSet(cpus).count() == len(set(cpus))

    @given(cpu_lists)
    def test_iteration_sorted_and_unique(self, cpus):
        listed = list(CpuSet(cpus))
        assert listed == sorted(set(cpus))

    @given(cpu_lists, cpu_lists)
    def test_union_is_commutative_and_contains_both(self, a, b):
        sa, sb = CpuSet(a), CpuSet(b)
        assert sa | sb == sb | sa
        assert sa.issubset(sa | sb)
        assert sb.issubset(sa | sb)

    @given(cpu_lists, cpu_lists)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        sa, sb = CpuSet(a), CpuSet(b)
        assert (sa - sb).isdisjoint(sb)
        assert (sa - sb) | (sa & sb) == sa

    @given(cpu_lists)
    def test_parse_roundtrip(self, cpus):
        mask = CpuSet(cpus)
        assert CpuSet.parse(mask.to_list_string()) == mask

    @given(cpu_lists, st.integers(min_value=0, max_value=40))
    def test_first_n_is_prefix(self, cpus, n):
        mask = CpuSet(cpus)
        prefix = mask.first(n)
        assert prefix.count() == min(n, mask.count())
        assert prefix.issubset(mask)
        # Every CPU not taken is larger than every CPU taken.
        if prefix and (mask - prefix):
            assert prefix.highest() < (mask - prefix).lowest()

    @given(cpu_lists, cpu_lists)
    def test_set_semantics_match_python_sets(self, a, b):
        sa, sb = CpuSet(a), CpuSet(b)
        pa, pb = set(a), set(b)
        assert set(sa | sb) == pa | pb
        assert set(sa & sb) == pa & pb
        assert set(sa - sb) == pa - pb
        assert set(sa ^ sb) == pa ^ pb
