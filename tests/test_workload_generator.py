"""Tests of the synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.cpuset.topology import ClusterTopology
from repro.runtime.process import ThreadModel
from repro.workload.generator import (
    DEFAULT_APP_MIX,
    AppMixEntry,
    WorkloadSpec,
    generate_workload,
)
from repro.workload.runner import ScenarioRunner

#: Small family used throughout: cheap enough for end-to-end runs.
SMALL = WorkloadSpec(njobs=4, mean_interarrival=60.0, work_scale=0.04, iterations=16)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        assert generate_workload(SMALL, 42) == generate_workload(SMALL, 42)

    def test_different_seeds_differ(self):
        a = generate_workload(SMALL, 1)
        b = generate_workload(SMALL, 2)
        assert [j.submit_time for j in a.jobs] != [j.submit_time for j in b.jobs]

    def test_seed_appears_in_name(self):
        assert "seed=7" in generate_workload(SMALL, 7).name


class TestStructure:
    def test_job_count_and_unique_labels(self):
        workload = generate_workload(SMALL, 3)
        assert len(workload.jobs) == SMALL.njobs
        labels = workload.job_labels()
        assert len(set(labels)) == len(labels)

    def test_first_job_arrives_at_zero_and_times_increase(self):
        workload = generate_workload(SMALL, 3)
        times = [j.submit_time for j in workload.jobs]
        assert times[0] == 0.0
        assert times == sorted(times)

    def test_uniform_arrivals_are_evenly_spaced(self):
        spec = WorkloadSpec(njobs=3, arrival="uniform", mean_interarrival=50.0)
        workload = generate_workload(spec, 0)
        assert [j.submit_time for j in workload.jobs] == [0.0, 50.0, 100.0]

    def test_burst_arrivals_with_zero_interarrival(self):
        spec = WorkloadSpec(njobs=3, mean_interarrival=0.0)
        workload = generate_workload(spec, 0)
        assert [j.submit_time for j in workload.jobs] == [0.0, 0.0, 0.0]

    def test_app_mix_weights_respected(self):
        mix = (
            AppMixEntry("STREAM", "Conf. 1", weight=1.0),
            AppMixEntry("Pils", "Conf. 2", weight=0.0),
        )
        spec = WorkloadSpec(njobs=10, app_mix=mix)
        workload = generate_workload(spec, 5)
        assert all(j.app.app_name == "STREAM" for j in workload.jobs)

    def test_pils_jobs_use_ompss(self):
        mix = (AppMixEntry("Pils", "Conf. 2"),)
        workload = generate_workload(WorkloadSpec(njobs=2, app_mix=mix), 0)
        assert all(j.thread_model is ThreadModel.OMPSS for j in workload.jobs)

    def test_priorities_drawn_from_levels(self):
        spec = WorkloadSpec(njobs=8, priority_levels=(0, 10))
        workload = generate_workload(spec, 1)
        assert {j.priority for j in workload.jobs} <= {0, 10}

    def test_work_scale_shrinks_models(self):
        small = generate_workload(SMALL, 0)
        big = generate_workload(
            WorkloadSpec(
                njobs=SMALL.njobs,
                mean_interarrival=SMALL.mean_interarrival,
                work_scale=1.0,
                iterations=16,
            ),
            0,
        )
        assert small.jobs[0].app.model.total_work < big.jobs[0].app.model.total_work

    def test_nodes_field_propagates(self):
        workload = generate_workload(WorkloadSpec(njobs=1, nodes=3), 0)
        assert workload.nodes == 3


class TestValidation:
    def test_invalid_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            AppMixEntry("GROMACS", "Conf. 1")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="no configuration"):
            AppMixEntry("STREAM", "Conf. 9")

    def test_bad_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            WorkloadSpec(arrival="lognormal")

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="positive weight"):
            WorkloadSpec(app_mix=(AppMixEntry("STREAM", "Conf. 1", weight=0.0),))

    def test_default_mix_covers_all_four_apps(self):
        assert {e.app for e in DEFAULT_APP_MIX} == {
            "NEST",
            "CoreNeuron",
            "Pils",
            "STREAM",
        }


class TestEndToEnd:
    def test_generated_workload_runs_under_both_scenarios(self):
        workload = generate_workload(SMALL, 11)
        cluster = ClusterTopology.marenostrum3(4)
        for drom_enabled in (False, True):
            result = ScenarioRunner(drom_enabled, cluster=cluster).run(
                workload, trace=False
            )
            assert result.metrics.total_run_time > 0
            assert len(result.metrics.jobs) == SMALL.njobs
