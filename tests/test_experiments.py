"""Headline-shape tests: the paper's qualitative results must hold.

These tests assert the *shape* of every result the paper reports (who wins,
by roughly what factor, where the crossovers are) rather than the absolute
MareNostrum III numbers, which a simulation cannot match.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.usecase1 import (
    compare_workload,
    imbalance_trace,
    scenario_timelines,
    simulator_average_response,
    simulator_pils_run_time,
    simulator_stream,
)
from repro.experiments.usecase2 import run_usecase2
from repro.experiments.tables import (
    render_average_response_figure,
    render_response_figure,
    render_run_time_figure,
    render_table1,
)


@pytest.fixture(scope="module")
def nest_pils():
    return simulator_pils_run_time("NEST")


@pytest.fixture(scope="module")
def neuron_pils():
    return simulator_pils_run_time("CoreNeuron")


@pytest.fixture(scope="module")
def uc2():
    return run_usecase2()


class TestFigure4And9_TotalRunTime:
    def test_drom_never_loses(self, nest_pils, neuron_pils):
        for comparison in nest_pils + neuron_pils:
            assert comparison.total_run_time_gain >= -0.005, comparison.workload

    def test_gains_in_paper_ballpark(self, nest_pils):
        """Roughly 6 % gains for Pils Conf. 2/3, near-parity for Conf. 1."""
        by_conf = {
            (c.simulator_config, c.analytics_config): c.total_run_time_gain
            for c in nest_pils
        }
        for sim_conf in ("Conf. 1", "Conf. 2"):
            assert 0.02 <= by_conf[(sim_conf, "Conf. 2")] <= 0.15
            assert 0.02 <= by_conf[(sim_conf, "Conf. 3")] <= 0.15
            assert -0.01 <= by_conf[(sim_conf, "Conf. 1")] <= 0.06

    def test_coreneuron_results_similar_to_nest(self, nest_pils, neuron_pils):
        """The paper: 'Results are very similar to NEST workloads'."""
        nest_gains = np.array([c.total_run_time_gain for c in nest_pils])
        neuron_gains = np.array([c.total_run_time_gain for c in neuron_pils])
        assert np.allclose(nest_gains, neuron_gains, atol=0.04)


class TestFigure5_Imbalance:
    def test_orphan_chunks_go_to_a_few_threads(self):
        trace = imbalance_trace()
        # Figure 5: the removed thread's data is computed by the first 4
        # threads, the others show idle time.
        assert len(trace.overloaded_threads) == 4
        assert len(trace.underloaded_threads) == 11
        assert all(u < 1.0 for t, u in trace.shrunk_utilisation.items()
                   if t in trace.underloaded_threads)
        assert trace.mask_changes >= 2
        assert "NEST" in trace.rendering


class TestFigure6And10_ResponseTimes:
    def test_analytics_response_collapses(self, nest_pils, neuron_pils):
        """Pils response time decreases by ~90 % (paper: up to 96 %)."""
        for comparison in nest_pils + neuron_pils:
            assert comparison.analytics_response_reduction >= 0.80

    def test_simulator_penalty_is_small(self, nest_pils, neuron_pils):
        """The simulator's response time grows only a few percent (paper: up
        to 4.2 % with Pils, 6.7 % worst case)."""
        for comparison in nest_pils + neuron_pils:
            assert comparison.simulator_response_change <= 0.09


class TestFigure7And11_Stream:
    def test_total_run_time_always_better_with_stream(self):
        """Memory-bound + compute-bound co-location always wins (paper: NEST
        1.84 % average, CoreNeuron up to 8 %)."""
        for simulator in ("NEST", "CoreNeuron"):
            for comparison in simulator_stream(simulator):
                assert 0.0 < comparison.total_run_time_gain <= 0.12
                assert comparison.analytics_response_reduction >= 0.85
                assert comparison.simulator_response_change <= 0.07


class TestFigure8And12_AverageResponse:
    def test_average_response_gain_range(self):
        """The paper: gains between 37 % and 48 % (NEST), ~46.5 % (CoreNeuron)."""
        for simulator in ("NEST", "CoreNeuron"):
            for comparison in simulator_average_response(simulator):
                assert 0.30 <= comparison.average_response_gain <= 0.55


class TestFigures13To15_UseCase2:
    def test_total_run_time_improves(self, uc2):
        assert uc2.total_run_time_gain > 0.0

    def test_high_priority_job_starts_immediately(self, uc2):
        waits = uc2.wait_times()
        assert waits["drom"][uc2.coreneuron_label] == 0.0
        assert waits["serial"][uc2.coreneuron_label] > 0.0

    def test_average_response_improves(self, uc2):
        assert uc2.average_response_gain > 0.0

    def test_ipc_comparable_between_scenarios(self, uc2):
        """Figure 14: the histograms of the two scenarios are comparable; the
        DROM run shows slightly *higher* IPC (better locality at 8 threads)."""
        for job, (serial_ipc, drom_ipc) in uc2.ipc_comparison().items():
            assert drom_ipc == pytest.approx(serial_ipc, rel=0.20), job
            assert drom_ipc >= serial_ipc * 0.98

    def test_coreneuron_expands_when_nest_ends(self, uc2):
        assert uc2.coreneuron_expanded()

    def test_ipc_histograms_have_mass(self, uc2):
        hists = uc2.ipc_histograms("drom")
        assert all(h.sum() > 0 for h in hists.values())

    def test_cycles_rendering_produced(self, uc2):
        text = uc2.cycles_rendering("drom")
        assert uc2.nest_label in text and uc2.coreneuron_label in text


class TestFigure3_Timelines:
    def test_serial_and_drom_orderings(self):
        timelines = scenario_timelines()
        serial, drom = timelines["serial"], timelines["drom"]
        nest_serial = serial.job_intervals["NEST Conf. 1"]
        pils_serial = serial.job_intervals["Pils Conf. 2"]
        # Serial: the analytics runs strictly after the simulation.
        assert pils_serial[0] >= nest_serial[1] - 1e-6
        nest_drom = drom.job_intervals["NEST Conf. 1"]
        pils_drom = drom.job_intervals["Pils Conf. 2"]
        # DROM: the analytics overlaps the simulation.
        assert pils_drom[0] < nest_drom[1]


class TestRenderings:
    def test_table1_rendering(self):
        text = render_table1()
        assert "NEST" in text and "2 x 16" in text

    def test_figure_renderings(self, nest_pils):
        assert "DROM gain" in render_run_time_figure(nest_pils)
        assert "Ana resp reduction" in render_response_figure(nest_pils)
        assert "Gain" in render_average_response_figure(nest_pils)
