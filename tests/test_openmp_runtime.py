"""Tests of the simulated OpenMP runtime, OMPT and the DLB OMPT tool."""

from __future__ import annotations

import pytest

from repro.core.dlb import DlbProcess
from repro.core.flags import DromFlags
from repro.cpuset.mask import CpuSet
from repro.runtime.ompt import OmptEvent, OmptEventData
from repro.runtime.openmp import DlbOmptTool, OpenMPRuntime


class TestTeamManagement:
    def test_initial_team_matches_mask(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        assert runtime.max_threads == 8
        assert runtime.mask == CpuSet.from_range(0, 8)
        assert not runtime.in_parallel

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            OpenMPRuntime(CpuSet.empty())

    def test_set_num_threads(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        runtime.set_num_threads(4)
        assert runtime.max_threads == 4
        with pytest.raises(ValueError):
            runtime.set_num_threads(0)

    def test_parallel_region_uses_max_threads(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        with runtime.parallel_region() as region:
            assert region.team_size == 8
            assert runtime.in_parallel
            assert runtime.current_team_size == 8
        assert not runtime.in_parallel
        assert runtime.regions()[-1].team_size == 8

    def test_parallel_region_with_explicit_num_threads(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        with runtime.parallel_region(num_threads=3) as region:
            assert region.team_size == 3

    def test_num_threads_clamped_to_max(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4))
        with runtime.parallel_region(num_threads=100) as region:
            assert region.team_size == 4

    def test_nested_regions_rejected(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4))
        with runtime.parallel_region():
            with pytest.raises(RuntimeError):
                runtime._begin_region(None)


class TestPinning:
    def test_threads_pinned_to_mask_cpus(self):
        runtime = OpenMPRuntime(CpuSet([2, 3, 5, 7]))
        assert runtime.pinning() == {0: 2, 1: 3, 2: 5, 3: 7}

    def test_no_binding_mode(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4), bind_threads=False)
        assert runtime.pinning() == {}

    def test_rebind_after_mask_change(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4))
        runtime.apply_mask(CpuSet([8, 9]))
        assert runtime.pinning() == {0: 8, 1: 9}
        assert runtime.max_threads == 2

    def test_region_records_pinning(self):
        runtime = OpenMPRuntime(CpuSet([1, 2]))
        with runtime.parallel_region():
            pass
        assert runtime.regions()[0].pinning == ((0, 1), (1, 2))


class TestMalleability:
    def test_apply_mask_outside_region_is_immediate(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 16))
        assert runtime.apply_mask(CpuSet.from_range(0, 8)) is True
        assert runtime.max_threads == 8

    def test_apply_mask_inside_region_is_deferred(self):
        """OpenMP cannot resize an open team: the change lands at region end
        (the 'acceptable non-immediate malleability' of Section 3.1)."""
        runtime = OpenMPRuntime(CpuSet.from_range(0, 16))
        with runtime.parallel_region() as region:
            assert runtime.apply_mask(CpuSet.from_range(0, 8)) is False
            assert runtime.max_threads == 16
            assert region.team_size == 16
        assert runtime.max_threads == 8
        assert runtime.mask == CpuSet.from_range(0, 8)

    def test_apply_empty_mask_rejected(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4))
        with pytest.raises(ValueError):
            runtime.apply_mask(CpuSet.empty())


class TestOmpt:
    def test_callbacks_fire_per_construct(self):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 2))
        events: list[OmptEventData] = []
        runtime.set_callback(OmptEvent.PARALLEL_BEGIN, events.append)
        runtime.set_callback(OmptEvent.PARALLEL_END, events.append)
        runtime.set_callback(OmptEvent.IMPLICIT_TASK_BEGIN, events.append)
        with runtime.parallel_region():
            pass
        names = [e.event for e in events]
        assert names[0] is OmptEvent.PARALLEL_BEGIN
        assert names.count(OmptEvent.IMPLICIT_TASK_BEGIN) == 2
        assert names[-1] is OmptEvent.PARALLEL_END

    def test_single_tool_registration(self, shmem):
        runtime = OpenMPRuntime(CpuSet.from_range(0, 4))
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 4), environ={})
        dlb.init()
        tool = DlbOmptTool(dlb)
        runtime.register_tool(tool)
        assert runtime.has_tool
        with pytest.raises(RuntimeError):
            runtime.register_tool(DlbOmptTool(dlb))
        runtime.unregister_tool()
        assert not runtime.has_tool

    def test_tool_requires_openmp_runtime(self, shmem):
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet([0]), environ={})
        dlb.init()

        class FakeRuntime:
            def set_callback(self, *a):  # pragma: no cover - never reached
                pass

        from repro.runtime.ompt import OmptCapableRuntime

        with pytest.raises(TypeError):
            DlbOmptTool(dlb).initialize(OmptCapableRuntime())


class TestDlbOmptTool:
    def test_mask_change_applied_at_parallel_begin(self, shmem, admin):
        """The transparent integration: DROM changes the mask, the next
        parallel region already runs with the new team size and pinning."""
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 16), environ={})
        dlb.init()
        runtime = OpenMPRuntime(CpuSet.from_range(0, 16))
        tool = DlbOmptTool(dlb)
        runtime.register_tool(tool)

        with runtime.parallel_region() as region:
            assert region.team_size == 16

        admin.set_process_mask(1, CpuSet.from_range(0, 6), DromFlags.STEAL)

        with runtime.parallel_region() as region:
            assert region.team_size == 6
        assert runtime.mask == CpuSet.from_range(0, 6)
        assert tool.updates_applied == 1
        assert set(runtime.pinning().values()) == set(range(6))

    def test_on_update_hook(self, shmem, admin):
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 8), environ={})
        dlb.init()
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        tool = DlbOmptTool(dlb)
        seen = []
        tool.on_update = seen.append
        runtime.register_tool(tool)
        admin.set_process_mask(1, CpuSet.from_range(0, 4))
        with runtime.parallel_region():
            pass
        assert seen == [CpuSet.from_range(0, 4)]

    def test_no_update_means_no_action(self, shmem):
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 8), environ={})
        dlb.init()
        runtime = OpenMPRuntime(CpuSet.from_range(0, 8))
        tool = DlbOmptTool(dlb)
        runtime.register_tool(tool)
        with runtime.parallel_region():
            pass
        assert tool.updates_applied == 0
