"""Tests of job specs, job lifecycle and the pending-job queue."""

from __future__ import annotations

import pytest

from repro.slurm.jobs import Job, JobSpec, JobState
from repro.slurm.queue import JobQueue


def spec(name="job", nodes=2, ntasks=2, cpt=16, priority=0, malleable=True):
    return JobSpec(
        name=name, nodes=nodes, ntasks=ntasks, cpus_per_task=cpt,
        priority=priority, malleable=malleable,
    )


class TestJobSpec:
    def test_derived_quantities(self):
        s = spec(nodes=2, ntasks=4, cpt=8)
        assert s.tasks_per_node == 2
        assert s.cpus_per_node == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(nodes=0)
        with pytest.raises(ValueError):
            spec(ntasks=0)
        with pytest.raises(ValueError):
            spec(cpt=0)
        with pytest.raises(ValueError):
            spec(nodes=2, ntasks=3)  # not divisible


class TestJobLifecycle:
    def test_timestamps_and_metrics(self):
        job = Job(spec=spec())
        job.mark_submitted(10.0)
        job.mark_started(25.0, ("n0", "n1"))
        job.mark_completed(125.0)
        assert job.state is JobState.COMPLETED
        assert job.wait_time == 15.0
        assert job.run_time == 100.0
        assert job.response_time == 115.0
        assert job.allocated_nodes == ("n0", "n1")

    def test_metrics_before_completion_raise(self):
        job = Job(spec=spec())
        job.mark_submitted(0.0)
        with pytest.raises(ValueError):
            _ = job.wait_time
        with pytest.raises(ValueError):
            _ = job.response_time
        job.mark_started(1.0, ("n0",))
        with pytest.raises(ValueError):
            _ = job.run_time

    def test_invalid_transitions(self):
        job = Job(spec=spec())
        job.mark_submitted(0.0)
        with pytest.raises(ValueError):
            job.mark_completed(5.0)
        job.mark_started(1.0, ("n0",))
        with pytest.raises(ValueError):
            job.mark_started(2.0, ("n0",))

    def test_cancelled_is_terminal(self):
        job = Job(spec=spec())
        job.mark_submitted(0.0)
        job.mark_cancelled(3.0)
        assert job.state.is_terminal()

    def test_unique_ids(self):
        assert Job(spec=spec()).job_id != Job(spec=spec()).job_id

    def test_repr_mentions_name_and_state(self):
        job = Job(spec=spec(name="NEST"))
        assert "NEST" in repr(job)
        assert "PENDING" in repr(job)


class TestJobQueue:
    def make_pending(self, **kwargs):
        job = Job(spec=spec(**kwargs))
        job.mark_submitted(0.0)
        return job

    def test_fifo_within_same_priority(self):
        queue = JobQueue()
        first, second = self.make_pending(name="a"), self.make_pending(name="b")
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_priority_order(self):
        queue = JobQueue()
        low = self.make_pending(name="low", priority=0)
        high = self.make_pending(name="high", priority=10)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high

    def test_peek_does_not_remove(self):
        queue = JobQueue()
        job = self.make_pending()
        queue.push(job)
        assert queue.peek() is job
        assert len(queue) == 1

    def test_peek_empty(self):
        assert JobQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            JobQueue().pop()

    def test_only_pending_jobs_accepted(self):
        queue = JobQueue()
        job = self.make_pending()
        job.mark_started(1.0, ("n0",))
        with pytest.raises(ValueError):
            queue.push(job)

    def test_remove_specific_job(self):
        queue = JobQueue()
        a, b = self.make_pending(name="a"), self.make_pending(name="b")
        queue.push(a)
        queue.push(b)
        removed = queue.remove(a.job_id)
        assert removed is a
        assert queue.remove(999) is None
        assert [j.spec.name for j in queue] == ["b"]

    def test_iteration_in_scheduling_order(self):
        queue = JobQueue()
        low = self.make_pending(name="low", priority=1)
        high = self.make_pending(name="high", priority=5)
        queue.push(low)
        queue.push(high)
        assert [j.spec.name for j in queue.jobs()] == ["high", "low"]
        assert bool(queue)
