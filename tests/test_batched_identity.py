"""Byte-identity of the batched fast path against the single-step reference.

The tentpole guarantee of the fast-core refactor: ``ScenarioRunner`` with
``batching=True`` (the default) must produce *byte-identical* results to the
``batching=False`` reference loop — the same ``RunMetrics`` rows, the same
stored JSON in the metrics tier, and the same gzip artifact bytes in the
trace tier, across every scenario family.  ``benchmarks/bench_perf_core.py``
gates releases on the same property at sweep scale; this is the tier-1
subset.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import execute_run, summarise_run
from repro.campaign.spec import (
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    RunSpec,
    SyntheticWorkloadRef,
)
from repro.results.store import ResultStore
from repro.traces.store import TraceStore
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM, SERIAL

#: One representative cell per scenario family (each expands to a Serial and
#: a DROM run): the paper's in-situ pair, a heterogeneous resource request,
#: the high-priority use case, co-run interference, a non-malleable ablation
#: and a multi-job synthetic draw.
FAMILIES = {
    "insitu": dict(workload=InSituWorkloadRef()),
    "heterogeneous": dict(workload=InSituWorkloadRef(analytics_nodes=1)),
    "high-priority": dict(workload=HighPriorityWorkloadRef()),
    "interference": dict(workload=InSituWorkloadRef(), interference_factor=1.3),
    "non-malleable": dict(
        workload=InSituWorkloadRef(simulator_kwargs=(("malleable", False),))
    ),
    "synthetic": dict(
        workload=SyntheticWorkloadRef(
            spec=WorkloadSpec(njobs=4, iterations=400, work_scale=0.1), seed=7
        )
    ),
}

CASES = [
    pytest.param(
        RunSpec(index=0, scenario=scenario, **kwargs),
        id=f"{family}-{scenario}",
    )
    for family, kwargs in FAMILIES.items()
    for scenario in (SERIAL, DROM)
]


@pytest.mark.parametrize("run", CASES)
def test_batched_run_is_byte_identical_to_reference(run, tmp_path):
    reference = execute_run(run, trace=True, batching=False)
    batched = execute_run(run, trace=True, batching=True)

    # Compact campaign rows compare exactly (all floats bit-for-bit).
    row_ref = summarise_run(run, reference)
    row_fast = summarise_run(run, batched)
    assert row_ref == row_fast

    # Metrics tier: identical stored JSON bytes under the same content key.
    path_ref = ResultStore(tmp_path / "metrics-ref").put(row_ref)
    path_fast = ResultStore(tmp_path / "metrics-fast").put(row_fast)
    assert path_ref.name == path_fast.name
    assert path_ref.read_bytes() == path_fast.read_bytes()

    # Trace tier: identical gzip artifact bytes under the same content key.
    trace_ref = TraceStore(tmp_path / "traces-ref").put(run, reference)
    trace_fast = TraceStore(tmp_path / "traces-fast").put(run, batched)
    assert trace_ref.name == trace_fast.name
    assert trace_ref.read_bytes() == trace_fast.read_bytes()


@pytest.mark.parametrize(
    "run",
    [
        pytest.param(RunSpec(index=0, scenario=DROM, workload=InSituWorkloadRef()), id="drom")
    ],
)
def test_batched_tracer_views_match_reference(run):
    """Derived tracer views (not just serialised bytes) agree too."""
    reference = execute_run(run, trace=True, batching=False)
    batched = execute_run(run, trace=True, batching=True)
    assert batched.tracer.steps() == reference.tracer.steps()
    assert batched.tracer.mask_changes() == reference.tracer.mask_changes()
    assert batched.tracer.jobs() == reference.tracer.jobs()
    for job in reference.tracer.jobs():
        assert batched.tracer.span(job) == reference.tracer.span(job)
    assert batched.end_time == reference.end_time
