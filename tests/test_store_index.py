"""Crash-safety and retention tests of the store index (`repro.store.index`).

The index is derived metadata over the one-file-per-cell store roots; these
tests attack it the way production does — torn journal tails, schema
mismatches, files added or deleted behind its back, two processes appending
concurrently, gc while another object replays — and assert the invariant
that matters: the directory of entry files is ground truth, and every
anomaly self-heals into a scan that matches it exactly.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    RunSpec,
    SyntheticWorkloadRef,
    execute_run,
    run_campaign,
)
from repro.results import ResultStore, content_key
from repro.results.__main__ import main as results_cli
from repro.store import INDEX_SUFFIX, StoreIndex
from repro.traces import TraceStore
from repro.traces.__main__ import main as traces_cli
from repro.workload.generator import WorkloadSpec
from repro.workload.runner import DROM

SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)


def small_spec(name: str = "index-test", seeds=(0, 1)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        workloads=tuple(SyntheticWorkloadRef(spec=SMALL, seed=s) for s in seeds),
        clusters=(ClusterRef(nnodes=4),),
    )


@pytest.fixture(scope="module")
def traced_run():
    run = RunSpec(
        index=0,
        scenario=DROM,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )
    return run, execute_run(run, trace=True)


# -- a minimal fake tier over plain JSON files ----------------------------------------


def _describe(path):
    try:
        payload = json.loads(path.read_text())
        return payload.get("v"), {"n": payload.get("n")}
    except (OSError, ValueError):
        return None, None


def make_store(tmp_path, keys=("aa", "bb", "cc")):
    root = tmp_path / "cells"
    root.mkdir()
    for i, key in enumerate(keys):
        (root / f"{key}.json").write_text(json.dumps({"v": 1, "n": i}))
    return root


def make_index(root) -> StoreIndex:
    return StoreIndex(root, suffix=".json", store_version=1, describe=_describe)


class TestJournalCrashSafety:
    def test_scan_builds_sibling_journal(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        assert index.scan() == {"aa", "bb", "cc"}
        # The journal is a *sibling* of the root: the root directory stays
        # exactly the set of entry files (shard shipping, whole-dir compares).
        assert index.path == root.parent / f"cells{INDEX_SUFFIX}"
        assert index.path.exists()
        assert not (root / f"cells{INDEX_SUFFIX}").exists()
        assert index.stats["rebuilds"] == 1

    def test_second_scan_is_a_hit(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        assert index.scan() == {"aa", "bb", "cc"}
        assert index.stats["hits"] >= 1
        # A brand-new object replays the same journal and hits too.
        fresh = make_index(root)
        assert fresh.scan() == {"aa", "bb", "cc"}
        assert fresh.stats == {"hits": 1, "reconciles": 0, "rebuilds": 0}

    def test_truncated_tail_self_heals(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        raw = index.path.read_bytes()
        index.path.write_bytes(raw[:-10])  # tear the last record
        fresh = make_index(root)
        assert fresh.scan() == {"aa", "bb", "cc"}
        assert fresh.stats["rebuilds"] == 0  # header survived: no full rebuild

    def test_garbage_tail_is_skipped(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        with open(index.path, "ab") as stream:
            stream.write(b"\x00\xffnot json at all\n")
        fresh = make_index(root)
        assert fresh.scan() == {"aa", "bb", "cc"}

    def test_missing_journal_rebuilds(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        index.path.unlink()
        fresh = make_index(root)
        assert fresh.scan() == {"aa", "bb", "cc"}
        assert fresh.stats["rebuilds"] == 1

    def test_schema_bump_invalidates_journal(self, tmp_path):
        root = make_store(tmp_path)
        make_index(root).scan()
        bumped = StoreIndex(root, suffix=".json", store_version=2, describe=_describe)
        assert bumped.scan() == {"aa", "bb", "cc"}
        assert bumped.stats["rebuilds"] == 1

    def test_external_add_and_remove_reconcile(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        # Another process (or a human) mutates the directory behind the
        # journal's back: ground truth wins on the next scan.
        (root / "dd.json").write_text(json.dumps({"v": 1, "n": 9}))
        (root / "aa.json").unlink()
        assert index.scan() == {"bb", "cc", "dd"}
        assert index.live_entries()["dd"].summary == {"n": 9}
        assert index.stats["reconciles"] >= 1

    def test_stale_entry_is_redescribed(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        # Entry rewrites are always tmp + rename (the stores' atomic write
        # pattern) — the rename moves the directory mtime, which is what
        # invalidates the journal's freshness marker.
        tmp = root / ".bb.tmp"
        tmp.write_text(json.dumps({"v": 1, "n": 77, "pad": "x" * 64}))
        tmp.replace(root / "bb.json")
        index.scan()
        assert index.live_entries()["bb"].summary == {"n": 77}

    def test_unreadable_file_still_scans_but_never_renders(self, tmp_path):
        root = make_store(tmp_path)
        (root / "zz.json").write_bytes(b"\x00 not json")
        index = make_index(root)
        assert "zz" in index.scan()
        assert index.live_entries()["zz"].summary is None


def _put_worker(root: str, keys: list[str]) -> None:
    index = StoreIndex(root, suffix=".json", store_version=1, describe=_describe)
    for i, key in enumerate(keys):
        path = os.path.join(root, f"{key}.json")
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps({"v": 1, "n": i}))
        st = os.stat(path)
        index.record_put(
            key, size=st.st_size, mtime_ns=st.st_mtime_ns, version=1, summary={"n": i}
        )


class TestConcurrentWriters:
    def test_two_process_puts_interleave_whole_records(self, tmp_path):
        root = make_store(tmp_path, keys=())
        make_index(root).scan()  # seed a valid journal both writers append to
        ctx = multiprocessing.get_context("fork")
        groups = [
            [f"a{i:02d}" for i in range(20)],
            [f"b{i:02d}" for i in range(20)],
        ]
        procs = [ctx.Process(target=_put_worker, args=(str(root), g)) for g in groups]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        fresh = make_index(root)
        assert fresh.scan() == set(groups[0]) | set(groups[1])
        # Every surviving journal line is a whole JSON record (O_APPEND
        # interleaves records, never bytes).
        for line in fresh.path.read_text().splitlines():
            json.loads(line)


class TestRetentionAndCompaction:
    def test_lru_spares_recently_read_keys(self, tmp_path):
        root = make_store(tmp_path)  # aa, bb, cc in put order
        index = make_index(root)
        index.scan()
        index.note_read("aa")
        index.flush_reads()
        size = (root / "bb.json").stat().st_size
        # Budget for one entry: the two least-recently-active go; "aa" was
        # just read, so it survives.
        doomed = index.retention_doomed(lru_bytes=size + 1)
        assert set(doomed) == {"bb", "cc"}

    def test_max_age_uses_file_mtime(self, tmp_path):
        root = make_store(tmp_path)
        old = (root / "aa.json").stat().st_mtime_ns
        os.utime(root / "aa.json", ns=(old - 10**12, old - 10**12))  # age 1000 s
        index = make_index(root)
        index.scan()
        now = (root / "bb.json").stat().st_mtime_ns / 1e9
        assert index.retention_doomed(max_age=500.0, now=now) == ["aa"]
        assert index.retention_doomed(max_age=2000.0, now=now) == []

    def test_exclude_keys_do_not_count_against_budget(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        assert index.retention_doomed(lru_bytes=0, exclude={"aa", "bb", "cc"}) == []

    def test_compaction_keeps_state_and_lru_order(self, tmp_path):
        root = make_store(tmp_path)
        index = make_index(root)
        index.scan()
        for _ in range(120):  # inflate the journal well past the floor
            index.note_read("bb")
            index.flush_reads()
        before = len(index.path.read_text().splitlines())
        assert before > 64
        # The next maintenance write compacts in place.
        (root / "dd.json").write_text(json.dumps({"v": 1, "n": 3}))
        st = (root / "dd.json").stat()
        index.record_put(
            "dd", size=st.st_size, mtime_ns=st.st_mtime_ns, version=1, summary={"n": 3}
        )
        after = len(index.path.read_text().splitlines())
        assert after < before
        fresh = make_index(root)
        assert fresh.scan() == {"aa", "bb", "cc", "dd"}
        # "bb" was the hot key before compaction; LRU eviction under a
        # one-entry budget must doom the cold keys first.
        fresh.note_read("bb")
        fresh.flush_reads()
        size = (root / "aa.json").stat().st_size
        doomed = fresh.retention_doomed(lru_bytes=2 * size)
        assert "bb" not in doomed

    def test_gc_under_replay_never_loses_ground_truth(self, tmp_path):
        """One object gc-removes entries while a second replays the same
        journal: the second's next scan converges on the directory."""
        root = make_store(tmp_path)
        writer, reader = make_index(root), make_index(root)
        writer.scan()
        reader.scan()
        (root / "aa.json").unlink()
        writer.record_remove("aa")
        assert reader.scan() == {"bb", "cc"}
        assert (root / "bb.json").exists() and (root / "cc.json").exists()


class TestResultStoreIntegration:
    def test_warm_campaign_is_byte_identical_without_index(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(spec, store=store)
        baseline = {
            p.name: p.read_bytes() for p in sorted(store.root.glob("*.json"))
        }
        index_path = store.index.path
        assert index_path.exists()
        index_path.unlink()  # the rebuild smoke: index gone entirely
        warm = run_campaign(spec, store=ResultStore(store.root))
        assert warm.executed == 0
        assert warm.rows == cold.rows
        assert {
            p.name: p.read_bytes() for p in sorted(store.root.glob("*.json"))
        } == baseline
        assert index_path.exists()  # scan re-created it

    def test_summaries_match_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(small_spec(), store=store)
        rows = store.summaries()
        assert [r.key for r in rows] == store.keys()
        by_key = {e.key: e for e in store.entries()}
        for row in rows:
            assert row.summary["scenario"] == by_key[row.key].contents["scenario"]
            assert row.summary["total_run_time"] == pytest.approx(
                by_key[row.key].metrics["total_run_time"]
            )

    def test_results_cli_limit_prefix_and_retention_gc(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        run_campaign(small_spec(), store=store)
        keys = store.keys()
        assert results_cli(["ls", "--store", str(store.root), "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert keys[0][:12] in out and keys[1][:12] not in out
        assert results_cli(
            ["ls", "--store", str(store.root), "--prefix", keys[-1][:8]]
        ) == 0
        out = capsys.readouterr().out
        assert keys[-1][:12] in out
        # A zero-byte LRU budget dooms everything; dry run touches nothing.
        assert results_cli(["gc", "--store", str(store.root), "--lru", "0"]) == 0
        assert len(store.keys()) == len(keys)
        assert results_cli(
            ["gc", "--store", str(store.root), "--lru", "0", "--delete"]
        ) == 0
        assert ResultStore(store.root).keys() == []

    def test_store_gc_max_age(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(small_spec(seeds=(0,)), store=store)
        key = store.keys()[0]
        path = store.path_for(key)
        st = path.stat()
        os.utime(path, ns=(st.st_mtime_ns - 10**12, st.st_mtime_ns - 10**12))
        fresh = ResultStore(store.root)
        # utime doesn't move the directory mtime, so force the index to
        # re-describe the aged file (a reconcile or rebuild would too).
        fresh.index.path.unlink()
        doomed = fresh.gc(max_age=500.0, dry_run=True)
        assert key in doomed


class TestTraceStoreIntegration:
    def test_windowed_query_equals_full_inflation(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path / "traces", segment_steps=8)
        store.put(run, result)
        entry = store.get(run)
        steps = list(result.tracer)
        assert len(entry.segments) > 1
        lo, hi = steps[3].start, steps[9].end
        expected = [s for s in steps if s.start <= hi and s.end >= lo]
        assert entry.steps_between(lo, hi) == expected
        assert 0 < entry.segments_inflated < len(entry.segments)
        # Fully inflating afterwards gives the same records.
        assert [
            s for s in entry.tracer if s.start <= hi and s.end >= lo
        ] == expected

    def test_reader_windowed_queries_lazy_then_full(self, traced_run, tmp_path):
        from repro.traces import TraceReader

        run, result = traced_run
        store = TraceStore(tmp_path / "traces", segment_steps=8)
        store.put(run, result)
        entry = store.get(run)
        reader = TraceReader(entry)
        live = TraceReader(result.tracer)
        steps = list(result.tracer)
        lo, hi = steps[0].start, steps[5].end
        job = steps[0].job
        assert reader.steps_between(lo, hi) == live.steps_between(lo, hi)
        assert reader.ipc_series_between(lo, hi, job) == live.ipc_series_between(
            lo, hi, job
        )
        assert entry.segments_inflated < len(entry.segments)

    def test_head_steps_inflates_leading_segments_only(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path / "traces", segment_steps=8)
        store.put(run, result)
        entry = store.get(run)
        assert entry.head_steps(5) == list(result.tracer)[:5]
        assert entry.segments_inflated == 1

    def test_truncated_artifact_is_a_miss(self, traced_run, tmp_path):
        run, result = traced_run
        store = TraceStore(tmp_path / "traces", segment_steps=8)
        path = store.put(run, result)
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])  # header member intact, body short
        assert TraceStore(store.root, segment_steps=8).get(run) is None

    def test_traces_cli_head_limit_and_paraver_companions(
        self, traced_run, tmp_path, capsys
    ):
        run, result = traced_run
        store = TraceStore(tmp_path / "traces")
        store.put(run, result)
        key = content_key(run)
        assert traces_cli(["ls", "--store", str(store.root), "--limit", "1"]) == 0
        assert key[:12] in capsys.readouterr().out
        assert traces_cli(
            ["show", key[:12], "--store", str(store.root), "--head", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 of" in out and "segment(s) inflated" in out
        out_dir = tmp_path / "export"
        assert traces_cli(
            ["export", key[:12], "--store", str(store.root), "--out", str(out_dir)]
        ) == 0
        capsys.readouterr()
        stem = f"{run.scenario}-{key[:12]}"
        assert (out_dir / f"{stem}.prv").exists()
        pcf = (out_dir / f"{stem}.pcf").read_text()
        row = (out_dir / f"{stem}.row").read_text()
        assert "EVENT_TYPE" in pcf and "VALUES" in pcf
        assert row.startswith("LEVEL CPU SIZE")

    def test_trace_gc_lru_flag(self, traced_run, tmp_path, capsys):
        run, result = traced_run
        store = TraceStore(tmp_path / "traces")
        store.put(run, result)
        assert traces_cli(
            ["gc", "--store", str(store.root), "--lru", "0", "--delete"]
        ) == 0
        capsys.readouterr()
        assert TraceStore(store.root).keys() == []
