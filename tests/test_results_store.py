"""Tests of the content-addressed result store and memoised campaigns."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ClusterRef,
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    PolicyRef,
    RunSpec,
    SchedulerRef,
    SyntheticWorkloadRef,
    run_campaign,
)
from repro.results import ResultStore, content_key, spec_contents, spec_from_contents
from repro.results.__main__ import main as results_cli
from repro.workload.generator import SizeMixEntry, WorkloadSpec, heavy_tailed_size_mix
from repro.workload.runner import DROM, SERIAL

#: Cheap synthetic family — small enough that a grid of them stays test-sized.
SMALL = WorkloadSpec(njobs=2, mean_interarrival=90.0, work_scale=0.04, iterations=12)

#: Heterogeneous variant: per-job node requests drawn from a size mix.
SMALL_HETERO = dataclasses.replace(
    SMALL, size_mix=heavy_tailed_size_mix(4), arrival="bursty", burst_size=2
)


def small_spec(nworkloads: int = 1, **kwargs) -> CampaignSpec:
    defaults = dict(
        name="store-test",
        workloads=tuple(
            SyntheticWorkloadRef(spec=SMALL, seed=i) for i in range(nworkloads)
        ),
        clusters=(ClusterRef(nnodes=4),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def a_run(**kwargs) -> RunSpec:
    defaults = dict(
        index=0,
        scenario=DROM,
        workload=SyntheticWorkloadRef(spec=SMALL, seed=0),
        cluster=ClusterRef(nnodes=4),
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestContentKey:
    def test_index_is_excluded(self):
        run = a_run()
        assert content_key(run) == content_key(dataclasses.replace(run, index=99))

    def test_every_content_field_is_included(self):
        run = a_run()
        variants = [
            dataclasses.replace(run, scenario=SERIAL),
            dataclasses.replace(run, workload=SyntheticWorkloadRef(spec=SMALL, seed=1)),
            dataclasses.replace(run, cluster=ClusterRef(nnodes=2)),
            dataclasses.replace(run, policy=PolicyRef("equipartition")),
            dataclasses.replace(run, interference_factor=1.5),
            dataclasses.replace(run, scheduler=SchedulerRef(backfill=True)),
            dataclasses.replace(
                run, scheduler=SchedulerRef(node_policy="least-allocated")
            ),
        ]
        keys = {content_key(v) for v in variants}
        assert len(keys) == len(variants)
        assert content_key(run) not in keys

    def test_interference_no_longer_aliases_run_id(self):
        # Regression: two cells differing only in interference used to share
        # a run_id, which would silently alias cache entries.
        run = a_run()
        slowed = dataclasses.replace(run, interference_factor=1.5)
        assert run.run_id != slowed.run_id

    def test_scheduler_in_run_id(self):
        run = a_run()
        backfill = dataclasses.replace(run, scheduler=SchedulerRef(backfill=True))
        assert run.run_id != backfill.run_id

    def test_key_is_stable_across_processes(self):
        # A fixed spec must hash identically forever (the persistence
        # contract); pin one known key shape rather than a magic value.
        key = content_key(a_run())
        assert len(key) == 64
        assert key == content_key(a_run())

    def test_resource_requests_enter_the_hash(self):
        # The tentpole's aliasing hazard: the same family with and without a
        # size mix (or with a shrunk analytics job) computes different
        # simulations and must occupy different cells.
        uniform = a_run()
        hetero = a_run(workload=SyntheticWorkloadRef(spec=SMALL_HETERO, seed=0))
        assert content_key(uniform) != content_key(hetero)
        insitu = a_run(workload=InSituWorkloadRef("NEST", "Conf. 1", "Pils", "Conf. 2"))
        shrunk = a_run(
            workload=InSituWorkloadRef(
                "NEST", "Conf. 1", "Pils", "Conf. 2", analytics_nodes=1
            )
        )
        assert content_key(insitu) != content_key(shrunk)
        assert insitu.run_id != shrunk.run_id

    def test_inert_burst_size_does_not_split_cells(self):
        # Regression: for non-bursty arrivals burst_size changes nothing the
        # run computes, so it must not change the content key either.
        loud = a_run(
            workload=SyntheticWorkloadRef(
                spec=dataclasses.replace(SMALL, burst_size=8), seed=0
            )
        )
        assert content_key(loud) == content_key(a_run())

    @pytest.mark.parametrize(
        "workload",
        [
            SyntheticWorkloadRef(spec=SMALL, seed=3),
            SyntheticWorkloadRef(spec=SMALL_HETERO, seed=3),
            SyntheticWorkloadRef(
                spec=dataclasses.replace(
                    SMALL,
                    size_mix=(SizeMixEntry(nodes=2, min_nodes=1, max_nodes=4),),
                ),
                seed=1,
            ),
            InSituWorkloadRef(
                "NEST", "Conf. 1", "Pils", "Conf. 2",
                simulator_kwargs=(("malleable", False),),
            ),
            InSituWorkloadRef("NEST", "Conf. 1", "Pils", "Conf. 2",
                              analytics_nodes=1),
            HighPriorityWorkloadRef(second_submit=60.0),
        ],
    )
    def test_spec_contents_round_trip(self, workload):
        run = a_run(
            workload=workload,
            policy=PolicyRef("socket"),
            interference_factor=1.2,
            scheduler=SchedulerRef(backfill=True, node_policy="first-fit"),
        )
        # JSON round trip too: stored contents are parsed back from disk.
        contents = json.loads(json.dumps(spec_contents(run)))
        rebuilt = spec_from_contents(contents, index=run.index)
        assert rebuilt == run
        assert content_key(rebuilt) == content_key(run)

    def test_unknown_workload_type_rejected(self):
        with pytest.raises(ValueError, match="unknown workload reference"):
            spec_from_contents(
                {
                    "scenario": DROM,
                    "workload": {"type": "Mystery"},
                    "cluster": {"nnodes": 2, "kind": "mn3", "sockets": 2,
                                "cores_per_socket": 8},
                    "policy": None,
                    "scheduler": {"backfill": False, "node_policy": None},
                    "interference_factor": None,
                }
            )


class TestResultStore:
    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get(a_run()) is None

    def test_put_get_round_trip_rebinds_index(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_campaign(small_spec(), store=store)
        row = result.rows[1]
        moved = dataclasses.replace(row.run, index=42)
        cached = store.get(moved)
        assert cached is not None
        assert cached.run.index == 42
        assert cached == dataclasses.replace(row, run=moved)

    def test_entries_and_contains(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(small_spec(), store=store)
        runs = small_spec().expand()
        assert all(run in store for run in runs)
        entries = list(store.entries())
        assert len(entries) == len(store) == len(runs)
        assert [e.key for e in entries] == sorted(e.key for e in entries)
        # An entry rebuilds its spec and row.
        assert entries[0].run in store
        assert entries[0].row().workload_name.startswith("synthetic")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run = small_spec().expand()[0]
        run_campaign(small_spec(), store=store)
        store.path_for(content_key(run)).write_text("{not json")
        assert store.get(run) is None

    def test_old_format_version_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run = small_spec().expand()[0]
        run_campaign(small_spec(), store=store)
        path = store.path_for(content_key(run))
        payload = json.loads(path.read_text())
        payload["version"] = 0
        path.write_text(json.dumps(payload))
        assert store.get(run) is None
        # ...and invisible to listing/reporting, like any other miss.
        assert content_key(run) not in {e.key for e in store.entries()}
        with pytest.raises(ValueError, match="store format"):
            store.load(content_key(run))

    def test_malformed_payload_is_a_miss_not_a_crash(self, tmp_path):
        # Version matches but the metrics payload is broken (truncated write,
        # hand edit): the warm campaign must re-simulate, not abort.
        store = ResultStore(tmp_path)
        spec = small_spec()
        run = spec.expand()[0]
        run_campaign(spec, store=store)
        path = store.path_for(content_key(run))
        payload = json.loads(path.read_text())
        del payload["metrics"]
        path.write_text(json.dumps(payload))
        assert store.get(run) is None
        result = run_campaign(spec, store=store)
        assert result.executed == 1 and result.cache_hits == spec.nruns - 1

    def test_gc_collects_corrupt_and_matching(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(small_spec(), store=store)
        (tmp_path / "deadbeef.json").write_text("{not json")
        doomed = store.gc(dry_run=True)
        assert doomed == ["deadbeef"]
        assert len(store) == 3  # dry run removed nothing
        removed = store.gc(
            predicate=lambda entry: entry.contents["scenario"] == SERIAL
        )
        assert "deadbeef" in removed and len(removed) == 2
        assert len(store) == 1

    def test_merge_is_the_sharding_path(self, tmp_path):
        # Two hosts each simulate half the grid; the union is the campaign.
        spec = small_spec(nworkloads=2)
        runs = spec.expand()
        shard_a, shard_b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        run_campaign(small_spec(nworkloads=1), store=shard_a)
        run_campaign(spec, store=shard_b)
        merged = shard_a.merge(shard_b)
        assert merged == 2  # only the cells shard_a was missing
        assert len(shard_a) == len(runs)
        warm = run_campaign(spec, store=shard_a)
        assert warm.executed == 0 and warm.cache_hits == spec.nruns


class TestMemoisedCampaign:
    def test_cold_then_warm(self, tmp_path):
        spec = small_spec(nworkloads=2)
        store = ResultStore(tmp_path)
        cold = run_campaign(spec, store=store)
        warm = run_campaign(spec, store=store)
        assert cold.executed == spec.nruns and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == spec.nruns
        assert warm.rows == cold.rows
        assert warm.to_table() == cold.to_table()

    def test_warm_pooled_equals_cold_serial(self, tmp_path):
        spec = small_spec(nworkloads=2)
        store = ResultStore(tmp_path)
        cold = run_campaign(spec, workers=1, store=store)
        warm = run_campaign(spec, workers=2, store=store)
        assert warm.rows == cold.rows

    def test_partial_overlap_executes_only_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(small_spec(nworkloads=1), store=store)
        grown = small_spec(nworkloads=2)
        result = run_campaign(grown, store=store)
        assert result.cache_hits == 2  # the seed-0 serial+drom cells
        assert result.executed == grown.nruns - 2
        # And the store-served campaign equals a from-scratch one.
        fresh = run_campaign(grown)
        assert result.rows == fresh.rows

    def test_no_store_still_counts_executions(self):
        result = run_campaign(small_spec())
        assert result.executed == len(result.rows)
        assert result.cache_hits == 0


class TestResultsCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_campaign(small_spec(), store=store)
        return store

    def test_ls(self, populated, capsys):
        assert results_cli(["ls", "--store", str(populated.root)]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert SERIAL in out and DROM in out
        assert "synthetic[seed=0]" in out

    def test_ls_empty_store(self, tmp_path, capsys):
        assert results_cli(["ls", "--store", str(tmp_path / "void")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_show_by_prefix(self, populated, capsys):
        key = populated.keys()[0]
        assert results_cli(["show", key[:10], "--store", str(populated.root)]) == 0
        out = capsys.readouterr().out
        assert f"key       {key}" in out
        assert "Response (s)" in out

    def test_show_unknown_key(self, populated, capsys):
        assert results_cli(["show", "ffff", "--store", str(populated.root)]) == 1
        assert "no entry" in capsys.readouterr().err

    def test_diff_identical_and_divergent(self, populated, tmp_path, capsys):
        other = ResultStore(tmp_path / "other")
        other.merge(populated)
        assert results_cli(["diff", str(populated.root), str(other.root)]) == 0
        assert "identical" in capsys.readouterr().out
        # Make the stores diverge: drop one cell from the copy.
        other.remove(other.keys()[0])
        assert results_cli(["diff", str(populated.root), str(other.root)]) == 1
        assert "only in A" in capsys.readouterr().out

    def test_gc_dry_run_then_delete(self, populated, capsys):
        root = str(populated.root)
        assert results_cli(["gc", "--store", root, "--all"]) == 0
        assert "would remove 2" in capsys.readouterr().out
        assert len(populated) == 2
        assert results_cli(["gc", "--store", root, "--all", "--delete"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert len(populated) == 0

    def test_gc_scenario_filter(self, populated, capsys):
        root = str(populated.root)
        assert results_cli(
            ["gc", "--store", root, "--scenario", SERIAL, "--delete"]
        ) == 0
        assert len(populated) == 1
        remaining = next(populated.entries())
        assert remaining.contents["scenario"] == DROM

    def test_merge_many_shards(self, tmp_path, capsys):
        # The shard transport: N shard stores union into one target store.
        spec = small_spec(nworkloads=2)
        shard_roots = []
        for i, shard_spec in enumerate(spec.shard(2)):
            store = ResultStore(tmp_path / f"shard-{i}")
            run_campaign(shard_spec, store=store)
            shard_roots.append(str(store.root))
        out_root = tmp_path / "merged"
        assert results_cli(["merge", str(out_root)] + shard_roots) == 0
        printed = capsys.readouterr().out
        assert f"{len(ResultStore(out_root))} cell(s)" in printed
        merged = ResultStore(out_root)
        assert len(merged) == spec.nruns
        warm = run_campaign(spec, store=merged)
        assert warm.executed == 0 and warm.cache_hits == spec.nruns

    def test_merge_rejects_missing_shard_roots(self, populated, tmp_path, capsys):
        # Regression: a typo'd shard path must fail loudly, not merge nothing.
        code = results_cli(
            ["merge", str(tmp_path / "out"), str(populated.root),
             str(tmp_path / "no-such-shard")]
        )
        assert code == 1
        assert "does not exist" in capsys.readouterr().err
        assert len(ResultStore(tmp_path / "out")) == 0  # nothing half-merged

    def test_merge_is_idempotent(self, populated, tmp_path, capsys):
        out = tmp_path / "merged"
        root = str(populated.root)
        assert results_cli(["merge", str(out), root]) == 0
        assert results_cli(["merge", str(out), root]) == 0
        assert "0 of 2" in capsys.readouterr().out
        assert len(ResultStore(out)) == len(populated)


class TestSchemaVersioning:
    """The v1 → v2 hash-input bump: stale cells are invalid, never aliased."""

    def _downgrade(self, store: ResultStore, key: str) -> None:
        path = store.path_for(key)
        payload = json.loads(path.read_text())
        payload["version"] = 1
        path.write_text(json.dumps(payload))

    def test_v1_cell_is_never_a_v2_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        run_campaign(spec, store=store)
        for key in store.keys():
            self._downgrade(store, key)
        # Regression: a v1 entry at the right path must read as a miss...
        assert all(store.get(run) is None for run in spec.expand())
        # ...so a warm campaign re-simulates everything instead of aliasing.
        rerun = run_campaign(spec, store=store)
        assert rerun.executed == spec.nruns and rerun.cache_hits == 0

    def test_merge_never_imports_and_never_keeps_stale_entries(self, tmp_path):
        """Regression: cells whose contents survived the schema bump keep
        their key, so a pre-bump shard must neither ship v1 files nor shadow
        the other shard's current entry."""
        spec = small_spec()
        stale = ResultStore(tmp_path / "stale")
        run_campaign(spec, store=stale)
        for key in stale.keys():
            self._downgrade(stale, key)
        fresh = ResultStore(tmp_path / "fresh")
        run_campaign(spec, store=fresh)

        # v1 sources are never imported...
        merged = ResultStore(tmp_path / "merged")
        assert merged.merge(stale) == 0 and len(merged) == 0
        # ...and a v1 local file does not block the current entry.
        assert stale.merge(fresh) == spec.nruns
        warm = run_campaign(spec, store=stale)
        assert warm.executed == 0 and warm.cache_hits == spec.nruns

    def test_gc_collects_previous_schema_version(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = small_spec()
        run_campaign(spec, store=store)
        downgraded = store.keys()[0]
        self._downgrade(store, downgraded)
        # No predicate needed: old-format entries are always candidates.
        doomed = store.gc(dry_run=True)
        assert doomed == [downgraded]
        removed = store.gc()
        assert removed == [downgraded]
        assert downgraded not in store.keys()
        assert len(store) == spec.nruns - 1
