"""Tests of the DROM-enabled task/affinity plugin (Figure 2's flow)."""

from __future__ import annotations

import pytest

from repro.core.drom import attach_admin
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology
from repro.slurm.task_affinity import TaskAffinityPlugin


@pytest.fixture
def plugin_setup():
    node = NodeTopology.marenostrum3()
    shmem = NodeSharedMemory(node)
    admin = attach_admin(shmem)
    plugin = TaskAffinityPlugin(node, admin, drom_enabled=True)
    return node, shmem, admin, plugin


@pytest.fixture
def stock_plugin_setup():
    node = NodeTopology.marenostrum3()
    shmem = NodeSharedMemory(node)
    admin = attach_admin(shmem)
    plugin = TaskAffinityPlugin(node, admin, drom_enabled=False)
    return node, shmem, admin, plugin


class TestLaunchRequest:
    def test_first_job_gets_requested_cpus(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plan = plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        assert len(plan.new_tasks) == 1
        assert plan.new_tasks[0].mask == CpuSet.from_range(0, 16)
        assert plan.running_updates == {}
        assert plugin.local_jobs() == [1]

    def test_second_job_triggers_repartition(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plan1 = plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(1, 0, pid=101)
        plan2 = plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=16)
        # Both jobs end up with half the node, on separate sockets.
        assert plan2.new_tasks[0].mask.count() == 8
        assert 1 in plan2.running_updates
        pid, new_mask = plan2.running_updates[1][0]
        assert pid == 101
        assert new_mask.count() == 8
        assert new_mask.isdisjoint(plan2.new_tasks[0].mask)

    def test_small_second_job_takes_only_its_request(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(1, 0, pid=101)
        plan2 = plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=2)
        assert plan2.new_tasks[0].mask.count() == 2
        assert plan2.running_updates[1][0][1].count() == 14

    def test_same_job_twice_rejected(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=4)
        with pytest.raises(ValueError):
            plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=4)

    def test_stock_plugin_requires_free_cpus(self, stock_plugin_setup):
        _, _, _, plugin = stock_plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        with pytest.raises(ValueError):
            plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=16)

    def test_stock_plugin_packs_when_space_exists(self, stock_plugin_setup):
        _, _, _, plugin = stock_plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=10)
        plan = plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=4)
        assert plan.new_tasks[0].mask.count() == 4
        assert plan.new_tasks[0].mask.isdisjoint(plugin.job_mask(1))
        assert plan.running_updates == {}


class TestPreLaunch:
    def test_pre_launch_registers_in_shmem(self, plugin_setup):
        _, shmem, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=2, cpus_per_task=8)
        result0 = plugin.pre_launch(1, 0, pid=101)
        result1 = plugin.pre_launch(1, 1, pid=102)
        assert shmem.has(101) and shmem.has(102)
        assert CpuSet.parse(result0.next_environ["DLB_DROM_PREINIT_MASK"]).count() == 8
        assert shmem.get_mask(101).isdisjoint(shmem.get_mask(102))

    def test_pre_launch_applies_running_updates(self, plugin_setup):
        """The running job's shrink reaches the DLB shared memory before the
        new task is pre-initialised (the paper's step 2 then 2.1)."""
        _, shmem, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(1, 0, pid=101)
        plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(2, 0, pid=201)
        assert shmem.get_mask(101).count() == 8
        assert shmem.get_mask(201).count() == 8
        assert shmem.oversubscribed_cpus().is_empty()
        # the running process discovers the shrink at its next poll
        assert shmem.poll(101).count() == 8


class TestPostTermAndRelease:
    def test_post_term_cleans_entry(self, plugin_setup):
        _, shmem, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=8)
        plugin.pre_launch(1, 0, pid=101)
        plugin.post_term(1, 0)
        assert not shmem.has(101)

    def test_post_term_without_pid_is_noop(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=8)
        plugin.post_term(1, 0)  # pid never assigned

    def test_release_resources_expands_survivor(self, plugin_setup):
        """Figure 2 step 5: when the CPU owner finishes, the co-allocated job
        expands to keep the node fully utilised."""
        _, shmem, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(1, 0, pid=101)
        plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=16)
        plugin.pre_launch(2, 0, pid=201)
        # job 1 finishes
        plugin.post_term(1, 0)
        new_masks = plugin.release_resources(1)
        assert new_masks == {201: CpuSet.from_range(0, 16)}
        assert shmem.get_mask(201) == CpuSet.from_range(0, 16)
        assert plugin.local_jobs() == [2]

    def test_release_resources_last_job_is_noop(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=8)
        plugin.pre_launch(1, 0, pid=101)
        plugin.post_term(1, 0)
        assert plugin.release_resources(1) == {}

    def test_release_unknown_job_is_noop(self, plugin_setup):
        _, _, _, plugin = plugin_setup
        assert plugin.release_resources(42) == {}

    def test_release_does_not_expand_non_malleable_jobs(self, plugin_setup):
        _, shmem, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=8)
        plugin.pre_launch(1, 0, pid=101)
        plugin.launch_request(job_id=2, ntasks=1, cpus_per_task=8, malleable=False)
        plugin.pre_launch(2, 0, pid=201)
        plugin.post_term(1, 0)
        new_masks = plugin.release_resources(1)
        assert new_masks == {}
        assert shmem.get_mask(201).count() == 8


class TestMaskAccounting:
    def test_used_and_free_masks(self, plugin_setup):
        node, _, _, plugin = plugin_setup
        plugin.launch_request(job_id=1, ntasks=1, cpus_per_task=6)
        assert plugin.used_mask().count() == 6
        assert plugin.free_mask().count() == node.ncpus - 6
        assert plugin.job_mask(1).count() == 6
