"""Tests of the OmpSs runtime and of the MPI/PMPI interception layer."""

from __future__ import annotations

import pytest

from repro.core.dlb import DlbProcess
from repro.core.flags import DromFlags
from repro.cpuset.mask import CpuSet
from repro.runtime.mpi import DlbPmpiInterceptor, MpiCall, MpiCommunicator
from repro.runtime.ompss import OmpSsRuntime


class TestOmpSsRuntime:
    def test_workers_match_mask(self):
        runtime = OmpSsRuntime(CpuSet.from_range(0, 4))
        assert runtime.num_workers == 4

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            OmpSsRuntime(CpuSet.empty())

    def test_tasks_round_robin_over_workers(self):
        runtime = OmpSsRuntime(CpuSet([0, 1]))
        records = runtime.run_tasks(4)
        assert [r.worker_cpu for r in records] == [0, 1, 0, 1]
        assert all(r.team_size == 2 for r in records)

    def test_negative_tasks_rejected(self):
        runtime = OmpSsRuntime(CpuSet([0]))
        with pytest.raises(ValueError):
            runtime.run_tasks(-1)

    def test_apply_mask_resizes_pool_immediately(self):
        runtime = OmpSsRuntime(CpuSet.from_range(0, 4))
        runtime.apply_mask(CpuSet([6]))
        assert runtime.num_workers == 1
        assert runtime.run_tasks(2)[0].worker_cpu == 6
        with pytest.raises(ValueError):
            runtime.apply_mask(CpuSet.empty())

    def test_poll_without_dlb_is_noop(self):
        runtime = OmpSsRuntime(CpuSet([0, 1]))
        assert runtime.poll_malleability() is False

    def test_dlb_poll_at_scheduling_point(self, shmem, admin):
        """The native OmpSs+DLB integration: the pool resizes at the next
        task-scheduling point after a DROM change."""
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 8), environ={})
        dlb.init()
        runtime = OmpSsRuntime(CpuSet.from_range(0, 8), dlb=dlb)
        seen = []
        runtime.on_update = seen.append
        runtime.run_tasks(4)
        admin.set_process_mask(1, CpuSet.from_range(0, 2), DromFlags.STEAL)
        records = runtime.run_tasks(4)
        assert runtime.num_workers == 2
        assert {r.worker_cpu for r in records} == {0, 1}
        assert runtime.updates_applied == 1
        assert seen == [CpuSet.from_range(0, 2)]


class TestMpiCommunicator:
    def test_size_and_ranks(self):
        comm = MpiCommunicator(size=4)
        assert comm.rank(2).rank == 2
        assert len(comm.ranks()) == 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MpiCommunicator(size=0)

    def test_send_recv_matching(self):
        comm = MpiCommunicator(size=2)
        comm.rank(0).send({"x": 1}, dest=1, tag=7)
        assert comm.rank(1).recv(source=0, tag=7) == {"x": 1}

    def test_recv_without_send_raises(self):
        comm = MpiCommunicator(size=2)
        with pytest.raises(RuntimeError):
            comm.rank(1).recv(source=0)

    def test_collectives_run_hooks(self):
        comm = MpiCommunicator(size=2)
        calls = []
        comm.pmpi.register(before=lambda rank, call: calls.append((rank.rank, call)))
        comm.rank(0).barrier()
        comm.rank(1).bcast("data")
        comm.rank(0).allreduce(3.0)
        assert (0, MpiCall.BARRIER) in calls
        assert (1, MpiCall.BCAST) in calls
        assert (0, MpiCall.ALLREDUCE) in calls
        assert comm.pmpi.intercepted_calls == 3

    def test_before_and_after_hooks_order(self):
        comm = MpiCommunicator(size=1)
        order = []
        comm.pmpi.register(
            before=lambda r, c: order.append("before"),
            after=lambda r, c: order.append("after"),
        )
        comm.rank(0).barrier()
        assert order == ["before", "after"]

    def test_calls_made_counter(self):
        comm = MpiCommunicator(size=1)
        rank = comm.rank(0)
        rank.init()
        rank.barrier()
        rank.wait()
        rank.finalize()
        assert rank.calls_made == 4


class TestDlbPmpiInterceptor:
    def test_mask_forwarded_at_mpi_call(self, shmem, admin):
        """Section 4.3: MPI interception is a polling point; the mask change
        reaches the shared-memory runtime at the next MPI call."""
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 8), environ={})
        dlb.init()
        applied = []
        comm = MpiCommunicator(size=2)
        interceptor = DlbPmpiInterceptor(dlb, applied.append)
        interceptor.install(comm, rank_index=0)

        comm.rank(0).barrier()
        assert applied == []

        admin.set_process_mask(1, CpuSet.from_range(0, 4))
        comm.rank(1).barrier()   # other rank's calls do not poll this process
        assert applied == []
        comm.rank(0).barrier()
        assert applied == [CpuSet.from_range(0, 4)]
        assert interceptor.updates_applied == 1

    def test_direct_poll(self, shmem, admin):
        dlb = DlbProcess(pid=1, shmem=shmem, mask=CpuSet.from_range(0, 8), environ={})
        dlb.init()
        applied = []
        interceptor = DlbPmpiInterceptor(dlb, applied.append)
        assert interceptor.poll() is False
        admin.set_process_mask(1, CpuSet.from_range(0, 2))
        assert interceptor.poll() is True
        assert applied == [CpuSet.from_range(0, 2)]
