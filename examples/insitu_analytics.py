#!/usr/bin/env python
"""Use case 1 — In-situ analytics next to a running neuro-simulation.

Reproduces the paper's first use case on the simulated two-node MN3
partition: a NEST simulation owns both nodes when a small Pils analytics job
is submitted.  The Serial scenario queues the analytics until the simulation
finishes; the DROM scenario shrinks the simulation and runs the analytics
immediately.

Run with::

    python examples/insitu_analytics.py [pils-config]

where ``pils-config`` is ``"Conf. 1"``, ``"Conf. 2"`` (default) or ``"Conf. 3"``.
"""

import sys

from repro.metrics import ParaverView, relative_improvement
from repro.workload import in_situ_workload, run_both_scenarios


def main(pils_config: str = "Conf. 2") -> None:
    workload = in_situ_workload("NEST", "Conf. 1", "Pils", pils_config)
    print(f"workload: {workload.name}\n")

    results = run_both_scenarios(workload)
    serial, drom = results["serial"], results["drom"]

    print(f"{'':24s}{'Serial':>12s}{'DROM':>12s}")
    print(f"{'total run time (s)':24s}{serial.metrics.total_run_time:12.0f}"
          f"{drom.metrics.total_run_time:12.0f}")
    for label in workload.job_labels():
        print(f"{label + ' response (s)':24s}"
              f"{serial.metrics.response_times()[label]:12.0f}"
              f"{drom.metrics.response_times()[label]:12.0f}")
    print(f"{'average response (s)':24s}{serial.metrics.average_response_time:12.0f}"
          f"{drom.metrics.average_response_time:12.0f}")

    total_gain = relative_improvement(
        serial.metrics.total_run_time, drom.metrics.total_run_time
    )
    response_gain = relative_improvement(
        serial.metrics.average_response_time, drom.metrics.average_response_time
    )
    print(f"\nDROM total run time gain:      {100 * total_gain:+.1f} %")
    print(f"DROM average response gain:    {100 * response_gain:+.1f} %")

    print("\nDROM scenario: CPUs used by each job over time "
          "(one column = 100 s, darker = wider):")
    view = ParaverView(drom.tracer, bin_seconds=100.0)
    print(view.render_job_widths(list(workload.job_labels())))

    changes = drom.tracer.mask_changes("NEST Conf. 1")
    print(f"\nNEST observed {len(changes)} DROM mask changes "
          f"(shrink when the analytics started, expansion when it finished).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Conf. 2")
