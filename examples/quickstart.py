#!/usr/bin/env python
"""Quickstart: shrink and expand a running application with the DROM API.

This is the smallest end-to-end use of the library:

1. build a MareNostrum III-like node and its DLB shared memory;
2. start a hybrid (MPI+OpenMP) application process registered with DLB;
3. attach an administrator (what SLURM's slurmd does) and change the
   process's CPU mask at run time;
4. watch the application adopt the new mask at its next malleability point.

Run with::

    python examples/quickstart.py
"""

from repro.core import DromFlags, NodeSharedMemory, attach_admin
from repro.cpuset import CpuSet, NodeTopology
from repro.runtime import ApplicationProcess, ProcessSpec, ThreadModel


def main() -> None:
    # A two-socket, 16-core node (the paper's MN3 node) and its DLB shared
    # memory segment.
    node = NodeTopology.marenostrum3()
    shmem = NodeSharedMemory(node)

    # An application process: one MPI rank running OpenMP on the whole node.
    app = ApplicationProcess(
        ProcessSpec(
            pid=1001,
            node=node.name,
            mpi_rank=0,
            thread_model=ThreadModel.OPENMP,
            initial_mask=node.full_mask(),
        ),
        shmem,
    )
    app.start()
    print(f"application started with {app.num_threads} threads "
          f"on CPUs {app.current_mask.to_list_string()}")

    # An administrator process attaches to the node (DROM_Attach) and asks
    # the application to give up one socket (DROM_SetProcessMask + STEAL).
    admin = attach_admin(shmem)
    print(f"registered pids: {admin.get_pid_list()}")
    admin.set_process_mask(1001, CpuSet.from_range(0, 8), DromFlags.STEAL)
    print("administrator assigned CPUs 0-7; change is pending until the "
          "application reaches a malleability point")

    # The application hits its next OpenMP parallel region: the DLB OMPT tool
    # polls DROM and resizes/re-pins the team before the region starts.
    team = app.enter_parallel_region()
    print(f"next parallel region ran with {team} threads "
          f"on CPUs {app.current_mask.to_list_string()}")

    # Give the CPUs back and let the application expand again.
    admin.set_process_mask(1001, node.full_mask(), DromFlags.STEAL)
    team = app.enter_parallel_region()
    print(f"after expansion the team is back to {team} threads")

    app.finish()
    admin.detach()
    print("done: the application unregistered cleanly")


if __name__ == "__main__":
    main()
