#!/usr/bin/env python
"""Writing your own DROM administrator (no SLURM involved).

Section 3.2 of the paper notes that the administrator does not have to be the
resource manager: "the implementation of the interface … allows users to
program their own administrator process".  This example shows exactly that —
a small user-level tool that co-allocates two of the user's own applications
on one node:

* application A follows Listing 1 of the paper: an iterative code that calls
  ``DLB_PollDROM`` at the top of every iteration (the manual integration of
  Section 4.4);
* application B uses the asynchronous callback mode instead of polling;
* the administrator equipartitions the node between them, later returns all
  CPUs to A when B finishes, and also demonstrates the LeWI module lending
  idle CPUs in between.

Run with::

    python examples/custom_administrator.py
"""

from repro.core import (
    DlbError,
    DlbProcess,
    DromFlags,
    LewiModule,
    NodeSharedMemory,
    attach_admin,
)
from repro.cpuset import CpuSet, NodeTopology
from repro.cpuset.distribution import JobShare, SocketAwareEquipartition


def main() -> None:
    node = NodeTopology.marenostrum3()
    shmem = NodeSharedMemory(node)

    # --- application A: manual polling integration (Listing 1) -----------------
    app_a = DlbProcess(pid=501, shmem=shmem, mask=node.full_mask(), environ={})
    app_a.init()
    threads_a = app_a.current_mask().count()
    print(f"[A] initialised with {threads_a} threads")

    # --- administrator: make room for application B ----------------------------
    admin = attach_admin(shmem)
    policy = SocketAwareEquipartition()
    shares = policy.distribute(
        node,
        [JobShare(job_id=1, ntasks=1, requested_cpus=16),
         JobShare(job_id=2, ntasks=1, requested_cpus=16)],
    )
    mask_a, mask_b = shares[1].mask, shares[2].mask
    print(f"[admin] equipartition: A -> {mask_a.to_list_string()}, "
          f"B -> {mask_b.to_list_string()}")

    # Reserve B's CPUs (DROM_PreInit shrinks A in the shared memory) and
    # "fork/exec" B with the produced environment.
    preinit = admin.pre_init(502, mask_b, DromFlags.STEAL)
    assert preinit.code is DlbError.DLB_SUCCESS
    app_b = DlbProcess(pid=502, shmem=shmem, environ=preinit.next_environ)
    app_b.init()

    # B reacts through the asynchronous helper-thread mode.
    def on_mask_change(mask: CpuSet) -> None:
        print(f"[B] asynchronous update: now on CPUs {mask.to_list_string()}")

    app_b.enable_async(on_mask_change)
    print(f"[B] started on CPUs {app_b.current_mask().to_list_string()}")

    # --- application A's iterative main loop (Listing 1 pattern) ----------------
    for iteration in range(3):
        code, ncpus, mask = app_a.poll_drom()
        if code is DlbError.DLB_SUCCESS:
            threads_a = ncpus
            print(f"[A] iteration {iteration}: DROM shrank me to {ncpus} threads "
                  f"({mask.to_list_string()})")
        else:
            print(f"[A] iteration {iteration}: running with {threads_a} threads")

    # --- LeWI: B blocks in MPI and lends its CPUs; A borrows them ---------------
    lewi = LewiModule(shmem)
    _, lent = lewi.lend(502)
    _, borrowed = lewi.borrow(501)
    print(f"[LeWI] B lent {lent.to_list_string()}; "
          f"A temporarily computes on {lewi.effective_mask(501).to_list_string()}")
    lewi.reclaim(502)
    print(f"[LeWI] B reclaimed its CPUs; A is back to "
          f"{lewi.effective_mask(501).to_list_string()}")

    # --- B finishes: the administrator cleans it up and A expands ----------------
    app_b.finalize()
    code, returned = admin.post_finalize(502, DromFlags.RETURN_STOLEN)
    print(f"[admin] DROM_PostFinalize(B): {code.name}, returned {{"
          + ", ".join(f"{pid}: {m.to_list_string()}" for pid, m in returned.items()) + "}")
    admin.set_process_mask(501, node.full_mask(), DromFlags.STEAL)
    code, ncpus, mask = app_a.poll_drom()
    print(f"[A] final poll: {code.name}, back to {ncpus} threads")

    app_a.finalize()
    admin.detach()
    print("done")


if __name__ == "__main__":
    main()
