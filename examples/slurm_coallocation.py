#!/usr/bin/env python
"""Driving the DROM-enabled SLURM stack directly (Figure 2, step by step).

This example uses the SLURM substrate the way the paper's integration does:
slurmctld schedules two full-node jobs onto the same two nodes, each node's
slurmd runs the DROM-enabled task/affinity plugin, slurmstepd applies the
masks with ``DROM_PreInit``, and when the second job ends its CPUs are handed
back through ``release_resources``.  Every mask decision is printed so the
whole Figure 2 flow can be followed.

Run with::

    python examples/slurm_coallocation.py
"""

from repro.cpuset import ClusterTopology
from repro.runtime import ApplicationProcess, MpiCommunicator, ProcessSpec, ThreadModel
from repro.slurm import JobSpec, Slurmctld, Slurmd, Srun


def show_node_state(slurmds: dict[str, Slurmd], title: str) -> None:
    print(f"\n{title}")
    for name, slurmd in slurmds.items():
        entries = ", ".join(
            f"pid {entry.pid}: {entry.assigned_mask.to_list_string()}"
            + (" (pending ack)" if entry.dirty else "")
            for entry in slurmd.shmem
        )
        print(f"  {name}: {entries or '(idle)'}")


def main() -> None:
    cluster = ClusterTopology.marenostrum3(2)
    ctld = Slurmctld(cluster, drom_enabled=True)
    slurmds = {node.name: Slurmd(node, drom_enabled=True) for node in cluster.nodes}
    srun = Srun(slurmds)

    # --- job 1: the simulation, submitted at t=0 --------------------------------
    sim = ctld.submit(
        JobSpec(name="simulation", nodes=2, ntasks=2, cpus_per_task=16), time=0.0
    )
    for decision in ctld.schedule(0.0):
        print(f"slurmctld: job {decision.job.spec.name!r} -> nodes {decision.nodes} "
              f"(co-allocated: {decision.co_allocated})")
    launch_sim = srun.launch(sim)
    comm = MpiCommunicator(size=2, job_id=sim.job_id)
    sim_procs = []
    for task in launch_sim.tasks():
        proc = ApplicationProcess(
            ProcessSpec(pid=task.pid, node=task.node, mpi_rank=task.global_rank,
                        thread_model=ThreadModel.OPENMP, initial_mask=task.mask),
            slurmds[task.node].shmem, comm=comm, environ=task.environ,
        )
        proc.start()
        sim_procs.append(proc)
    show_node_state(slurmds, "after the simulation starts (it owns both nodes):")

    # --- job 2: a second full-node job arrives at t=600 --------------------------
    analysis = ctld.submit(
        JobSpec(name="analysis", nodes=2, ntasks=2, cpus_per_task=16), time=600.0
    )
    for decision in ctld.schedule(600.0):
        print(f"\nslurmctld: job {decision.job.spec.name!r} -> nodes {decision.nodes} "
              f"(co-allocated: {decision.co_allocated})")
    srun.launch(analysis)
    show_node_state(
        slurmds,
        "after launch_request/pre_launch of the analysis "
        "(simulation masks shrunk in shared memory, not yet acknowledged):",
    )

    # The simulation ranks reach their next MPI call: PMPI polls DROM and the
    # OpenMP teams shrink to the new masks.
    for rank_index in range(2):
        comm.rank(rank_index).barrier()
    print("\nsimulation thread counts after its next MPI call:",
          [proc.num_threads for proc in sim_procs])
    show_node_state(slurmds, "steady state with both jobs sharing the nodes:")

    # --- job 2 completes: post_term + release_resources --------------------------
    srun.terminate(analysis)
    ctld.job_completed(analysis.job_id, 1800.0)
    for proc in sim_procs:
        proc.poll_malleability()
    print("\nsimulation thread counts after the analysis finished:",
          [proc.num_threads for proc in sim_procs])
    show_node_state(slurmds, "after release_resources handed the CPUs back:")

    # --- cleanup -----------------------------------------------------------------
    for proc in sim_procs:
        proc.finish()
    srun.terminate(sim)
    ctld.job_completed(sim.job_id, 3000.0)
    print("\nall jobs completed; nodes are empty again")


if __name__ == "__main__":
    main()
