#!/usr/bin/env python
"""Use case 2 — A high-priority job arrives while a simulation is running.

Reproduces the paper's second use case: a long NEST simulation occupies both
nodes when a high-priority CoreNeuron job is submitted.  Without DROM the new
job waits in the queue; with DROM the node CPUs are equipartitioned (one
socket per job), the high-priority job starts immediately, and it expands to
the full nodes when NEST finishes.

Run with::

    python examples/high_priority_job.py
"""

from repro.experiments import run_usecase2


def main() -> None:
    result = run_usecase2()

    print("Use case 2: NEST Conf. 1 + high-priority CoreNeuron Conf. 1\n")
    print(f"Serial total run time: {result.serial_total_run_time:8.0f} s")
    print(f"DROM   total run time: {result.drom_total_run_time:8.0f} s"
          f"   (gain {100 * result.total_run_time_gain:+.1f} %)")
    print(f"Serial average response: {result.serial_average_response:6.0f} s")
    print(f"DROM   average response: {result.drom_average_response:6.0f} s"
          f"   (gain {100 * result.average_response_gain:+.1f} %)\n")

    waits = result.wait_times()
    print("high-priority job wait time:")
    print(f"  Serial: {waits['serial'][result.coreneuron_label]:.0f} s")
    print(f"  DROM:   {waits['drom'][result.coreneuron_label]:.0f} s (starts immediately)\n")

    print("Mean IPC per job (the two scenarios should be comparable, Figure 14):")
    for job, (serial_ipc, drom_ipc) in result.ipc_comparison().items():
        print(f"  {job:24s} Serial {serial_ipc:.2f}   DROM {drom_ipc:.2f}")

    print(f"\nCoreNeuron expanded to the full nodes after NEST ended: "
          f"{result.coreneuron_expanded()}\n")

    print("Serial scenario timeline (thread count per job, one column = 200 s):")
    print(result.cycles_rendering("serial"))
    print("\nDROM scenario timeline:")
    print(result.cycles_rendering("drom"))


if __name__ == "__main__":
    main()
