"""Pils — compute-bound synthetic benchmark (MPI + OmpSs).

Pils performs computation-intensive operations and is used by the paper to
stand in for a compute-bound in-situ analytics program.  Being OmpSs/task
based it is *fully malleable*: no static partition, near-perfect scaling, and
it adapts its worker pool at any task boundary.

In the paper Pils is configured per experiment ("it can be configured to run
with different numbers of MPI processes and OmpSs threads"); the three
Table-1 configurations use different problem sizes so that each remains a
short analytics-style job relative to the simulators.  The per-configuration
work volumes live in :mod:`repro.workload.configs`.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel
from repro.apps.perfmodel import (
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
)

DEFAULT_ITERATIONS = 60


def pils_profile() -> PerformanceProfile:
    """The Pils performance profile: one compute-bound, well-scaling phase."""
    return PerformanceProfile(
        name="pils",
        phases=(
            PhaseProfile(
                name="compute",
                work_fraction=1.0,
                efficiency=ThreadEfficiency(alpha=0.002, numa_penalty=0.02),
                base_ipc=1.8,
                comm_overhead_per_rank=0.005,
            ),
        ),
        partition=StaticPartition(chunks_per_thread=0),
    )


def pils_model(
    total_work: float,
    iterations: int = DEFAULT_ITERATIONS,
    malleable: bool = True,
) -> ApplicationModel:
    """Build a Pils instance with ``total_work`` nominal CPU-seconds."""
    return ApplicationModel(
        profile=pils_profile(),
        total_work=total_work,
        iterations=iterations,
        malleable=malleable,
    )
