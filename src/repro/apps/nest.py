"""NEST — spiking neural network simulator model.

The paper runs a malleability-patched NEST 2.12 (MPI+OpenMP).  The properties
that matter for the experiments, all encoded in the profile below:

* hybrid MPI+OpenMP with a short, memory-heavy construction/initialisation
  phase followed by a long simulation loop;
* **static data partition**: neurons are distributed over threads at
  initialisation; when DROM removes threads the orphaned pieces are executed
  as extra rounds by the remaining threads (Figure 5), so shrinking costs more
  than the ideal 1/n — and the *relative* excess shrinks as more CPUs are
  removed (the Conf. 3 observation in Section 6.1);
* thread efficiency drops when a rank's team spans both sockets, which is why
  the paper sees higher IPC with Conf. 2 (4×8) than Conf. 1 (2×16);
* more MPI ranks exchange more spikes, which is why Conf. 2 is nevertheless
  not outright faster than Conf. 1.

The default calibration targets a standalone Conf. 1 runtime of roughly
2600 s on the two-node MN3 partition — the same order as the paper's runs.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel
from repro.apps.perfmodel import (
    MemoryBandwidthModel,
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
)

#: Default total work in nominal CPU-seconds (all ranks together); calibrated
#: so that Conf. 1 (2 ranks x 16 threads) runs for ~2600 s standalone.
DEFAULT_TOTAL_WORK = 56_000.0
#: Main-loop malleability points per rank.
DEFAULT_ITERATIONS = 260


def nest_profile(chunks_per_thread: int = 4) -> PerformanceProfile:
    """The NEST performance profile.

    ``chunks_per_thread`` controls the granularity of the static data
    partition; 4 reproduces Figure 5's "removed thread's data is computed by
    the first 4 threads".  ``chunks_per_thread=0`` builds the hypothetical
    fully malleable NEST the paper mentions as the fix for the imbalance.
    """
    solve_efficiency = ThreadEfficiency(alpha=0.012, numa_penalty=0.24)
    init_efficiency = ThreadEfficiency(alpha=0.05, numa_penalty=0.10)
    return PerformanceProfile(
        name="nest",
        phases=(
            PhaseProfile(
                name="build-network",
                work_fraction=0.03,
                efficiency=init_efficiency,
                memory=MemoryBandwidthModel(per_core_gbs=20.0, traffic_gb_per_work_unit=2.0),
                base_ipc=0.7,
                comm_overhead_per_rank=0.02,
            ),
            PhaseProfile(
                name="simulate",
                work_fraction=0.97,
                efficiency=solve_efficiency,
                base_ipc=1.25,
                comm_overhead_per_rank=0.115,
            ),
        ),
        partition=StaticPartition(chunks_per_thread=chunks_per_thread),
    )


def nest_model(
    total_work: float = DEFAULT_TOTAL_WORK,
    iterations: int = DEFAULT_ITERATIONS,
    chunks_per_thread: int = 4,
    malleable: bool = True,
) -> ApplicationModel:
    """Build the NEST application model.

    ``malleable=False`` builds an unpatched NEST that never reacts to DROM
    (used by the ablation benchmarks); ``chunks_per_thread=0`` builds the
    fully malleable variant without the static-partition penalty.
    """
    return ApplicationModel(
        profile=nest_profile(chunks_per_thread=chunks_per_thread),
        total_work=total_work,
        iterations=iterations,
        malleable=malleable,
    )
