"""Analytic performance models for the evaluation applications.

The paper measures real applications (NEST, CoreNeuron, Pils, STREAM) on real
MareNostrum III nodes.  This reproduction replaces the silicon with analytic
models whose *qualitative* properties drive every figure:

* **Thread efficiency** — hybrid MPI+OpenMP ranks lose efficiency as the
  thread team grows, and lose extra efficiency when the team spans both
  sockets (NUMA).  This is what the paper observes as "increasing IPC
  switching from Conf. 1 to Conf. 2 … better data locality" and "higher
  parallel efficiency when running on less OpenMP threads per MPI rank".
* **Static data partition** — NEST and CoreNeuron split their data into a
  fixed number of chunks when they initialise.  When DROM later removes
  threads, the orphaned chunks are executed as extra rounds by the remaining
  threads, creating the imbalance of Figure 5.  The penalty is a ceiling
  effect: ``ceil(chunks / threads)`` rounds instead of ``chunks / threads``.
* **Memory-bound saturation** — STREAM's throughput is capped by memory
  bandwidth; beyond a couple of cores per node more CPUs do not help (the
  paper: "over two CPUs per node performance keeps constant").
* **Communication overhead** — more MPI ranks exchange more messages; this is
  why NEST Conf. 2 (4×8) is not simply faster than Conf. 1 (2×16) despite the
  better thread efficiency.

All model parameters live in :class:`PerformanceProfile`; the per-application
calibrations are documented in :mod:`repro.apps` and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology

#: Nominal MN3 SandyBridge clock in cycles per microsecond (2.6 GHz).
NOMINAL_CYCLES_PER_US = 2600.0


@dataclass(frozen=True)
class ThreadEfficiency:
    """Per-thread efficiency of a shared-memory team.

    ``eff(n) = 1 / (1 + alpha * (n - 1))`` with an extra multiplicative
    penalty when the team's CPU mask spans more than one socket.
    """

    #: Linear overhead per extra thread (synchronisation, scheduling).
    alpha: float = 0.01
    #: Multiplicative efficiency loss when threads span >1 socket (NUMA).
    numa_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= self.numa_penalty < 1.0:
            raise ValueError("numa_penalty must be in [0, 1)")

    def efficiency(self, nthreads: int, sockets_spanned: int = 1) -> float:
        """Per-thread efficiency in (0, 1]."""
        if nthreads <= 0:
            raise ValueError("nthreads must be positive")
        eff = 1.0 / (1.0 + self.alpha * (nthreads - 1))
        if sockets_spanned > 1:
            eff *= 1.0 - self.numa_penalty
        return eff

    def throughput(self, nthreads: int, sockets_spanned: int = 1) -> float:
        """Aggregate team throughput in CPU-equivalents."""
        return nthreads * self.efficiency(nthreads, sockets_spanned)


@dataclass(frozen=True)
class StaticPartition:
    """Static data decomposition fixed at application initialisation.

    ``chunks_per_thread`` sub-domains are created per *initial* thread.  With
    the initial team every iteration needs exactly ``chunks_per_thread``
    rounds; with a smaller team the orphaned chunks add extra rounds
    (Figure 5's imbalance).  ``chunks_per_thread=0`` means the application is
    fully malleable (no static partition).
    """

    chunks_per_thread: int = 4

    def __post_init__(self) -> None:
        if self.chunks_per_thread < 0:
            raise ValueError("chunks_per_thread must be non-negative")

    @property
    def is_static(self) -> bool:
        return self.chunks_per_thread > 0

    def total_chunks(self, initial_threads: int) -> int:
        return self.chunks_per_thread * initial_threads

    def rounds(self, initial_threads: int, current_threads: int) -> int:
        """Number of chunk rounds one iteration needs with the current team."""
        if current_threads <= 0:
            raise ValueError("current_threads must be positive")
        if not self.is_static:
            return 1
        return math.ceil(self.total_chunks(initial_threads) / current_threads)

    def imbalance_factor(self, initial_threads: int, current_threads: int) -> float:
        """Iteration-time inflation caused purely by the static partition.

        1.0 when the partition divides evenly; e.g. removing one thread from a
        16-thread team with 4 chunks/thread gives 5 rounds instead of 4.06
        ideal rounds → ≈1.23.
        """
        if not self.is_static:
            return 1.0
        ideal = self.total_chunks(initial_threads) / current_threads
        return self.rounds(initial_threads, current_threads) / ideal

    def thread_utilisation(
        self, initial_threads: int, current_threads: int
    ) -> list[float]:
        """Per-thread busy fraction within one iteration (Figure 5's view).

        Chunks are dealt round-robin to the current threads; threads that
        receive fewer chunks than the busiest one idle for the difference.
        """
        if current_threads <= 0:
            raise ValueError("current_threads must be positive")
        chunks = self.total_chunks(initial_threads) if self.is_static else current_threads
        per_thread = [
            chunks // current_threads + (1 if i < chunks % current_threads else 0)
            for i in range(current_threads)
        ]
        busiest = max(per_thread)
        return [count / busiest for count in per_thread]


@dataclass(frozen=True)
class MemoryBandwidthModel:
    """Saturating memory-bandwidth model (STREAM-like behaviour).

    ``bytes_per_unit_work`` converts a unit of application work into memory
    traffic; the achievable bandwidth is the minimum of what the used cores
    can generate and what the sockets the mask touches can sustain.
    """

    #: GB/s a single core can draw (SandyBridge ≈ half a socket with 2 cores).
    per_core_gbs: float = 20.0
    #: GB of traffic per unit of work (1.0 work unit = 1 CPU-second nominal).
    traffic_gb_per_work_unit: float = 0.0

    @property
    def is_memory_bound(self) -> bool:
        return self.traffic_gb_per_work_unit > 0.0

    def achievable_bandwidth(self, mask: CpuSet, topology: NodeTopology) -> float:
        """GB/s the mask can sustain on the node."""
        if mask.is_empty():
            return 0.0
        socket_cap = sum(
            socket.memory_bandwidth_gbs
            for socket in topology.sockets
            if not socket.cpus.isdisjoint(mask)
        )
        return min(mask.count() * self.per_core_gbs, socket_cap)

    def memory_time(self, work_units: float, mask: CpuSet, topology: NodeTopology) -> float:
        """Seconds needed to move the traffic of ``work_units`` of work."""
        if not self.is_memory_bound or work_units <= 0:
            return 0.0
        bandwidth = self.achievable_bandwidth(mask, topology)
        if bandwidth <= 0:
            return math.inf
        return work_units * self.traffic_gb_per_work_unit / bandwidth


@dataclass(frozen=True)
class PhaseProfile:
    """One execution phase of an application (e.g. init vs. solve).

    ``work_fraction`` of the application's total work belongs to this phase;
    the phase's own efficiency/memory parameters override the application
    defaults, which is how CoreNeuron's memory-bound initialisation phase is
    modelled.
    """

    name: str
    work_fraction: float
    efficiency: ThreadEfficiency
    memory: MemoryBandwidthModel = MemoryBandwidthModel()
    #: Base instructions-per-cycle of one thread during this phase.
    base_ipc: float = 1.2
    #: Iteration-time multiplier for communication (grows with rank count).
    comm_overhead_per_rank: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.work_fraction <= 1.0:
            raise ValueError("work_fraction must be in (0, 1]")

    def comm_factor(self, total_ranks: int) -> float:
        """Iteration-time inflation from MPI communication."""
        return 1.0 + self.comm_overhead_per_rank * max(total_ranks - 2, 0)


@dataclass(frozen=True)
class PerformanceProfile:
    """Complete analytic model of one application."""

    name: str
    phases: tuple[PhaseProfile, ...]
    partition: StaticPartition = StaticPartition(chunks_per_thread=0)

    def __post_init__(self) -> None:
        total = sum(phase.work_fraction for phase in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"phase work fractions of {self.name!r} must sum to 1, got {total}"
            )

    def phase(self, name: str) -> PhaseProfile:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in profile {self.name!r}")

    # -- core timing law -----------------------------------------------------------

    def iteration_time(
        self,
        phase: PhaseProfile,
        work_units: float,
        mask: CpuSet,
        topology: NodeTopology,
        initial_threads: int,
        total_ranks: int,
        interference: float = 1.0,
    ) -> float:
        """Wall-clock seconds one rank needs for ``work_units`` of phase work.

        The compute time follows the static-partition/efficiency law; the
        memory time follows the bandwidth model; the rank is limited by the
        slower of the two (roofline-style), then inflated by the MPI
        communication factor and by any co-location interference.
        """
        if work_units <= 0:
            return 0.0
        nthreads = mask.count()
        if nthreads == 0:
            return math.inf
        spans = topology.sockets_spanned(mask)
        eff = phase.efficiency.efficiency(nthreads, spans)
        imbalance = self.partition.imbalance_factor(initial_threads, nthreads)
        compute = work_units / (nthreads * eff) * imbalance
        memory = phase.memory.memory_time(work_units, mask, topology)
        base = max(compute, memory)
        return base * phase.comm_factor(total_ranks) * max(interference, 1.0)

    #: How strongly thread efficiency shows up in the measured IPC.  Most of a
    #: team's efficiency loss is spin/idle time (visible as utilisation, not
    #: IPC), so only a fraction of it lowers the per-instruction rate — this
    #: is why the paper's Figure 14 histograms look "comparable" between the
    #: Serial and DROM scenarios while the run times still differ.
    IPC_EFFICIENCY_WEIGHT = 0.3

    def ipc(
        self,
        phase: PhaseProfile,
        mask: CpuSet,
        topology: NodeTopology,
        initial_threads: int,
    ) -> float:
        """Average per-thread IPC during the phase with the given mask."""
        nthreads = mask.count()
        if nthreads == 0:
            return 0.0
        spans = topology.sockets_spanned(mask)
        eff = phase.efficiency.efficiency(nthreads, spans)
        imbalance = self.partition.imbalance_factor(initial_threads, nthreads)
        w = self.IPC_EFFICIENCY_WEIGHT
        damped_eff = (1.0 - w) + w * eff
        damped_imbalance = (1.0 - w) + w * imbalance
        # Imbalance shows up mostly as idle cycles on the under-loaded
        # threads; only a weighted part of it (and of the efficiency loss)
        # lowers the *average* per-instruction rate.
        return phase.base_ipc * damped_eff / damped_imbalance

    def cycles_per_us(self, busy_fraction: float = 1.0) -> float:
        """Cycles per microsecond dedicated to a thread (Figure 13's metric)."""
        return NOMINAL_CYCLES_PER_US * min(max(busy_fraction, 0.0), 1.0)
