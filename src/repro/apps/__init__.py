"""Application models used in the paper's evaluation (Section 6).

Four applications, each an :class:`~repro.apps.base.ApplicationModel` built
from an analytic :class:`~repro.apps.perfmodel.PerformanceProfile`:

* :func:`~repro.apps.nest.nest_model` — NEST neuro-simulator (static data
  partition, NUMA-sensitive hybrid MPI+OpenMP);
* :func:`~repro.apps.coreneuron.coreneuron_model` — CoreNeuron (similar, with
  a memory-bound initialisation phase);
* :func:`~repro.apps.pils.pils_model` — compute-bound synthetic analytics
  (MPI+OmpSs, fully malleable);
* :func:`~repro.apps.stream.stream_model` — memory-bandwidth-bound analytics
  that saturates at two CPUs per node.
"""

from repro.apps.base import AppConfig, ApplicationModel, RankWorkPlan, WorkStep
from repro.apps.coreneuron import coreneuron_model, coreneuron_profile
from repro.apps.nest import nest_model, nest_profile
from repro.apps.perfmodel import (
    MemoryBandwidthModel,
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
    NOMINAL_CYCLES_PER_US,
)
from repro.apps.pils import pils_model, pils_profile
from repro.apps.stream import stream_model, stream_profile

__all__ = [
    "AppConfig",
    "ApplicationModel",
    "RankWorkPlan",
    "WorkStep",
    "PerformanceProfile",
    "PhaseProfile",
    "ThreadEfficiency",
    "StaticPartition",
    "MemoryBandwidthModel",
    "NOMINAL_CYCLES_PER_US",
    "nest_model",
    "nest_profile",
    "coreneuron_model",
    "coreneuron_profile",
    "pils_model",
    "pils_profile",
    "stream_model",
    "stream_profile",
]
