"""Application model base: configurations, work plans and rank state.

An :class:`ApplicationModel` couples a :class:`PerformanceProfile` with a
work volume and an iteration structure.  The workload runner instantiates one
:class:`RankWorkPlan` per MPI rank; each entry of the plan is one *step* — a
quantum of work ending at a malleability point (an MPI call, an OMPT
parallel-begin, or a manual ``DLB_PollDROM``), exactly the points at which the
real integrations let DROM change the thread team.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.perfmodel import PerformanceProfile, PhaseProfile
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@dataclass(frozen=True)
class AppConfig:
    """One MPI×OpenMP configuration of an application (a Table 1 entry)."""

    label: str
    mpi_ranks: int
    threads_per_rank: int

    def __post_init__(self) -> None:
        if self.mpi_ranks <= 0 or self.threads_per_rank <= 0:
            raise ValueError("ranks and threads must be positive")

    @property
    def total_cpus(self) -> int:
        return self.mpi_ranks * self.threads_per_rank

    def __str__(self) -> str:
        return f"{self.label} ({self.mpi_ranks} x {self.threads_per_rank})"


@dataclass(frozen=True)
class WorkStep:
    """One quantum of work of one rank, ending at a malleability point."""

    phase: PhaseProfile
    work_units: float


@dataclass
class RankWorkPlan:
    """Mutable per-rank execution state: remaining steps plus bookkeeping."""

    rank: int
    steps: list[WorkStep]
    #: Thread-team size the application initialised with (fixes the static
    #: data partition; never changes even when the mask shrinks/expands).
    initial_threads: int
    next_step: int = 0
    completed_work: float = 0.0

    @property
    def finished(self) -> bool:
        return self.next_step >= len(self.steps)

    @property
    def remaining_steps(self) -> int:
        return len(self.steps) - self.next_step

    def current_step(self) -> WorkStep:
        if self.finished:
            raise IndexError(f"rank {self.rank} has no remaining steps")
        return self.steps[self.next_step]

    def advance(self) -> WorkStep:
        step = self.current_step()
        self.next_step += 1
        self.completed_work += step.work_units
        return step

    def advance_many(self, count: int) -> None:
        """Advance ``count`` steps in one call (the batched fast path).

        ``completed_work`` accumulates step by step, in the same order as
        ``count`` individual :meth:`advance` calls — float addition is not
        associative, so summing first would drift from the single-step path.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.next_step + count > len(self.steps):
            raise IndexError(
                f"rank {self.rank} has {self.remaining_steps} steps left, "
                f"cannot advance {count}"
            )
        completed = self.completed_work
        for step in self.steps[self.next_step : self.next_step + count]:
            completed += step.work_units
        self.completed_work = completed
        self.next_step += count


@dataclass(frozen=True)
class ApplicationModel:
    """A runnable application: performance profile + work volume + structure.

    Parameters
    ----------
    profile:
        The analytic performance model.
    total_work:
        Work of the whole application in nominal CPU-seconds, summed over all
        ranks (i.e. ``total_work / total_cpus`` seconds on perfectly scaling
        hardware).
    iterations:
        Number of main-loop iterations (= malleability points per rank).
        Earlier phases get a proportional number of steps, at least one.
    malleable:
        Whether the application polls DROM and adapts (the paper's patched
        NEST/CoreNeuron and the DLB-enabled Pils/STREAM are malleable; the
        ablation benchmarks also build non-malleable variants).
    """

    profile: PerformanceProfile
    total_work: float
    iterations: int = 200
    malleable: bool = True

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise ValueError("total_work must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")

    @property
    def name(self) -> str:
        return self.profile.name

    # -- plan construction ----------------------------------------------------------

    def steps_for_phase(self, phase: PhaseProfile) -> int:
        return max(1, round(self.iterations * phase.work_fraction))

    def build_rank_plan(self, rank: int, config: AppConfig) -> RankWorkPlan:
        """Build the per-rank step list for one configuration."""
        work_per_rank = self.total_work / config.mpi_ranks
        steps: list[WorkStep] = []
        for phase in self.profile.phases:
            nsteps = self.steps_for_phase(phase)
            phase_work = work_per_rank * phase.work_fraction
            per_step = phase_work / nsteps
            # Every step of a phase is identical, and WorkStep is immutable:
            # share one instance across the phase instead of building nsteps
            # of them (plans are rebuilt per run, so this is hot), which also
            # lets the segment scans below detect uniform runs by identity.
            steps.extend([WorkStep(phase=phase, work_units=per_step)] * nsteps)
        return RankWorkPlan(
            rank=rank, steps=steps, initial_threads=config.threads_per_rank
        )

    def build_plans(self, config: AppConfig) -> list[RankWorkPlan]:
        return [self.build_rank_plan(rank, config) for rank in range(config.mpi_ranks)]

    # -- timing ------------------------------------------------------------------------

    def step_time(
        self,
        plan: RankWorkPlan,
        mask: CpuSet,
        topology: NodeTopology,
        total_ranks: int,
        interference: float = 1.0,
    ) -> float:
        """Wall-clock duration of the rank's next step with the given mask."""
        step = plan.current_step()
        return self.profile.iteration_time(
            phase=step.phase,
            work_units=step.work_units,
            mask=mask,
            topology=topology,
            initial_threads=plan.initial_threads,
            total_ranks=total_ranks,
            interference=interference,
        )

    def steps_until_change(self, plan: RankWorkPlan) -> int:
        """Number of upcoming steps whose timing inputs are all identical.

        Counts the run of steps from the plan's cursor that share the current
        step's phase and per-step work units: under a fixed mask every step of
        such a segment has the same duration and IPC, so a batch can price the
        whole segment with one :meth:`step_time` call.  Returns 0 on a
        finished plan.
        """
        steps = plan.steps
        i = plan.next_step
        end = len(steps)
        if i >= end:
            return 0
        head = steps[i]
        j = i + 1
        while j < end and (
            steps[j] is head
            or (steps[j].phase is head.phase and steps[j].work_units == head.work_units)
        ):
            j += 1
        return j - i

    def step_times(
        self,
        plan: RankWorkPlan,
        count: int,
        mask: CpuSet,
        topology: NodeTopology,
        total_ranks: int,
        interference: float = 1.0,
    ) -> list[float]:
        """Durations of the plan's next ``count`` steps under a fixed mask.

        Vectorized over uniform segments: one :meth:`PerformanceProfile
        .iteration_time` evaluation per (phase, work-units) run instead of one
        per step, replicated across the run — each returned float is exactly
        what a per-step :meth:`step_time` call would have produced.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > plan.remaining_steps:
            raise IndexError(
                f"rank {plan.rank} has {plan.remaining_steps} steps left, "
                f"cannot price {count}"
            )
        steps = plan.steps
        out: list[float] = []
        i = plan.next_step
        end = i + count
        while i < end:
            head = steps[i]
            j = i + 1
            while j < end and (
                steps[j] is head
                or (steps[j].phase is head.phase and steps[j].work_units == head.work_units)
            ):
                j += 1
            duration = self.profile.iteration_time(
                phase=head.phase,
                work_units=head.work_units,
                mask=mask,
                topology=topology,
                initial_threads=plan.initial_threads,
                total_ranks=total_ranks,
                interference=interference,
            )
            out.extend([duration] * (j - i))
            i = j
        return out

    def step_ipc(
        self, plan: RankWorkPlan, mask: CpuSet, topology: NodeTopology
    ) -> float:
        """Average per-thread IPC during the rank's next step."""
        step = plan.current_step()
        return self.step_ipc_for_phase(
            step.phase, mask, topology, plan.initial_threads
        )

    def step_ipc_for_phase(
        self,
        phase: PhaseProfile,
        mask: CpuSet,
        topology: NodeTopology,
        initial_threads: int,
    ) -> float:
        """IPC of any step of ``phase`` under ``mask`` (phase-constant, so a
        batch prices it once per phase instead of once per step)."""
        return self.profile.ipc(
            phase=phase,
            mask=mask,
            topology=topology,
            initial_threads=initial_threads,
        )

    # -- reference timings ------------------------------------------------------------------

    def standalone_runtime(self, config: AppConfig, topology: NodeTopology) -> float:
        """Estimated runtime when the application owns its full request.

        Computed by walking the plan of rank 0 with its nominal mask (ranks
        are balanced, so rank 0 is representative).  Used for calibration and
        by the benchmarks to report per-application reference times.
        """
        plan = self.build_rank_plan(0, config)
        # Nominal mask: the first threads_per_rank CPUs of the node, i.e. the
        # placement the task/affinity plugin gives an uncontended rank.
        mask = CpuSet.from_range(0, min(config.threads_per_rank, topology.ncpus))
        total = 0.0
        while not plan.finished:
            total += self.step_time(plan, mask, topology, total_ranks=config.mpi_ranks)
            plan.advance()
        return total
