"""Application model base: configurations, work plans and rank state.

An :class:`ApplicationModel` couples a :class:`PerformanceProfile` with a
work volume and an iteration structure.  The workload runner instantiates one
:class:`RankWorkPlan` per MPI rank; each entry of the plan is one *step* — a
quantum of work ending at a malleability point (an MPI call, an OMPT
parallel-begin, or a manual ``DLB_PollDROM``), exactly the points at which the
real integrations let DROM change the thread team.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.perfmodel import PerformanceProfile, PhaseProfile
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@dataclass(frozen=True)
class AppConfig:
    """One MPI×OpenMP configuration of an application (a Table 1 entry)."""

    label: str
    mpi_ranks: int
    threads_per_rank: int

    def __post_init__(self) -> None:
        if self.mpi_ranks <= 0 or self.threads_per_rank <= 0:
            raise ValueError("ranks and threads must be positive")

    @property
    def total_cpus(self) -> int:
        return self.mpi_ranks * self.threads_per_rank

    def __str__(self) -> str:
        return f"{self.label} ({self.mpi_ranks} x {self.threads_per_rank})"


@dataclass(frozen=True)
class WorkStep:
    """One quantum of work of one rank, ending at a malleability point."""

    phase: PhaseProfile
    work_units: float


@dataclass
class RankWorkPlan:
    """Mutable per-rank execution state: remaining steps plus bookkeeping."""

    rank: int
    steps: list[WorkStep]
    #: Thread-team size the application initialised with (fixes the static
    #: data partition; never changes even when the mask shrinks/expands).
    initial_threads: int
    next_step: int = 0
    completed_work: float = 0.0

    @property
    def finished(self) -> bool:
        return self.next_step >= len(self.steps)

    @property
    def remaining_steps(self) -> int:
        return len(self.steps) - self.next_step

    def current_step(self) -> WorkStep:
        if self.finished:
            raise IndexError(f"rank {self.rank} has no remaining steps")
        return self.steps[self.next_step]

    def advance(self) -> WorkStep:
        step = self.current_step()
        self.next_step += 1
        self.completed_work += step.work_units
        return step


@dataclass(frozen=True)
class ApplicationModel:
    """A runnable application: performance profile + work volume + structure.

    Parameters
    ----------
    profile:
        The analytic performance model.
    total_work:
        Work of the whole application in nominal CPU-seconds, summed over all
        ranks (i.e. ``total_work / total_cpus`` seconds on perfectly scaling
        hardware).
    iterations:
        Number of main-loop iterations (= malleability points per rank).
        Earlier phases get a proportional number of steps, at least one.
    malleable:
        Whether the application polls DROM and adapts (the paper's patched
        NEST/CoreNeuron and the DLB-enabled Pils/STREAM are malleable; the
        ablation benchmarks also build non-malleable variants).
    """

    profile: PerformanceProfile
    total_work: float
    iterations: int = 200
    malleable: bool = True

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise ValueError("total_work must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")

    @property
    def name(self) -> str:
        return self.profile.name

    # -- plan construction ----------------------------------------------------------

    def steps_for_phase(self, phase: PhaseProfile) -> int:
        return max(1, round(self.iterations * phase.work_fraction))

    def build_rank_plan(self, rank: int, config: AppConfig) -> RankWorkPlan:
        """Build the per-rank step list for one configuration."""
        work_per_rank = self.total_work / config.mpi_ranks
        steps: list[WorkStep] = []
        for phase in self.profile.phases:
            nsteps = self.steps_for_phase(phase)
            phase_work = work_per_rank * phase.work_fraction
            per_step = phase_work / nsteps
            steps.extend(WorkStep(phase=phase, work_units=per_step) for _ in range(nsteps))
        return RankWorkPlan(
            rank=rank, steps=steps, initial_threads=config.threads_per_rank
        )

    def build_plans(self, config: AppConfig) -> list[RankWorkPlan]:
        return [self.build_rank_plan(rank, config) for rank in range(config.mpi_ranks)]

    # -- timing ------------------------------------------------------------------------

    def step_time(
        self,
        plan: RankWorkPlan,
        mask: CpuSet,
        topology: NodeTopology,
        total_ranks: int,
        interference: float = 1.0,
    ) -> float:
        """Wall-clock duration of the rank's next step with the given mask."""
        step = plan.current_step()
        return self.profile.iteration_time(
            phase=step.phase,
            work_units=step.work_units,
            mask=mask,
            topology=topology,
            initial_threads=plan.initial_threads,
            total_ranks=total_ranks,
            interference=interference,
        )

    def step_ipc(
        self, plan: RankWorkPlan, mask: CpuSet, topology: NodeTopology
    ) -> float:
        """Average per-thread IPC during the rank's next step."""
        step = plan.current_step()
        return self.profile.ipc(
            phase=step.phase,
            mask=mask,
            topology=topology,
            initial_threads=plan.initial_threads,
        )

    # -- reference timings ------------------------------------------------------------------

    def standalone_runtime(self, config: AppConfig, topology: NodeTopology) -> float:
        """Estimated runtime when the application owns its full request.

        Computed by walking the plan of rank 0 with its nominal mask (ranks
        are balanced, so rank 0 is representative).  Used for calibration and
        by the benchmarks to report per-application reference times.
        """
        plan = self.build_rank_plan(0, config)
        # Nominal mask: the first threads_per_rank CPUs of the node, i.e. the
        # placement the task/affinity plugin gives an uncontended rank.
        mask = CpuSet.from_range(0, min(config.threads_per_rank, topology.ncpus))
        total = 0.0
        while not plan.finished:
            total += self.step_time(plan, mask, topology, total_ranks=config.mpi_ranks)
            plan.advance()
        return total
