"""STREAM — sustainable-memory-bandwidth benchmark model.

STREAM (McCalpin) measures memory bandwidth; the paper configures it with an
8 GB dataset and multiple iterations to stand in for a memory-bound analytics
program.  Its defining property for the experiments: performance saturates at
two CPUs per node ("over two CPUs per node performance keeps constant"), so
co-allocating it costs the simulator only two CPUs while the analytics itself
runs at full speed.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel
from repro.apps.perfmodel import (
    MemoryBandwidthModel,
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
)

#: Calibrated for a ~150 s standalone run with 2 CPUs per node (Table 1's
#: 2 x 2 configuration over two nodes).
DEFAULT_TOTAL_WORK = 300.0
DEFAULT_ITERATIONS = 40
#: Dataset size used by the paper's configuration.
DATASET_GB = 8.0


def stream_profile() -> PerformanceProfile:
    """The STREAM profile: a single bandwidth-bound triad-like phase.

    One core can draw ~20 GB/s and a socket sustains ~40 GB/s, so two cores on
    a socket already saturate it — additional CPUs do not improve throughput,
    which is the saturation behaviour the paper relies on.
    """
    return PerformanceProfile(
        name="stream",
        phases=(
            PhaseProfile(
                name="triad",
                work_fraction=1.0,
                efficiency=ThreadEfficiency(alpha=0.002, numa_penalty=0.0),
                memory=MemoryBandwidthModel(
                    per_core_gbs=20.0, traffic_gb_per_work_unit=40.0
                ),
                base_ipc=0.5,
                comm_overhead_per_rank=0.0,
            ),
        ),
        partition=StaticPartition(chunks_per_thread=0),
    )


def stream_model(
    total_work: float = DEFAULT_TOTAL_WORK,
    iterations: int = DEFAULT_ITERATIONS,
    malleable: bool = True,
) -> ApplicationModel:
    """Build the STREAM application model."""
    return ApplicationModel(
        profile=stream_profile(),
        total_work=total_work,
        iterations=iterations,
        malleable=malleable,
    )
