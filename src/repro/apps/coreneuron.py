"""CoreNeuron — compute-optimised neuron network simulator model.

CoreNeuron shares NEST's structure (hybrid MPI+OpenMP, static data partition,
better locality with 8-thread teams) but differs in the ways the paper's
results differ:

* it is somewhat longer-running than NEST in the use-case-2 workload and has
  a pronounced **memory-intensive initialisation phase** (the green region at
  the start of its trace in Figure 13, "lower cycles in memory intensive
  initialization phase");
* its main loop is slightly more cache-friendly (higher IPC) and slightly
  less sensitive to losing CPUs to a compute-bound co-runner, but it shares
  nodes with memory-bound analytics (STREAM) a bit better than NEST — the
  paper reports an average run-time gain of 5.3 % vs 1.84 % for NEST.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel
from repro.apps.perfmodel import (
    MemoryBandwidthModel,
    PerformanceProfile,
    PhaseProfile,
    StaticPartition,
    ThreadEfficiency,
)

#: Calibrated so Conf. 1 standalone runs ~2850 s (a bit longer than NEST).
DEFAULT_TOTAL_WORK = 58_000.0
DEFAULT_ITERATIONS = 260


def coreneuron_profile(chunks_per_thread: int = 4) -> PerformanceProfile:
    """The CoreNeuron performance profile."""
    solve_efficiency = ThreadEfficiency(alpha=0.010, numa_penalty=0.22)
    init_efficiency = ThreadEfficiency(alpha=0.08, numa_penalty=0.05)
    return PerformanceProfile(
        name="coreneuron",
        phases=(
            PhaseProfile(
                name="model-setup",
                work_fraction=0.08,
                efficiency=init_efficiency,
                memory=MemoryBandwidthModel(per_core_gbs=12.0, traffic_gb_per_work_unit=3.0),
                base_ipc=0.55,
                comm_overhead_per_rank=0.01,
            ),
            PhaseProfile(
                name="solve",
                work_fraction=0.92,
                efficiency=solve_efficiency,
                base_ipc=1.4,
                comm_overhead_per_rank=0.105,
            ),
        ),
        partition=StaticPartition(chunks_per_thread=chunks_per_thread),
    )


def coreneuron_model(
    total_work: float = DEFAULT_TOTAL_WORK,
    iterations: int = DEFAULT_ITERATIONS,
    chunks_per_thread: int = 4,
    malleable: bool = True,
) -> ApplicationModel:
    """Build the CoreNeuron application model (see :func:`nest_model`)."""
    return ApplicationModel(
        profile=coreneuron_profile(chunks_per_thread=chunks_per_thread),
        total_work=total_work,
        iterations=iterations,
        malleable=malleable,
    )
