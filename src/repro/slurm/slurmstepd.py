"""slurmstepd — the per-step daemon that actually launches tasks.

In SLURM, slurmd forks one slurmstepd per job step and node; slurmstepd sets
up the environment, applies the CPU mask computed by the task/affinity plugin
(``pre_launch``) and execs the task.  When the task ends it runs the plugin's
``post_term``.  In this reproduction the "exec" step returns a
:class:`TaskLaunch` record that the workload runner turns into an
:class:`~repro.runtime.process.ApplicationProcess`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cpuset.mask import CpuSet
from repro.slurm.task_affinity import TaskAffinityPlugin

_pid_counter = itertools.count(1000)


def allocate_pid() -> int:
    """Globally unique fake pid for a launched task."""
    return next(_pid_counter)


@dataclass(frozen=True)
class TaskLaunch:
    """Everything the launched task needs to register itself with DLB."""

    job_id: int
    node: str
    task_index: int
    global_rank: int
    pid: int
    mask: CpuSet
    environ: dict[str, str] = field(default_factory=dict)


class Slurmstepd:
    """One job step on one node."""

    def __init__(
        self,
        job_id: int,
        node_name: str,
        plugin: TaskAffinityPlugin,
        base_environ: dict[str, str] | None = None,
    ) -> None:
        self.job_id = job_id
        self.node_name = node_name
        self._plugin = plugin
        self._base_environ = dict(base_environ or {})
        self._launches: list[TaskLaunch] = []
        self._terminated: set[int] = set()

    # -- (2) pre_launch + exec ---------------------------------------------------

    def launch_tasks(self, task_masks: list[CpuSet], first_global_rank: int = 0) -> list[TaskLaunch]:
        """Apply masks and "exec" the local tasks of this step.

        ``task_masks`` comes from the plugin's ``launch_request``; one pid is
        allocated per task and ``DROM_PreInit`` is called for it, producing the
        ``next_environ`` the child inherits.
        """
        if self._launches:
            raise RuntimeError(f"step for job {self.job_id} on {self.node_name} already launched")
        launches: list[TaskLaunch] = []
        for index, _mask in enumerate(task_masks):
            pid = allocate_pid()
            result = self._plugin.pre_launch(self.job_id, index, pid)
            environ = dict(self._base_environ)
            environ.update(result.next_environ)
            environ["SLURM_JOB_ID"] = str(self.job_id)
            environ["SLURM_PROCID"] = str(first_global_rank + index)
            environ["SLURMD_NODENAME"] = self.node_name
            placement_mask = self._plugin.job_mask(self.job_id)
            del placement_mask  # informational only; per-task mask below
            launches.append(
                TaskLaunch(
                    job_id=self.job_id,
                    node=self.node_name,
                    task_index=index,
                    global_rank=first_global_rank + index,
                    pid=pid,
                    mask=CpuSet.parse(result.next_environ["DLB_DROM_PREINIT_MASK"]),
                    environ=environ,
                )
            )
        self._launches = launches
        return list(launches)

    def launches(self) -> list[TaskLaunch]:
        return list(self._launches)

    # -- (4) post_term ---------------------------------------------------------------

    def task_terminated(self, task_index: int) -> None:
        """Run the plugin's ``post_term`` for one finished task."""
        if task_index in self._terminated:
            return
        self._plugin.post_term(self.job_id, task_index)
        self._terminated.add(task_index)

    def step_terminated(self) -> None:
        """Finalise every task of the step (idempotent)."""
        for launch in self._launches:
            self.task_terminated(launch.task_index)

    @property
    def all_terminated(self) -> bool:
        return len(self._terminated) == len(self._launches) and bool(self._launches)
