"""DROM-aware node-selection policies for the controller.

The paper's future work suggests that, combined with a job scheduler, DROM can
support "new scheduling policies based on malleability … or at resource
management level, by choosing as 'victim' nodes the ones with lower
utilization".  This module provides that hook: a
:class:`NodeSelectionPolicy` orders the candidate nodes slurmctld considers
for a job, and the DROM statistics module (:mod:`repro.core.stats`) supplies
the utilisation data the smarter policies need.

Policies:

* :class:`FirstFit` — the stock behaviour: nodes in configuration order.
* :class:`LeastAllocatedFirst` — prefer nodes with the fewest allocated CPUs
  (spreads co-allocation pressure).
* :class:`LowestUtilisationFirst` — prefer nodes whose *measured* utilisation
  is lowest, i.e. pick as victims the nodes whose current occupants make the
  worst use of their CPUs.  Falls back to allocation counts for nodes without
  statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping, Sequence

from repro.slurm.slurmctld import NodeState

#: Callback returning the measured utilisation of a node in [0, 1] (usually
#: ``StatsModule.node_summary().utilisation`` of the node's slurmd), or None
#: when no statistics are available yet.
UtilisationProvider = Callable[[str], float | None]


class NodeSelectionPolicy(ABC):
    """Orders candidate nodes for a job (most preferred first)."""

    name: str = "abstract"

    @abstractmethod
    def order(self, candidates: Sequence[NodeState]) -> list[NodeState]:
        """Return the candidates in preference order (no filtering)."""


def build_node_policy(
    name: str, utilisation: UtilisationProvider
) -> NodeSelectionPolicy:
    """Build a policy from its registry name (see :data:`NODE_POLICY_FACTORIES`)."""
    try:
        factory = NODE_POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown node policy name {name!r}; "
            f"choose from {sorted(NODE_POLICY_FACTORIES)}"
        ) from None
    return factory(utilisation)


class FirstFit(NodeSelectionPolicy):
    """Configuration order — what the unmodified slurmctld does."""

    name = "first-fit"

    def order(self, candidates: Sequence[NodeState]) -> list[NodeState]:
        return list(candidates)


class LeastAllocatedFirst(NodeSelectionPolicy):
    """Prefer nodes with the fewest allocated CPUs, then fewer tasks."""

    name = "least-allocated"

    def order(self, candidates: Sequence[NodeState]) -> list[NodeState]:
        return sorted(
            candidates, key=lambda s: (s.allocated_cpus, s.running_tasks, s.name)
        )


class LowestUtilisationFirst(NodeSelectionPolicy):
    """Prefer the nodes whose occupants use their CPUs the least.

    ``utilisation`` is supplied per node by a callback (wired to the DROM
    statistics module by the caller).  Nodes without data sort by allocation,
    after nodes with data — an idle or badly-utilised node is always a better
    victim than an unknown one only if it actually reports low utilisation.
    """

    name = "lowest-utilisation"

    def __init__(self, utilisation: UtilisationProvider | Mapping[str, float]) -> None:
        if callable(utilisation):
            self._lookup: UtilisationProvider = utilisation
        else:
            mapping = dict(utilisation)
            self._lookup = lambda name: mapping.get(name)

    def order(self, candidates: Sequence[NodeState]) -> list[NodeState]:
        def key(state: NodeState):
            value = self._lookup(state.name)
            if value is None:
                return (1, state.allocated_cpus, state.name)
            return (0, value, state.name)

        return sorted(candidates, key=key)


#: Single source of truth for by-name node policies: ``SchedulerRef``
#: validates against these names, the scenario runner builds from them.
#: Every factory takes the run's utilisation provider (only
#: ``lowest-utilisation`` actually uses it).
NODE_POLICY_FACTORIES: dict[str, Callable[[UtilisationProvider], NodeSelectionPolicy]] = {
    "first-fit": lambda utilisation: FirstFit(),
    "least-allocated": lambda utilisation: LeastAllocatedFirst(),
    "lowest-utilisation": LowestUtilisationFirst,
}
