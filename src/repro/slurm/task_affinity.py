"""The DROM-enabled ``task/affinity`` plugin.

Section 5 of the paper confines the whole SLURM modification to the
``task/affinity`` plugin, which is loaded by both slurmd and slurmstepd.  Its
job is to decide which CPUs of a node each task of each job runs on and to
apply that decision, through four entry points (numbers refer to Figure 2):

* ``launch_request`` (1)  — called in slurmd when a new job step is to be
  launched on the node.  It computes the CPU masks of the *new* job's tasks
  and, when other DROM jobs already run on the node, recomputes the masks of
  the *running* tasks too (equipartition, socket-aware).
* ``pre_launch`` (2)      — called in slurmstepd just before the task is
  execed.  It applies the computed mask using ``DROM_PreInit`` (2.1), which
  also shrinks the running tasks' masks in the DLB shared memory.
* ``post_term`` (4)       — called when a task ends; invokes
  ``DROM_PostFinalize`` (4.1), optionally returning stolen CPUs.
* ``release_resources`` (5) — called when a whole job ends; redistributes the
  freed CPUs to the still-running tasks with ``DROM_GetPidList`` /
  ``DROM_GetProcessMask`` / ``DROM_SetProcessMask`` (5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.drom import DromAdmin, PreInitResult
from repro.core.errors import DlbError
from repro.core.flags import DromFlags
from repro.cpuset.distribution import (
    DistributionPolicy,
    JobShare,
    SocketAwareEquipartition,
    split_among_tasks,
)
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@dataclass
class TaskPlacement:
    """Mask decision for one task of one job on one node."""

    job_id: int
    task_index: int
    mask: CpuSet
    pid: int | None = None


@dataclass
class LaunchPlan:
    """Outcome of ``launch_request``: placements for the new job and mask
    updates for already running jobs."""

    new_tasks: list[TaskPlacement] = field(default_factory=list)
    #: job_id -> list of (pid, new mask) for tasks that must shrink/expand.
    running_updates: dict[int, list[tuple[int, CpuSet]]] = field(default_factory=dict)


@dataclass
class _LocalJob:
    """Per-node record of a job with tasks on this node."""

    job_id: int
    tasks: list[TaskPlacement]
    requested_cpus: int
    malleable: bool
    #: Mask updates for already-running jobs computed by launch_request and
    #: not yet pushed through DROM_SetProcessMask (applied at pre_launch).
    pending_running_updates: dict[int, list[tuple[int, CpuSet]]] = field(
        default_factory=dict
    )

    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    def mask(self) -> CpuSet:
        total = CpuSet.empty()
        for task in self.tasks:
            total = total | task.mask
        return total


class TaskAffinityPlugin:
    """DROM-enabled CPU-placement plugin for one node.

    Parameters
    ----------
    topology:
        The node this plugin instance manages.
    admin:
        An attached DROM administrator on the node's shared memory.
    policy:
        Mask-distribution policy; defaults to the paper's socket-aware
        equipartition.
    drom_enabled:
        With False the plugin behaves like stock SLURM: it only places tasks
        on CPUs not used by any running job and never touches running jobs
        (the Serial baseline).
    """

    def __init__(
        self,
        topology: NodeTopology,
        admin: DromAdmin,
        policy: DistributionPolicy | None = None,
        drom_enabled: bool = True,
    ) -> None:
        self.topology = topology
        self.admin = admin
        self.policy = policy or SocketAwareEquipartition()
        self.drom_enabled = drom_enabled
        self._jobs: dict[int, _LocalJob] = {}

    # -- queries ---------------------------------------------------------------

    def local_jobs(self) -> list[int]:
        return list(self._jobs.keys())

    def job_mask(self, job_id: int) -> CpuSet:
        return self._jobs[job_id].mask()

    def used_mask(self) -> CpuSet:
        used = CpuSet.empty()
        for job in self._jobs.values():
            used = used | job.mask()
        return used

    def free_mask(self) -> CpuSet:
        return self.topology.full_mask() - self.used_mask()

    # -- (1) launch_request -------------------------------------------------------

    def launch_request(
        self,
        job_id: int,
        ntasks: int,
        cpus_per_task: int,
        malleable: bool = True,
    ) -> LaunchPlan:
        """Compute masks for a new job step arriving on this node."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already has tasks on node {self.topology.name}")
        requested = ntasks * cpus_per_task

        if not self.drom_enabled or not self._jobs:
            return self._plan_on_free_cpus(job_id, ntasks, requested, malleable)

        # DROM path with running jobs: recompute everyone's share.
        shares = [
            JobShare(
                job_id=jid,
                ntasks=job.ntasks,
                requested_cpus=job.requested_cpus,
            )
            for jid, job in self._jobs.items()
        ]
        shares.append(JobShare(job_id=job_id, ntasks=ntasks, requested_cpus=requested))
        allocations = self.policy.distribute(self.topology, shares)

        plan = LaunchPlan()
        for jid, job in self._jobs.items():
            new_alloc = allocations[jid]
            new_task_masks = split_among_tasks(new_alloc.mask, job.ntasks)
            updates: list[tuple[int, CpuSet]] = []
            for task, new_mask in zip(job.tasks, new_task_masks):
                if task.mask != new_mask:
                    updates.append((task.pid if task.pid is not None else -1, new_mask))
                    task.mask = new_mask
            if updates:
                plan.running_updates[jid] = updates

        new_alloc = allocations[job_id]
        new_task_masks = split_among_tasks(new_alloc.mask, ntasks)
        plan.new_tasks = [
            TaskPlacement(job_id=job_id, task_index=i, mask=mask)
            for i, mask in enumerate(new_task_masks)
        ]
        self._jobs[job_id] = _LocalJob(
            job_id=job_id,
            tasks=list(plan.new_tasks),
            requested_cpus=requested,
            malleable=malleable,
            pending_running_updates={k: list(v) for k, v in plan.running_updates.items()},
        )
        return plan

    def _plan_on_free_cpus(
        self, job_id: int, ntasks: int, requested: int, malleable: bool
    ) -> LaunchPlan:
        """Stock behaviour: place the job on currently unused CPUs only."""
        free = self.free_mask()
        grant = free.first(min(requested, free.count()))
        if grant.count() < ntasks:
            raise ValueError(
                f"node {self.topology.name} has only {free.count()} free CPUs; "
                f"cannot launch {ntasks} tasks of job {job_id} without oversubscription"
            )
        task_masks = split_among_tasks(grant, ntasks)
        plan = LaunchPlan(
            new_tasks=[
                TaskPlacement(job_id=job_id, task_index=i, mask=mask)
                for i, mask in enumerate(task_masks)
            ]
        )
        self._jobs[job_id] = _LocalJob(
            job_id=job_id,
            tasks=list(plan.new_tasks),
            requested_cpus=requested,
            malleable=malleable,
        )
        return plan

    # -- (2) pre_launch ------------------------------------------------------------

    def pre_launch(self, job_id: int, task_index: int, pid: int) -> PreInitResult:
        """Apply the computed mask to a starting task via ``DROM_PreInit``.

        Before the first task of the step is pre-initialised, the new masks
        computed for the *running* tasks are pushed through
        ``DROM_SetProcessMask`` (the "update the other running task's mask"
        part of Figure 2); those tasks pick the change up at their next
        malleability point (``DLB_PollDROM``).
        """
        job = self._jobs[job_id]
        self._apply_running_updates(job)
        placement = job.tasks[task_index]
        placement.pid = pid
        flags = DromFlags.STEAL if self.drom_enabled else DromFlags.NONE
        result = self.admin.pre_init(pid, placement.mask, flags)
        if result.code.is_error():
            raise RuntimeError(
                f"DROM_PreInit failed for job {job_id} task {task_index} "
                f"(pid {pid}): {result.code.name}"
            )
        return result

    def _apply_running_updates(self, job: _LocalJob) -> None:
        """Push pending mask changes of already-running tasks into DROM."""
        if not job.pending_running_updates:
            return
        registered = set(self.admin.get_pid_list())
        for _jid, updates in job.pending_running_updates.items():
            for pid, mask in updates:
                if pid < 0 or pid not in registered:
                    continue
                code = self.admin.set_process_mask(pid, mask, DromFlags.STEAL)
                if code.is_error():
                    raise RuntimeError(
                        f"DROM_SetProcessMask({pid}) failed while re-partitioning "
                        f"node {self.topology.name}: {code.name}"
                    )
        job.pending_running_updates = {}

    # -- (4) post_term -----------------------------------------------------------------

    def post_term(self, job_id: int, task_index: int) -> DlbError:
        """Finalise one task via ``DROM_PostFinalize``."""
        job = self._jobs[job_id]
        placement = job.tasks[task_index]
        if placement.pid is None:
            return DlbError.DLB_NOUPDT
        code, _returned = self.admin.post_finalize(placement.pid, DromFlags.RETURN_STOLEN)
        return code

    # -- (5) release_resources -------------------------------------------------------------

    def release_resources(self, job_id: int) -> dict[int, CpuSet]:
        """Drop a finished job and hand its CPUs to still-running DROM jobs.

        Returns the new per-pid masks of expanded tasks.  Expansion is only
        possible for malleable jobs still registered in the DLB shared memory;
        the paper's example is job 2 expanding into job 1's CPUs once job 1
        completes.
        """
        job = self._jobs.pop(job_id, None)
        if job is None:
            return {}
        if not self.drom_enabled or not self._jobs:
            return {}

        # Re-distribute the whole node among the remaining jobs.
        shares = [
            JobShare(
                job_id=jid,
                ntasks=running.ntasks,
                # Allow expansion up to the full node regardless of the
                # original request: the paper's release path grows job 2 to
                # "keep maximum node utilization".
                requested_cpus=self.topology.ncpus,
            )
            for jid, running in self._jobs.items()
        ]
        allocations = self.policy.distribute(self.topology, shares)

        new_masks: dict[int, CpuSet] = {}
        registered = set(self.admin.get_pid_list())
        for jid, running in self._jobs.items():
            if not running.malleable:
                continue
            task_masks = split_among_tasks(allocations[jid].mask, running.ntasks)
            for task, mask in zip(running.tasks, task_masks):
                task.mask = mask
                if task.pid is not None and task.pid in registered:
                    code = self.admin.set_process_mask(task.pid, mask, DromFlags.STEAL)
                    if not code.is_error():
                        new_masks[task.pid] = mask
        return new_masks
