"""Job descriptions and lifecycle state.

A *job* is what a user submits: a request for a number of nodes, a number of
tasks (MPI ranks) and CPUs per task, plus the application to run.  The states
and timestamps tracked here are what the paper's system metrics are computed
from: response time = (start - submit) + run time, total workload run time =
last job end - first job submission.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from functools import cached_property
from typing import Any, Optional


@dataclass(frozen=True)
class ResourceRequest:
    """Per-job resource ask, as slurmctld sees it.

    This is the single home of the request invariants (positive counts,
    ntasks divisibility, bound ordering): :class:`JobSpec` validates by
    building its :attr:`JobSpec.request`, and the workload layer attaches
    instances directly to its jobs.

    Parameters
    ----------
    nodes:
        Number of nodes the job requests.
    ntasks:
        Total MPI ranks, distributed block-wise over the granted nodes; must
        be divisible by ``nodes``.
    cpus_per_task:
        CPUs (threads) requested per rank.
    min_nodes / max_nodes:
        Optional malleability bounds.  A malleable job with ``min_nodes <
        nodes`` accepts a shrunk placement on fewer nodes when the full
        request does not fit; one with ``max_nodes > nodes`` may be granted
        extra free nodes (spreading its ranks wider so DROM can expand their
        masks further).  ``None`` pins the bound to ``nodes``.  The bounds
        are honoured only for malleable jobs — rigid jobs are always placed
        at exactly ``nodes``.
    """

    nodes: int
    ntasks: int
    cpus_per_task: int
    min_nodes: Optional[int] = None
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("a job must request at least one node")
        if self.ntasks <= 0:
            raise ValueError("a job must have at least one task")
        if self.cpus_per_task <= 0:
            raise ValueError("cpus_per_task must be positive")
        if self.ntasks % self.nodes != 0:
            raise ValueError(
                "ntasks must be divisible by nodes (block distribution of ranks)"
            )
        if self.min_nodes is not None and not 1 <= self.min_nodes <= self.nodes:
            raise ValueError("min_nodes must be in [1, nodes]")
        if self.max_nodes is not None and self.max_nodes < self.nodes:
            raise ValueError("max_nodes must be >= nodes")

    @classmethod
    def for_app(
        cls,
        app,
        nodes: int,
        min_nodes: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> "ResourceRequest":
        """The request an app configuration implies on ``nodes`` nodes.

        ``nodes`` is deliberately required: the paper's two-node default is a
        workload-layer concept (``repro.workload.configs.EVALUATION_NODES``),
        and importing it here would point the substrate back up the stack —
        :meth:`WorkloadJob.resource_request` owns the defaulting.
        """
        return cls(
            nodes=nodes,
            ntasks=app.config.mpi_ranks,
            cpus_per_task=app.config.threads_per_rank,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
        )

    @property
    def tasks_per_node(self) -> int:
        return self.ntasks // self.nodes

    @property
    def cpus_per_node(self) -> int:
        """CPUs the job requests on each node."""
        return self.tasks_per_node * self.cpus_per_task

    @property
    def effective_min_nodes(self) -> int:
        return self.min_nodes if self.min_nodes is not None else self.nodes

    @property
    def effective_max_nodes(self) -> int:
        return self.max_nodes if self.max_nodes is not None else self.nodes

    def tasks_on(self, nnodes: int) -> int:
        """Tasks per node when the job runs on ``nnodes`` nodes."""
        if nnodes <= 0 or self.ntasks % nnodes != 0:
            raise ValueError(
                f"{self.ntasks} tasks cannot be distributed evenly "
                f"over {nnodes} node(s)"
            )
        return self.ntasks // nnodes

    def cpus_per_node_on(self, nnodes: int) -> int:
        """CPUs requested on each node when running on ``nnodes`` nodes."""
        return self.tasks_on(nnodes) * self.cpus_per_task

    def placement_candidates(self, expand: bool = True) -> list[int]:
        """Node counts the job accepts, preferred (widest) first.

        Only counts that divide ``ntasks`` evenly are usable (block
        distribution).  ``expand=False`` caps the list at the requested
        ``nodes`` — used for shared (co-allocated) placement, where grabbing
        extra nodes would be antisocial.
        """
        top = self.effective_max_nodes if expand else self.nodes
        return [
            n
            for n in range(top, self.effective_min_nodes - 1, -1)
            if self.ntasks % n == 0
        ]

    def effective_config(self, config):
        """The app configuration this request actually runs: the model builds
        one rank plan per requested task, so a request that deviates from the
        Table-1 shape re-partitions the same total work over its own ranks."""
        if (
            config.mpi_ranks == self.ntasks
            and config.threads_per_rank == self.cpus_per_task
        ):
            return config
        from repro.apps.base import AppConfig

        return AppConfig(
            label=config.label,
            mpi_ranks=self.ntasks,
            threads_per_rank=self.cpus_per_task,
        )


class JobState(Enum):
    """SLURM-like job lifecycle."""

    PENDING = auto()
    CONFIGURING = auto()
    RUNNING = auto()
    COMPLETED = auto()
    CANCELLED = auto()
    FAILED = auto()

    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED)


@dataclass(frozen=True)
class JobSpec:
    """Static description of a submitted job.

    Parameters
    ----------
    name:
        Human-readable job name (e.g. ``"NEST Conf. 1"``).
    nodes:
        Number of nodes requested.
    ntasks:
        Total number of tasks (MPI ranks); they are distributed round-robin
        over the allocated nodes.
    cpus_per_task:
        CPUs requested per task (the OpenMP/OmpSs threads per rank).
    application:
        Opaque handle describing what the tasks execute — the workload runner
        stores an application-model factory here.  The SLURM layer never looks
        inside it.
    malleable:
        Whether the job registers with DLB and accepts DROM mask changes.
        Non-malleable jobs are placed only on CPUs nobody else uses.
    priority:
        Larger values are scheduled first among pending jobs (use case 2's
        high-priority job).
    min_nodes / max_nodes:
        Optional malleability bounds on the node count.  ``min_nodes <
        nodes`` lets the controller start the job shrunk onto fewer nodes
        when the full request does not fit; ``max_nodes > nodes`` lets it
        grant extra free nodes.  ``None`` pins the bound to ``nodes``
        (rigid placement, the stock-SLURM default).  The bounds are only
        honoured for malleable jobs — a non-malleable job is always placed
        at exactly ``nodes``.
    """

    name: str
    nodes: int
    ntasks: int
    cpus_per_task: int
    application: Any = None
    malleable: bool = True
    priority: int = 0
    min_nodes: Optional[int] = None
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        # Building the request runs the shared invariants (positive counts,
        # ntasks divisibility, bound ordering) — a spec is valid iff its
        # request is.
        self.request

    @cached_property
    def request(self) -> ResourceRequest:
        """This spec's resource ask — the single source of the sizing
        invariants and node-count arithmetic, shared with the workload layer.
        Cached: the scheduler consults it on every placement attempt, and the
        spec is frozen (``cached_property`` writes to ``__dict__`` directly,
        bypassing the frozen ``__setattr__``)."""
        return ResourceRequest(
            nodes=self.nodes,
            ntasks=self.ntasks,
            cpus_per_task=self.cpus_per_task,
            min_nodes=self.min_nodes,
            max_nodes=self.max_nodes,
        )

    @property
    def tasks_per_node(self) -> int:
        return self.request.tasks_per_node

    @property
    def cpus_per_node(self) -> int:
        """CPUs the job requests on each node."""
        return self.request.cpus_per_node

    def tasks_on(self, nnodes: int) -> int:
        """Tasks per node when the job runs on ``nnodes`` nodes."""
        return self.request.tasks_on(nnodes)

    def cpus_per_node_on(self, nnodes: int) -> int:
        """CPUs requested on each node when running on ``nnodes`` nodes."""
        return self.request.cpus_per_node_on(nnodes)

    def placement_candidates(self, expand: bool = True) -> list[int]:
        """Node counts the controller may place this job on, widest first:
        the malleability bounds for malleable jobs, exactly ``nodes`` for
        rigid ones (see :meth:`ResourceRequest.placement_candidates`)."""
        if not self.malleable:
            return [self.nodes]
        return self.request.placement_candidates(expand=expand)


_job_ids = itertools.count(1)


def _next_job_id() -> int:
    return next(_job_ids)


@dataclass
class Job:
    """A submitted job with its lifecycle bookkeeping."""

    spec: JobSpec
    job_id: int = field(default_factory=_next_job_id)
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Node names allocated to the job (set by the controller).
    allocated_nodes: tuple[str, ...] = ()
    #: Why the job is still pending (for inspection, mirrors squeue's REASON).
    pending_reason: str = ""

    # -- timestamps / metrics --------------------------------------------------

    @property
    def wait_time(self) -> float:
        """Time spent in the queue (start - submit)."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        """Execution time (end - start)."""
        if self.start_time is None or self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        """Wait time plus run time — the paper's per-job metric."""
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.submit_time

    # -- state transitions ----------------------------------------------------------

    def mark_submitted(self, time: float) -> None:
        self.submit_time = time
        self.state = JobState.PENDING

    def mark_started(self, time: float, nodes: tuple[str, ...]) -> None:
        if self.state is not JobState.PENDING and self.state is not JobState.CONFIGURING:
            raise ValueError(f"job {self.job_id} cannot start from state {self.state.name}")
        self.start_time = time
        self.allocated_nodes = nodes
        self.state = JobState.RUNNING
        self.pending_reason = ""

    def mark_completed(self, time: float) -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"job {self.job_id} cannot complete from state {self.state.name}")
        self.end_time = time
        self.state = JobState.COMPLETED

    def mark_cancelled(self, time: float) -> None:
        self.end_time = time
        self.state = JobState.CANCELLED

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, name={self.spec.name!r}, state={self.state.name}, "
            f"submit={self.submit_time}, start={self.start_time}, end={self.end_time})"
        )
