"""Job descriptions and lifecycle state.

A *job* is what a user submits: a request for a number of nodes, a number of
tasks (MPI ranks) and CPUs per task, plus the application to run.  The states
and timestamps tracked here are what the paper's system metrics are computed
from: response time = (start - submit) + run time, total workload run time =
last job end - first job submission.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Optional


class JobState(Enum):
    """SLURM-like job lifecycle."""

    PENDING = auto()
    CONFIGURING = auto()
    RUNNING = auto()
    COMPLETED = auto()
    CANCELLED = auto()
    FAILED = auto()

    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED)


@dataclass(frozen=True)
class JobSpec:
    """Static description of a submitted job.

    Parameters
    ----------
    name:
        Human-readable job name (e.g. ``"NEST Conf. 1"``).
    nodes:
        Number of nodes requested.
    ntasks:
        Total number of tasks (MPI ranks); they are distributed round-robin
        over the allocated nodes.
    cpus_per_task:
        CPUs requested per task (the OpenMP/OmpSs threads per rank).
    application:
        Opaque handle describing what the tasks execute — the workload runner
        stores an application-model factory here.  The SLURM layer never looks
        inside it.
    malleable:
        Whether the job registers with DLB and accepts DROM mask changes.
        Non-malleable jobs are placed only on CPUs nobody else uses.
    priority:
        Larger values are scheduled first among pending jobs (use case 2's
        high-priority job).
    """

    name: str
    nodes: int
    ntasks: int
    cpus_per_task: int
    application: Any = None
    malleable: bool = True
    priority: int = 0

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("a job must request at least one node")
        if self.ntasks <= 0:
            raise ValueError("a job must have at least one task")
        if self.cpus_per_task <= 0:
            raise ValueError("cpus_per_task must be positive")
        if self.ntasks % self.nodes != 0:
            raise ValueError(
                "ntasks must be divisible by nodes (block distribution of ranks)"
            )

    @property
    def tasks_per_node(self) -> int:
        return self.ntasks // self.nodes

    @property
    def cpus_per_node(self) -> int:
        """CPUs the job requests on each node."""
        return self.tasks_per_node * self.cpus_per_task


_job_ids = itertools.count(1)


def _next_job_id() -> int:
    return next(_job_ids)


@dataclass
class Job:
    """A submitted job with its lifecycle bookkeeping."""

    spec: JobSpec
    job_id: int = field(default_factory=_next_job_id)
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Node names allocated to the job (set by the controller).
    allocated_nodes: tuple[str, ...] = ()
    #: Why the job is still pending (for inspection, mirrors squeue's REASON).
    pending_reason: str = ""

    # -- timestamps / metrics --------------------------------------------------

    @property
    def wait_time(self) -> float:
        """Time spent in the queue (start - submit)."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        """Execution time (end - start)."""
        if self.start_time is None or self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        """Wait time plus run time — the paper's per-job metric."""
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.submit_time

    # -- state transitions ----------------------------------------------------------

    def mark_submitted(self, time: float) -> None:
        self.submit_time = time
        self.state = JobState.PENDING

    def mark_started(self, time: float, nodes: tuple[str, ...]) -> None:
        if self.state is not JobState.PENDING and self.state is not JobState.CONFIGURING:
            raise ValueError(f"job {self.job_id} cannot start from state {self.state.name}")
        self.start_time = time
        self.allocated_nodes = nodes
        self.state = JobState.RUNNING
        self.pending_reason = ""

    def mark_completed(self, time: float) -> None:
        if self.state is not JobState.RUNNING:
            raise ValueError(f"job {self.job_id} cannot complete from state {self.state.name}")
        self.end_time = time
        self.state = JobState.COMPLETED

    def mark_cancelled(self, time: float) -> None:
        self.end_time = time
        self.state = JobState.CANCELLED

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, name={self.spec.name!r}, state={self.state.name}, "
            f"submit={self.submit_time}, start={self.start_time}, end={self.end_time})"
        )
