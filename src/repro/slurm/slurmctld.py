"""slurmctld — the cluster controller.

The controller keeps the pending-job queue and decides *which nodes* each job
runs on.  The paper deliberately leaves slurmctld's scheduling policy
unchanged ("the purpose is to give a proof of integration of DROM APIs, not to
present new scheduling policies"), so the policy here is plain FCFS with
priorities; the only DROM-specific addition is the co-allocation rule: a
malleable job may be placed on nodes that are already busy with other
malleable DROM jobs, as long as every task can still get at least one CPU
(no oversubscription), because the task/affinity plugin will repartition the
node CPUs among the co-allocated jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import Job, JobSpec, JobState
from repro.slurm.queue import JobQueue


@dataclass
class NodeState:
    """Controller-side view of one node."""

    name: str
    ncpus: int
    #: job_id -> (tasks on this node, cpus requested on this node, malleable)
    running: dict[int, tuple[int, int, bool]] = field(default_factory=dict)

    @property
    def allocated_cpus(self) -> int:
        return sum(cpus for _tasks, cpus, _m in self.running.values())

    @property
    def running_tasks(self) -> int:
        return sum(tasks for tasks, _cpus, _m in self.running.values())

    @property
    def idle(self) -> bool:
        return not self.running

    def all_malleable(self) -> bool:
        return all(m for _t, _c, m in self.running.values())


@dataclass
class SchedulingDecision:
    """One job the controller decided to start, with its node list."""

    job: Job
    nodes: tuple[str, ...]
    #: True when the job is being co-allocated with running jobs (DROM path).
    co_allocated: bool


class Slurmctld:
    """Cluster controller.

    Parameters
    ----------
    cluster:
        Hardware description of the managed partition.
    drom_enabled:
        Enables the co-allocation rule described above.
    backfill:
        When True, jobs behind a blocked job may start if they fit (simple
        backfilling without reservations).  The paper's workloads only have
        two jobs, so this mainly matters for the extended examples.
    node_policy:
        Optional :class:`~repro.slurm.policies.NodeSelectionPolicy` ordering
        the candidate nodes of a job (the paper's future-work "choose as
        victim the nodes with lower utilization").  ``None`` keeps the stock
        configuration order.
    probe:
        Optional :class:`~repro.obs.sched.ClusterProbe` notified at every
        job lifecycle edge (submit, launch, completion, cancellation).  The
        controller only ever *pushes* events to it — nothing here is polled,
        so scheduling cost is unchanged when no probe is attached.
    """

    def __init__(
        self,
        cluster: ClusterTopology,
        drom_enabled: bool = True,
        backfill: bool = False,
        node_policy=None,
        probe=None,
    ) -> None:
        self.cluster = cluster
        self.drom_enabled = drom_enabled
        self.backfill = backfill
        self.node_policy = node_policy
        self.probe = probe
        self.queue = JobQueue()
        self.nodes: dict[str, NodeState] = {
            node.name: NodeState(name=node.name, ncpus=node.ncpus)
            for node in cluster.nodes
        }
        self.jobs: dict[int, Job] = {}

    # -- submission ----------------------------------------------------------------

    def submit(self, spec: JobSpec, time: float) -> Job:
        """Submit a job at ``time``; it is queued pending scheduling.

        Rejected when no placement candidate fits the partition — note the
        narrowest *usable* width can exceed ``min_nodes`` when intermediate
        counts don't divide ``ntasks`` evenly — or when the placement logic
        itself cannot start the job on a **pristine** (fully idle) partition:
        admission is a dry run of :meth:`_place` against fresh node states,
        so the predicate can never drift from the placement arms (malleable
        jobs under DROM only need a CPU per task because the dry run's empty
        nodes satisfy the co-allocation arm, exactly like the scheduler).
        """
        narrowest = min(spec.placement_candidates())
        if narrowest > self.cluster.nnodes:
            raise ValueError(
                f"job {spec.name!r} needs at least {narrowest} "
                f"node(s) but the partition has only {self.cluster.nnodes}"
            )
        pristine = [
            NodeState(name=node.name, ncpus=node.ncpus)
            for node in self.cluster.nodes
        ]
        if self._place(spec, pristine) is None:
            raise ValueError(
                f"job {spec.name!r} can never be placed: every usable width "
                f"needs more CPUs per node than the partition's nodes have"
            )
        job = Job(spec=spec)
        job.mark_submitted(time)
        self.jobs[job.job_id] = job
        self.queue.push(job)
        if self.probe is not None:
            self.probe.job_submitted(job, time)
        return job

    def cancel(self, job_id: int, time: float) -> Job:
        job = self.jobs[job_id]
        was_pending = job.state is JobState.PENDING
        if was_pending:
            self.queue.remove(job_id)
        job.mark_cancelled(time)
        if self.probe is not None:
            self.probe.job_cancelled(job, time, was_pending)
        return job

    # -- scheduling -------------------------------------------------------------------

    def schedule(self, time: float) -> list[SchedulingDecision]:
        """One scheduling pass: start every queued job that fits (FCFS).

        Started jobs are marked RUNNING with ``time`` as their start time and
        removed from the queue; the caller (the workload runner / srun) is
        responsible for actually launching their tasks through slurmd.
        """
        decisions: list[SchedulingDecision] = []
        blocked = False
        skipped: list[Job] = []
        while self.queue:
            job = self.queue.pop()
            if blocked and not self.backfill:
                skipped.append(job)
                continue
            placement = self._select_nodes(job)
            if placement is None:
                job.pending_reason = "Resources"
                skipped.append(job)
                blocked = True
                continue
            nodes, co_allocated = placement
            self._commit(job, nodes)
            job.mark_started(time, nodes)
            decisions.append(
                SchedulingDecision(job=job, nodes=nodes, co_allocated=co_allocated)
            )
            if self.probe is not None:
                # Post-commit states: the samples see the new allocation (a
                # shrunk/widened grant shows as the actual node count).
                self.probe.job_started(
                    job, time, [self.nodes[n] for n in nodes], co_allocated
                )
        for job in skipped:
            self.queue.push(job)
        return decisions

    def _select_nodes(self, job: Job) -> tuple[tuple[str, ...], bool] | None:
        """Pick nodes for ``job`` or return ``None`` if it cannot start now."""
        return self._place(job.spec, self._ordered_nodes())

    def _place(
        self, spec: JobSpec, ordered_states: list[NodeState]
    ) -> tuple[tuple[str, ...], bool] | None:
        """Try to place ``spec`` on the given node states.

        This is the single source of placement truth: scheduling runs it
        against the live node states (in policy order), and admission dry-runs
        it against a pristine copy of the partition.

        Jobs of different sizes coexist: each candidate node count of the job
        (its requested ``nodes``, widened up to ``max_nodes`` or shrunk down
        to ``min_nodes`` for malleable requests; rigid jobs have exactly one
        candidate) is tried widest-first, and per-node capacity is checked
        with the task/CPU counts *of that node count* — so a 1-node analytics
        job packs beside the leftovers of a 4-node simulation on a partly-used
        partition.
        """
        # First preference: exclusive placement on nodes with enough free CPUs
        # (this is all stock SLURM can do).
        for nnodes in spec.placement_candidates():
            cpus_needed = spec.cpus_per_node_on(nnodes)
            free_nodes = [
                state.name
                for state in ordered_states
                if state.ncpus - state.allocated_cpus >= cpus_needed
            ]
            if len(free_nodes) >= nnodes:
                return tuple(free_nodes[:nnodes]), False

        # DROM path: co-allocate with running malleable jobs.  Never widen
        # beyond the requested node count here — widening happens only on the
        # exclusive path above (nodes with enough *free* CPUs), so a job never
        # grabs extra nodes by squeezing in beside other jobs.
        if self.drom_enabled and spec.malleable:
            for nnodes in spec.placement_candidates(expand=False):
                tasks = spec.tasks_on(nnodes)
                cpus_needed = tasks * spec.cpus_per_task
                candidates = []
                for state in ordered_states:
                    fits_free = state.ncpus - state.allocated_cpus >= cpus_needed
                    fits_shared = (
                        state.all_malleable()
                        and state.running_tasks + tasks <= state.ncpus
                    )
                    if fits_free or fits_shared:
                        candidates.append(state.name)
                if len(candidates) >= nnodes:
                    return tuple(candidates[:nnodes]), True
        return None

    def _ordered_nodes(self) -> list[NodeState]:
        states = list(self.nodes.values())
        if self.node_policy is None:
            return states
        return list(self.node_policy.order(states))

    def _commit(self, job: Job, nodes: tuple[str, ...]) -> None:
        # Granted node count may differ from the requested one (malleability
        # bounds), so per-node bookkeeping uses the actual allocation.
        tasks = job.spec.tasks_on(len(nodes))
        cpus = tasks * job.spec.cpus_per_task
        for name in nodes:
            self.nodes[name].running[job.job_id] = (tasks, cpus, job.spec.malleable)

    # -- completion ---------------------------------------------------------------------

    def job_completed(self, job_id: int, time: float) -> Job:
        """Mark a running job completed and free its controller-side resources."""
        job = self.jobs[job_id]
        job.mark_completed(time)
        freed = [
            state for state in self.nodes.values() if job_id in state.running
        ]
        for state in freed:
            state.running.pop(job_id, None)
        if self.probe is not None:
            # Post-release states: the samples show the freed CPUs.
            self.probe.job_completed(job, time, freed)
        return job

    # -- queries --------------------------------------------------------------------------

    def pending_jobs(self) -> list[Job]:
        return self.queue.jobs()

    def running_jobs(self) -> list[Job]:
        return [job for job in self.jobs.values() if job.state is JobState.RUNNING]

    def completed_jobs(self) -> list[Job]:
        return [job for job in self.jobs.values() if job.state is JobState.COMPLETED]

    def all_done(self) -> bool:
        return all(job.state.is_terminal() for job in self.jobs.values())
