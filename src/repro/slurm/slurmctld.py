"""slurmctld — the cluster controller.

The controller keeps the pending-job queue and decides *which nodes* each job
runs on.  The paper deliberately leaves slurmctld's scheduling policy
unchanged ("the purpose is to give a proof of integration of DROM APIs, not to
present new scheduling policies"), so the policy here is plain FCFS with
priorities; the only DROM-specific addition is the co-allocation rule: a
malleable job may be placed on nodes that are already busy with other
malleable DROM jobs, as long as every task can still get at least one CPU
(no oversubscription), because the task/affinity plugin will repartition the
node CPUs among the co-allocated jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpuset.topology import ClusterTopology
from repro.slurm.jobs import Job, JobSpec, JobState
from repro.slurm.queue import JobQueue


@dataclass
class NodeState:
    """Controller-side view of one node."""

    name: str
    ncpus: int
    #: job_id -> (tasks on this node, cpus requested on this node, malleable)
    running: dict[int, tuple[int, int, bool]] = field(default_factory=dict)

    @property
    def allocated_cpus(self) -> int:
        return sum(cpus for _tasks, cpus, _m in self.running.values())

    @property
    def running_tasks(self) -> int:
        return sum(tasks for tasks, _cpus, _m in self.running.values())

    @property
    def idle(self) -> bool:
        return not self.running

    def all_malleable(self) -> bool:
        return all(m for _t, _c, m in self.running.values())


@dataclass
class SchedulingDecision:
    """One job the controller decided to start, with its node list."""

    job: Job
    nodes: tuple[str, ...]
    #: True when the job is being co-allocated with running jobs (DROM path).
    co_allocated: bool


class Slurmctld:
    """Cluster controller.

    Parameters
    ----------
    cluster:
        Hardware description of the managed partition.
    drom_enabled:
        Enables the co-allocation rule described above.
    backfill:
        When True, jobs behind a blocked job may start if they fit (simple
        backfilling without reservations).  The paper's workloads only have
        two jobs, so this mainly matters for the extended examples.
    node_policy:
        Optional :class:`~repro.slurm.policies.NodeSelectionPolicy` ordering
        the candidate nodes of a job (the paper's future-work "choose as
        victim the nodes with lower utilization").  ``None`` keeps the stock
        configuration order.
    """

    def __init__(
        self,
        cluster: ClusterTopology,
        drom_enabled: bool = True,
        backfill: bool = False,
        node_policy=None,
    ) -> None:
        self.cluster = cluster
        self.drom_enabled = drom_enabled
        self.backfill = backfill
        self.node_policy = node_policy
        self.queue = JobQueue()
        self.nodes: dict[str, NodeState] = {
            node.name: NodeState(name=node.name, ncpus=node.ncpus)
            for node in cluster.nodes
        }
        self.jobs: dict[int, Job] = {}

    # -- submission ----------------------------------------------------------------

    def submit(self, spec: JobSpec, time: float) -> Job:
        """Submit a job at ``time``; it is queued pending scheduling."""
        if spec.nodes > self.cluster.nnodes:
            raise ValueError(
                f"job {spec.name!r} requests {spec.nodes} nodes but the partition "
                f"has only {self.cluster.nnodes}"
            )
        job = Job(spec=spec)
        job.mark_submitted(time)
        self.jobs[job.job_id] = job
        self.queue.push(job)
        return job

    def cancel(self, job_id: int, time: float) -> Job:
        job = self.jobs[job_id]
        if job.state is JobState.PENDING:
            self.queue.remove(job_id)
        job.mark_cancelled(time)
        return job

    # -- scheduling -------------------------------------------------------------------

    def schedule(self, time: float) -> list[SchedulingDecision]:
        """One scheduling pass: start every queued job that fits (FCFS).

        Started jobs are marked RUNNING with ``time`` as their start time and
        removed from the queue; the caller (the workload runner / srun) is
        responsible for actually launching their tasks through slurmd.
        """
        decisions: list[SchedulingDecision] = []
        blocked = False
        skipped: list[Job] = []
        while self.queue:
            job = self.queue.pop()
            if blocked and not self.backfill:
                skipped.append(job)
                continue
            placement = self._select_nodes(job)
            if placement is None:
                job.pending_reason = "Resources"
                skipped.append(job)
                blocked = True
                continue
            nodes, co_allocated = placement
            self._commit(job, nodes)
            job.mark_started(time, nodes)
            decisions.append(
                SchedulingDecision(job=job, nodes=nodes, co_allocated=co_allocated)
            )
        for job in skipped:
            self.queue.push(job)
        return decisions

    def _select_nodes(self, job: Job) -> tuple[tuple[str, ...], bool] | None:
        """Pick nodes for ``job`` or return ``None`` if it cannot start now."""
        spec = job.spec
        ordered_states = self._ordered_nodes()

        # First preference: exclusive placement on nodes with enough free CPUs
        # (this is all stock SLURM can do).
        free_nodes = [
            state.name
            for state in ordered_states
            if state.ncpus - state.allocated_cpus >= spec.cpus_per_node
        ]
        if len(free_nodes) >= spec.nodes:
            return tuple(free_nodes[: spec.nodes]), False

        # DROM path: co-allocate with running malleable jobs.
        if self.drom_enabled and spec.malleable:
            candidates = []
            for state in ordered_states:
                fits_free = state.ncpus - state.allocated_cpus >= spec.cpus_per_node
                fits_shared = (
                    state.all_malleable()
                    and state.running_tasks + spec.tasks_per_node <= state.ncpus
                )
                if fits_free or fits_shared:
                    candidates.append(state.name)
            if len(candidates) >= spec.nodes:
                return tuple(candidates[: spec.nodes]), True
        return None

    def _ordered_nodes(self) -> list[NodeState]:
        states = list(self.nodes.values())
        if self.node_policy is None:
            return states
        return list(self.node_policy.order(states))

    def _commit(self, job: Job, nodes: tuple[str, ...]) -> None:
        for name in nodes:
            self.nodes[name].running[job.job_id] = (
                job.spec.tasks_per_node,
                job.spec.cpus_per_node,
                job.spec.malleable,
            )

    # -- completion ---------------------------------------------------------------------

    def job_completed(self, job_id: int, time: float) -> Job:
        """Mark a running job completed and free its controller-side resources."""
        job = self.jobs[job_id]
        job.mark_completed(time)
        for state in self.nodes.values():
            state.running.pop(job_id, None)
        return job

    # -- queries --------------------------------------------------------------------------

    def pending_jobs(self) -> list[Job]:
        return self.queue.jobs()

    def running_jobs(self) -> list[Job]:
        return [job for job in self.jobs.values() if job.state is JobState.RUNNING]

    def completed_jobs(self) -> list[Job]:
        return [job for job in self.jobs.values() if job.state is JobState.COMPLETED]

    def all_done(self) -> bool:
        return all(job.state.is_terminal() for job in self.jobs.values())
