"""The pending-job priority queue used by slurmctld.

SLURM keeps submitted jobs in a priority-ordered queue; within the same
priority FIFO order applies (the submission order).  The paper uses plain
FCFS for the Serial baseline and the same FCFS plus co-allocation for the
DROM scenario, with use case 2 adding a high-priority job.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from repro.slurm.jobs import Job, JobState


class JobQueue:
    """Priority queue of pending jobs (higher priority first, then FIFO)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._counter = itertools.count()

    def push(self, job: Job) -> None:
        """Enqueue a pending job."""
        if job.state is not JobState.PENDING:
            raise ValueError(f"only pending jobs can be queued, got {job.state.name}")
        heapq.heappush(self._heap, (-job.spec.priority, next(self._counter), job))

    def pop(self) -> Job:
        """Remove and return the highest-priority pending job."""
        if not self._heap:
            raise IndexError("pop from an empty job queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Job | None:
        """The job that would be popped next, or ``None`` if empty."""
        return self._heap[0][2] if self._heap else None

    def remove(self, job_id: int) -> Job | None:
        """Remove a specific job (e.g. scancel); returns it or ``None``."""
        for i, (_prio, _seq, job) in enumerate(self._heap):
            if job.job_id == job_id:
                removed = self._heap.pop(i)[2]
                heapq.heapify(self._heap)
                return removed
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Job]:
        """Iterate jobs in scheduling order (non-destructive)."""
        return iter(job for _prio, _seq, job in sorted(self._heap))

    def jobs(self) -> list[Job]:
        return list(self)
