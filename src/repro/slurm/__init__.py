"""Simulated SLURM with the DROM-enabled task/affinity plugin (Section 5).

The controller (:class:`Slurmctld`) keeps the job queue and picks nodes; the
per-node daemon (:class:`Slurmd`) owns the DLB shared memory and the
task/affinity plugin that computes and applies CPU masks; the step daemon
(:class:`Slurmstepd`) applies masks through ``DROM_PreInit`` and finalises
tasks through ``DROM_PostFinalize``; :class:`Srun` fans a job's launch out to
its allocated nodes.
"""

from repro.slurm.jobs import Job, JobSpec, JobState
from repro.slurm.launcher import JobLaunch, Srun
from repro.slurm.policies import (
    FirstFit,
    LeastAllocatedFirst,
    LowestUtilisationFirst,
    NodeSelectionPolicy,
)
from repro.slurm.queue import JobQueue
from repro.slurm.slurmctld import NodeState, SchedulingDecision, Slurmctld
from repro.slurm.slurmd import Slurmd, StepRecord
from repro.slurm.slurmstepd import Slurmstepd, TaskLaunch, allocate_pid
from repro.slurm.task_affinity import LaunchPlan, TaskAffinityPlugin, TaskPlacement

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobQueue",
    "Slurmctld",
    "NodeState",
    "SchedulingDecision",
    "Slurmd",
    "StepRecord",
    "Slurmstepd",
    "TaskLaunch",
    "allocate_pid",
    "Srun",
    "JobLaunch",
    "TaskAffinityPlugin",
    "TaskPlacement",
    "LaunchPlan",
    "NodeSelectionPolicy",
    "FirstFit",
    "LeastAllocatedFirst",
    "LowestUtilisationFirst",
]
