"""srun — launching the tasks of a scheduled job across its nodes.

In Figure 2 of the paper, srun (running inside the batch script of the job)
sends launch requests to the slurmd of every allocated node; each slurmd runs
the task/affinity plugin and forks a slurmstepd which applies the DROM masks
and execs the tasks.  This module reproduces that fan-out and returns the
per-task launch records the workload runner needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.slurm.jobs import Job
from repro.slurm.slurmd import Slurmd, StepRecord
from repro.slurm.slurmstepd import TaskLaunch


@dataclass
class JobLaunch:
    """All the task launches of one job, across its allocated nodes."""

    job: Job
    steps: dict[str, StepRecord] = field(default_factory=dict)

    def tasks(self) -> list[TaskLaunch]:
        """Every task launch, ordered by global rank."""
        all_tasks = [t for step in self.steps.values() for t in step.launches]
        return sorted(all_tasks, key=lambda t: t.global_rank)

    def tasks_on(self, node: str) -> list[TaskLaunch]:
        return list(self.steps[node].launches) if node in self.steps else []


class Srun:
    """The job-step launcher."""

    def __init__(self, slurmds: dict[str, Slurmd]) -> None:
        self._slurmds = dict(slurmds)

    def launch(self, job: Job, environ: dict[str, str] | None = None) -> JobLaunch:
        """Launch ``job`` on its allocated nodes (set by slurmctld).

        Tasks are distributed block-wise: the first ``tasks_per_node`` global
        ranks go to the first allocated node, and so on — matching how the
        paper's experiments place "2 MPI processes among 2 nodes".  The
        per-node task count comes from the *actual* allocation, which may be
        narrower or wider than the requested node count when the job carries
        malleability bounds.
        """
        if not job.allocated_nodes:
            raise ValueError(f"job {job.job_id} has no allocated nodes; schedule it first")
        launch = JobLaunch(job=job)
        tasks_per_node = job.spec.tasks_on(len(job.allocated_nodes))
        rank = 0
        for node_name in job.allocated_nodes:
            if node_name not in self._slurmds:
                raise KeyError(f"no slurmd registered for node {node_name!r}")
            slurmd = self._slurmds[node_name]
            record = slurmd.launch_job_step(
                job, first_global_rank=rank, ntasks=tasks_per_node, base_environ=environ
            )
            launch.steps[node_name] = record
            rank += tasks_per_node
        return launch

    def terminate(self, job: Job) -> dict[str, dict[int, object]]:
        """Terminate the job's steps on every node (post_term + release_resources).

        Returns, per node, the map of expanded pids to their new masks.
        """
        expansions: dict[str, dict[int, object]] = {}
        for node_name in job.allocated_nodes:
            slurmd = self._slurmds.get(node_name)
            if slurmd is None:
                continue
            expansions[node_name] = slurmd.job_step_completed(job.job_id)
        return expansions
