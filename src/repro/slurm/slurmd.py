"""slurmd — the per-node daemon.

slurmd owns the node-local pieces: the DLB shared memory segment, an attached
DROM administrator, and the DROM-enabled task/affinity plugin.  When srun asks
it to launch a job step it runs the plugin's ``launch_request`` (computing the
masks of new *and* running tasks), forks a :class:`Slurmstepd` for the step,
and later drives ``post_term`` / ``release_resources`` when tasks and jobs
finish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.drom import DromAdmin, attach_admin
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.distribution import DistributionPolicy
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology
from repro.slurm.jobs import Job
from repro.slurm.slurmstepd import Slurmstepd, TaskLaunch
from repro.slurm.task_affinity import LaunchPlan, TaskAffinityPlugin


@dataclass
class StepRecord:
    """A job step hosted by this node."""

    job_id: int
    stepd: Slurmstepd
    plan: LaunchPlan
    launches: list[TaskLaunch]


class Slurmd:
    """Node daemon: one instance per compute node.

    Parameters
    ----------
    topology:
        The node managed by this daemon.
    drom_enabled:
        Whether the DROM integration is active (False reproduces the stock
        SLURM Serial baseline).
    policy:
        Mask-distribution policy for co-allocated jobs.
    """

    def __init__(
        self,
        topology: NodeTopology,
        drom_enabled: bool = True,
        policy: DistributionPolicy | None = None,
    ) -> None:
        self.topology = topology
        self.name = topology.name
        self.shmem = NodeSharedMemory(topology)
        self.admin: DromAdmin = attach_admin(self.shmem)
        self.plugin = TaskAffinityPlugin(
            topology, self.admin, policy=policy, drom_enabled=drom_enabled
        )
        self.drom_enabled = drom_enabled
        self._steps: dict[int, StepRecord] = {}

    # -- job step launch -----------------------------------------------------------

    def launch_job_step(
        self,
        job: Job,
        first_global_rank: int,
        ntasks: int | None = None,
        base_environ: dict[str, str] | None = None,
    ) -> StepRecord:
        """Launch the local tasks of ``job`` on this node (Figure 2 flow).

        ``ntasks`` is the task count of this node's step; it defaults to the
        spec's nominal ``tasks_per_node`` but srun passes the count implied by
        the actual allocation (shrunk/widened jobs place more/fewer tasks per
        node than requested).
        """
        if job.job_id in self._steps:
            raise ValueError(f"job {job.job_id} already has a step on node {self.name}")
        plan = self.plugin.launch_request(
            job_id=job.job_id,
            ntasks=ntasks if ntasks is not None else job.spec.tasks_per_node,
            cpus_per_task=job.spec.cpus_per_task,
            malleable=job.spec.malleable,
        )
        stepd = Slurmstepd(job.job_id, self.name, self.plugin, base_environ)
        launches = stepd.launch_tasks(
            [placement.mask for placement in plan.new_tasks],
            first_global_rank=first_global_rank,
        )
        record = StepRecord(job_id=job.job_id, stepd=stepd, plan=plan, launches=launches)
        self._steps[job.job_id] = record
        return record

    def step(self, job_id: int) -> StepRecord:
        return self._steps[job_id]

    def has_step(self, job_id: int) -> bool:
        return job_id in self._steps

    def running_job_ids(self) -> list[int]:
        return list(self._steps.keys())

    # -- job completion ---------------------------------------------------------------

    def job_step_completed(self, job_id: int) -> dict[int, CpuSet]:
        """Handle the end of a job's step on this node.

        Runs ``post_term`` for every task and then ``release_resources``,
        which may expand the masks of the remaining jobs.  Returns the new
        per-pid masks of expanded tasks (empty when nothing expands).
        """
        record = self._steps.get(job_id)
        if record is None:
            return {}
        record.stepd.step_terminated()
        del self._steps[job_id]
        return self.plugin.release_resources(job_id)

    # -- node state ----------------------------------------------------------------------

    def used_cpus(self) -> int:
        return self.plugin.used_mask().count()

    def free_cpus(self) -> int:
        return self.plugin.free_mask().count()

    def running_tasks(self) -> int:
        return sum(len(record.launches) for record in self._steps.values())
