"""Query engine over stored traces, and scenario replay.

Two layers:

* :class:`TraceReader` — the figure-level queries over one trace (live or
  stored): per-job timelines, DROM mask-change sequences, per-step IPC
  series and histograms, and :class:`~repro.metrics.paraver.ParaverView`
  renderings.  It is deliberately lazy-friendly: constructed from a
  :class:`~repro.traces.store.TraceEntry` it only inflates the artifact when
  a query first needs the records.
* :func:`replay_scenario` — rebuilds a :class:`ScenarioReplay` from the two
  store tiers (metrics row + trace artifact).  A replay mirrors the slice of
  :class:`~repro.workload.runner.ScenarioResult` the reporting surface
  consumes (``metrics``, ``tracer``, ``workload``, ``end_time``,
  ``job_utilisation``), so the trace figures regenerate from a warm store
  without simulating — and byte-identically, because both the metrics row
  and the trace records survive their JSON round trips exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.campaign.spec import RunSpec
from repro.metrics.counters import CounterLog
from repro.metrics.paraver import ParaverView
from repro.metrics.tracing import MaskChangeRecord, Tracer
from repro.obs.sched import FairnessSummary, JobLifecycleRecord, NodeSample, SchedTimeline
from repro.traces.store import TraceEntry

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.campaign.runner import RunMetrics
    from repro.workload.workloads import Workload


class TraceReader:
    """Figure-level queries over one run's trace.

    Accepts either a live :class:`~repro.metrics.tracing.Tracer` or a stored
    :class:`~repro.traces.store.TraceEntry`; in the latter case the artifact
    is inflated on first query, not at construction.
    """

    def __init__(
        self,
        source: Union[Tracer, TraceEntry],
        header: dict | None = None,
        sched: SchedTimeline | None = None,
    ):
        self._source = source
        self._header = dict(header) if header is not None else (
            dict(source.header) if isinstance(source, TraceEntry) else {}
        )
        #: Scheduler timeline for live tracers (stored entries carry their
        #: own ``sched`` member; pre-v4 artifacts read as an empty timeline).
        self._sched = sched

    @cached_property
    def tracer(self) -> Tracer:
        if isinstance(self._source, TraceEntry):
            return self._source.tracer
        return self._source

    @property
    def header(self) -> dict:
        """The stored run header (empty for live tracers)."""
        return self._header

    # -- timelines (Figures 3/13) ------------------------------------------------

    def jobs(self) -> list[str]:
        return self.tracer.jobs()

    def job_intervals(self) -> dict[str, tuple[float, float]]:
        """Job label -> (first step start, last step end)."""
        return {job: self.tracer.span(job) for job in self.tracer.jobs()}

    def view(self, bin_seconds: float = 50.0) -> ParaverView:
        return ParaverView(self.tracer, bin_seconds=bin_seconds)

    def render_job_widths(
        self, jobs: list[str] | None = None, bin_seconds: float = 50.0
    ) -> str:
        """ASCII per-job thread-count timeline (the Figure 3/13 shape)."""
        return self.view(bin_seconds).render_job_widths(jobs or self.jobs())

    def render_thread_activity(self, job: str, bin_seconds: float = 50.0) -> str:
        """ASCII per-thread utilisation timeline (the Figure 5 view)."""
        return self.view(bin_seconds).render_thread_activity(job)

    # -- mask changes (Figure 5 / use case 2 expansion) ---------------------------

    def mask_change_sequence(self, job: str | None = None) -> list[MaskChangeRecord]:
        return self.tracer.mask_changes(job)

    def team_size_series(self, job: str, rank: int = 0) -> list[tuple[float, int]]:
        """(time, team size) transitions of one rank, initial size included."""
        changes = [
            c for c in self.tracer.mask_changes(job) if c.rank == rank
        ]
        series: list[tuple[float, int]] = []
        if changes:
            series.append((0.0, changes[0].old_threads))
        else:
            steps = self.tracer.steps(job, rank)
            if steps:
                series.append((steps[0].start, steps[0].nthreads))
        series.extend((c.time, c.new_threads) for c in changes)
        return series

    # -- windowed interval queries (lazy on stored traces) ------------------------

    def steps_between(
        self,
        lo: float,
        hi: float,
        job: str | None = None,
        rank: int | None = None,
    ):
        """Every step record overlapping the ``[lo, hi]`` time interval
        (``start <= hi and end >= lo``), in canonical ``(start, job, rank)``
        order, optionally restricted to one job/rank.

        On a stored v3 artifact whose full tracer has not yet been
        assembled, this routes through the entry's segment table and
        inflates only the segments whose time window overlaps the query —
        the results are identical to filtering the fully inflated tracer.
        """
        source = self._source
        if isinstance(source, TraceEntry) and "tracer" not in source.__dict__:
            steps = source.steps_between(lo, hi)
        else:
            steps = [
                s for s in self.tracer if s.start <= hi and s.end >= lo
            ]
        if job is not None:
            steps = [s for s in steps if s.job == job]
        if rank is not None:
            steps = [s for s in steps if s.rank == rank]
        return steps

    # -- scheduler timeline (fairness / utilization; ROADMAP item 4) ---------------

    @cached_property
    def sched(self) -> SchedTimeline:
        """The run's scheduler timeline.  Warm path: the stored entry's
        ``sched`` member inflates on first touch, with zero simulation."""
        if self._sched is not None:
            return self._sched
        if isinstance(self._source, TraceEntry):
            return self._source.sched
        return SchedTimeline()

    def queue_depth_series(self) -> list[tuple[float, int]]:
        """(time, pending-queue depth) at every scheduler event."""
        return self.sched.queue_depth_series()

    def utilization_series(self, node: str | None = None) -> list[NodeSample]:
        """Per-node busy-CPU/allocation samples, optionally for one node."""
        return self.sched.utilization_series(node)

    def job_lifecycle(self) -> list[JobLifecycleRecord]:
        """The per-job submit → start → end table, in submit order."""
        return self.sched.job_lifecycle()

    def fairness_summary(self) -> FairnessSummary:
        """p50/p95/max wait and bounded-slowdown percentiles of the run."""
        return self.sched.fairness_summary()

    # -- IPC (Figure 14) ----------------------------------------------------------

    def ipc_series(self, job: str, rank: int | None = None) -> list[tuple[float, float]]:
        """(step start, step IPC) in recording order."""
        return [(s.start, s.ipc) for s in self.tracer.steps(job, rank)]

    def ipc_series_between(
        self, lo: float, hi: float, job: str, rank: int | None = None
    ) -> list[tuple[float, float]]:
        """(step start, step IPC) restricted to steps overlapping
        ``[lo, hi]`` — windowed like :meth:`steps_between`, so stored
        traces inflate only the touched segments."""
        return [(s.start, s.ipc) for s in self.steps_between(lo, hi, job=job, rank=rank)]

    def counter_log(self) -> CounterLog:
        return self.tracer.counter_log()

    def ipc_histogram(
        self, job: str, bins: int = 20, range_: tuple[float, float] = (0.0, 2.0)
    ) -> np.ndarray:
        """IPC histogram aggregated over all the job's threads."""
        per_thread = self.counter_log().ipc_histogram(job, bins=bins, range_=range_)
        total = np.zeros(bins)
        for counts in per_thread.values():
            total += counts
        return total


# -- scenario replay -----------------------------------------------------------------


@dataclass(frozen=True)
class ReplayedMetrics:
    """The :class:`~repro.metrics.collect.WorkloadMetrics` interface served
    from a stored :class:`~repro.campaign.runner.RunMetrics` row."""

    row: "RunMetrics"

    @property
    def total_run_time(self) -> float:
        return self.row.total_run_time

    @property
    def average_response_time(self) -> float:
        return self.row.average_response_time

    @property
    def makespan_end(self) -> float:
        return self.row.makespan_end

    def response_times(self) -> dict[str, float]:
        return dict(self.row.response_times)

    def run_times(self) -> dict[str, float]:
        return dict(self.row.run_times)

    def wait_times(self) -> dict[str, float]:
        return dict(self.row.wait_times)


@dataclass(frozen=True)
class ScenarioReplay:
    """A run reconstructed from the two store tiers instead of simulated.

    Mirrors the reporting slice of
    :class:`~repro.workload.runner.ScenarioResult`; the ``replayed`` marker
    lets callers count how many scenarios actually executed.
    """

    scenario: str
    run: RunSpec
    metrics: ReplayedMetrics
    entry: TraceEntry
    #: Replays never execute; the live result's marker is ``False``.
    replayed = True

    @cached_property
    def workload(self) -> "Workload":
        """The declarative workload, rebuilt from the run's reference
        (deterministic and cheap — no simulation involved)."""
        return self.run.workload.build()

    @cached_property
    def tracer(self) -> Tracer:
        return self.entry.tracer

    @property
    def sched(self) -> SchedTimeline:
        """The stored scheduler timeline (empty for pre-v4 artifacts)."""
        return self.entry.sched

    @property
    def end_time(self) -> float:
        return self.entry.header["end_time"]

    @property
    def reader(self) -> TraceReader:
        return TraceReader(self.entry)

    def job_utilisation(self, label: str) -> float:
        """Aggregate CPU utilisation of one job, from the metrics row."""
        return dict(self.metrics.row.job_utilisation)[label]


def replay_scenario(
    run: RunSpec, row: "RunMetrics", entry: TraceEntry
) -> ScenarioReplay:
    """Assemble a replay from a metrics row and its trace artifact."""
    return ScenarioReplay(
        scenario=run.scenario, run=run, metrics=ReplayedMetrics(row), entry=entry
    )
