"""Trace tier — content-addressed persistence of full execution traces.

The metrics tier (:mod:`repro.results`) made the campaign grid's compact
rows persistent; this package does the same for the *traces* the paper's
evaluation is actually read through (Paraver timelines, IPC histograms —
Figures 3, 5, 13, 14):

* :mod:`repro.traces.store` — :class:`~repro.traces.store.TraceStore`, a
  second content-addressed store keyed by the **same**
  :func:`~repro.results.store.content_key` as the metrics tier; each cell
  is one gzip-compressed JSONL artifact holding the run's full
  :class:`~repro.metrics.tracing.Tracer`.
* :mod:`repro.traces.query` — the lazy
  :class:`~repro.traces.query.TraceReader` query engine (job timelines,
  mask-change sequences, IPC series/histograms, ParaverView renderings) and
  :func:`~repro.traces.query.replay_scenario`, which rebuilds a
  scenario-result replay from the two tiers so trace figures regenerate
  without simulating.
* ``python -m repro.traces ls|show|export|gc`` — inspect, re-export
  (``.prv``/JSONL) and collect stored traces.

Capture is threaded through the stack: ``run_campaign(...,
trace_store=...)`` and ``run_scenario_pair(..., trace_store=...)`` record
traces on cache misses and skip execution when both tiers hit.
"""

from repro.traces.query import (
    ReplayedMetrics,
    ScenarioReplay,
    TraceReader,
    replay_scenario,
)
from repro.traces.store import (
    DEFAULT_TRACE_ROOT,
    TRACE_FORMAT_VERSION,
    TraceEntry,
    TraceStore,
)

__all__ = [
    "TraceStore",
    "TraceEntry",
    "DEFAULT_TRACE_ROOT",
    "TRACE_FORMAT_VERSION",
    "TraceReader",
    "ReplayedMetrics",
    "ScenarioReplay",
    "replay_scenario",
]
