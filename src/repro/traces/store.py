"""Content-addressed persistence for full execution traces.

The metrics tier (:class:`~repro.results.store.ResultStore`) memoises the
compact :class:`~repro.campaign.runner.RunMetrics` row of every campaign
cell; this module adds the second tier the trace-derived figures (3, 5, 13,
14) need: every executed run's full :class:`~repro.metrics.tracing.Tracer`
persists as one gzip-compressed JSONL artifact keyed by the **same**
:func:`~repro.results.store.content_key` as the metrics entry.  The two
tiers thus address the same cell by the same hash — a key found in both
means "this simulation's reporting is fully reconstructable without
re-simulating".

Artifact layout (format v4): one ``<key>.jsonl.gz`` file per cell, written
as a sequence of **concatenated gzip members** — a valid multi-member gzip
stream, so ``gzip.decompress`` of the whole file still yields the flat JSONL
record stream:

* the first member holds the versioned run header line (spec contents,
  scenario, workload name, end time, cycles/µs calibration) — including a
  ``segments`` table of time-windowed step chunks (first start, last end,
  record count, compressed byte length) plus the mask and sched members'
  byte lengths;
* one member per step segment: up to ``segment_steps`` step records in the
  tracer's canonical ``(start, job, rank)`` order;
* one member with the mask-change records (omitted when there are none);
* one final member with the scheduler-timeline records (queue samples, node
  allocation samples, job lifecycle rows — see :mod:`repro.obs.sched`;
  omitted when the run recorded none, as v3 artifacts always did).

Because the header carries every member's compressed length, a reader seeks
straight to any segment and inflates only the time windows a query touches
— and validates the artifact's total byte size up front, so a truncated
copy reads as a miss even though its header member is intact.  Floats
serialise via ``repr`` and every member is written with a zeroed gzip
mtime, so the same tracer always produces byte-identical artifacts —
re-puts are idempotent, and shard stores merge by plain file union like the
metrics tier.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import zlib
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.campaign.spec import RunSpec
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.obs.log import get_logger
from repro.obs.sched import SchedTimeline
from repro.results.store import content_key, spec_contents, spec_from_contents
from repro.store.index import IndexEntry, StoreIndex

_log = get_logger("traces.store")

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.workload.runner import ScenarioResult

#: Default persistent location, a sibling of the metrics tier's
#: ``benchmarks/results/store/`` (both are gitignored).
DEFAULT_TRACE_ROOT = Path("benchmarks") / "results" / "traces"

#: Bumped whenever the artifact layout or the content-hash inputs change;
#: old artifacts are then cache misses and ``gc`` collects them.  The hash
#: inputs are shared with the metrics tier, so a metrics schema bump that
#: changes :func:`~repro.results.store.spec_contents` must bump this too.
#:
#: Version history:
#:
#: * 1 — initial layout (header + step/mask-change records, gzip JSONL).
#: * 2 — step records serialise in the tracer's canonical ``(start, job,
#:   rank)`` order instead of raw recording order, so batched and unbatched
#:   executions of the same cell write byte-identical artifacts.
#: * 3 — chunked layout: the body splits into time-windowed gzip members
#:   with a byte-offset ``segments`` table in the header, so windowed
#:   queries inflate only the touched segments.  The decompressed record
#:   stream is unchanged from v2.
#: * 4 — optional trailing ``sched`` member holding the scheduler timeline
#:   (queue/node/lifecycle records) with its byte length in the header's
#:   ``sched_bytes``.  Strictly additive, so v3 artifacts stay readable
#:   (they simply expose an empty timeline) — see ``_COMPAT_VERSIONS``.
TRACE_FORMAT_VERSION = 4

#: Formats the reader accepts.  v3 is a pure prefix of v4 (no sched member,
#: no ``sched_bytes`` header field), so accepting it costs nothing; anything
#: older has a different record stream and reads as a miss.
_COMPAT_VERSIONS = frozenset({3, TRACE_FORMAT_VERSION})

_SUFFIX = ".jsonl.gz"

#: Step records per segment member.  Small enough that an interval query
#: over a million-step trace inflates a sliver, large enough that gzip
#: still sees repetitive JSONL to compress well.
DEFAULT_SEGMENT_STEPS = 2048

#: Everything a read of a missing/corrupt/stale artifact can raise, and that
#: must therefore read as a *miss* rather than abort a campaign: filesystem
#: errors (``gzip.BadGzipFile`` is an ``OSError``), malformed JSON/headers,
#: and truncated or bit-rotted compressed streams (``EOFError`` /
#: ``zlib.error`` — e.g. an interrupted copy of a shard store).
_READ_ERRORS = (OSError, ValueError, KeyError, TypeError, EOFError, zlib.error)


def _gzip_member(text: str) -> bytes:
    """One deterministic gzip member (mtime pinned to 0)."""
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as stream:
        stream.write(text.encode("utf-8"))
    return buffer.getvalue()


@dataclass(frozen=True)
class TraceEntry:
    """One stored trace: its key, validated header, and lazy record access.

    The header member is read eagerly for listing and version checks; step
    segments inflate individually on first touch (cached per entry), so
    windowed queries over a long trace never decompress the parts they
    don't visit, and ``ls`` never inflates a single body byte.
    """

    key: str
    path: Path
    header: dict
    #: Compressed byte length of the header member — the first segment's
    #: file offset.  Zero only for hand-built entries that never read lazily.
    header_bytes: int = 0
    #: Per-entry cache of inflated members (segment index or ``"mask"``).
    _inflated: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def contents(self) -> dict:
        """The canonical spec contents the artifact was keyed by."""
        return self.header["run"]

    @property
    def run(self) -> RunSpec:
        return spec_from_contents(self.contents)

    # -- lazy segment access -----------------------------------------------------

    @property
    def segments(self) -> list[dict]:
        """The header's segment table: ``{"t0", "t1", "n", "bytes"}`` per
        step chunk, in canonical step order."""
        return self.header.get("segments", [])

    @property
    def segments_inflated(self) -> int:
        """How many step segments this entry has decompressed so far."""
        return sum(1 for key in self._inflated if isinstance(key, int))

    def _member_records(self, offset: int, length: int) -> list[dict]:
        with open(self.path, "rb") as stream:
            stream.seek(offset)
            blob = stream.read(length)
        if len(blob) != length:
            raise ValueError(f"{self.path} is truncated at offset {offset}")
        text = gzip.decompress(blob).decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line]

    def _segment_offset(self, index: int) -> int:
        return self.header_bytes + sum(
            int(seg["bytes"]) for seg in self.segments[:index]
        )

    def segment_steps(self, index: int) -> list[StepRecord]:
        """The step records of one segment, inflating it on first touch."""
        if index not in self._inflated:
            meta = self.segments[index]
            steps: list[StepRecord] = []
            for record in self._member_records(
                self._segment_offset(index), int(meta["bytes"])
            ):
                if record.get("record") != "step":
                    raise ValueError(
                        f"unknown record type {record.get('record')!r} in {self.path}"
                    )
                steps.append(StepRecord.from_record(record))
            self._inflated[index] = steps
        return self._inflated[index]

    def mask_records(self) -> list[MaskChangeRecord]:
        """The mask-change records, inflating the mask member on first touch."""
        if "mask" not in self._inflated:
            nbytes = int(self.header.get("mask_bytes", 0))
            changes: list[MaskChangeRecord] = []
            if nbytes:
                offset = self._segment_offset(len(self.segments))
                for record in self._member_records(offset, nbytes):
                    if record.get("record") != "mask_change":
                        raise ValueError(
                            f"unknown record type {record.get('record')!r} "
                            f"in {self.path}"
                        )
                    changes.append(MaskChangeRecord.from_record(record))
            self._inflated["mask"] = changes
        return self._inflated["mask"]

    def steps_between(self, lo: float, hi: float) -> list[StepRecord]:
        """Every step overlapping ``[lo, hi]`` (``start <= hi and end >=
        lo``), inflating only the segments whose time window overlaps.

        Sound because a segment's ``t0`` is its first step's start (the
        canonical order sorts by start, so the minimum) and ``t1`` is the
        maximum step end — any step overlapping the query makes its
        segment's window overlap too.
        """
        matches: list[StepRecord] = []
        for index, seg in enumerate(self.segments):
            if float(seg["t0"]) <= hi and float(seg["t1"]) >= lo:
                matches.extend(
                    step
                    for step in self.segment_steps(index)
                    if step.start <= hi and step.end >= lo
                )
        return matches

    def head_steps(self, count: int) -> list[StepRecord]:
        """The first ``count`` steps in canonical order, inflating only the
        leading segments."""
        head: list[StepRecord] = []
        for index in range(len(self.segments)):
            if len(head) >= count:
                break
            head.extend(self.segment_steps(index))
        return head[:count]

    def sched_records(self) -> list[dict]:
        """The raw scheduler-timeline records, inflating the sched member on
        first touch (empty for v3 artifacts and sched-less runs)."""
        if "sched" not in self._inflated:
            nbytes = int(self.header.get("sched_bytes", 0))
            records: list[dict] = []
            if nbytes:
                offset = self._segment_offset(len(self.segments)) + int(
                    self.header.get("mask_bytes", 0)
                )
                records = self._member_records(offset, nbytes)
            self._inflated["sched"] = records
        return self._inflated["sched"]

    @cached_property
    def sched(self) -> SchedTimeline:
        """The run's scheduler timeline (empty for pre-v4 artifacts)."""
        return SchedTimeline.from_records(self.sched_records())

    @cached_property
    def tracer(self) -> Tracer:
        """The full tracer, assembled from every segment plus the masks."""
        tracer = Tracer(cycles_per_us=self.header.get("cycles_per_us", 2600.0))
        for index in range(len(self.segments)):
            tracer.record_steps(self.segment_steps(index))
        for change in self.mask_records():
            tracer.record_mask_change(change)
        return tracer


# -- index summaries ------------------------------------------------------------------


def _summarise_header(header: dict) -> dict | None:
    """The render-ready fields of one artifact header — everything the
    ``ls`` table prints, precomputed at write/index time."""
    try:
        run = spec_from_contents(header["run"])
        return {
            "scenario": header["scenario"],
            "workload": run.workload.label,
            "nsteps": header["nsteps"],
            "nmask_changes": header["nmask_changes"],
            "end_time": header["end_time"],
        }
    except (KeyError, TypeError, ValueError):
        return None


def _describe_artifact(path: Path) -> tuple[object, dict | None]:
    """Index rebuild callback: a file's format version and summary; every
    failure maps to "present but not renderable" — never raises."""
    try:
        header, _ = TraceStore._header_span(path)
    except _READ_ERRORS:
        return None, None
    return header.get("version"), _summarise_header(header)


class TraceStore:
    """Content-addressed, mergeable store of full run traces.

    Mirrors :class:`~repro.results.store.ResultStore`'s contract: entries
    are pure functions of their key's spec, reads never abort a campaign
    (a bad artifact is a miss), writes are atomic, and :meth:`merge` is the
    cross-host sharding union.
    """

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_TRACE_ROOT,
        segment_steps: int = DEFAULT_SEGMENT_STEPS,
    ) -> None:
        if segment_steps <= 0:
            raise ValueError("segment_steps must be positive")
        self.root = Path(root)
        self.segment_steps = segment_steps
        self._index: StoreIndex | None = None

    def __getstate__(self) -> dict:
        # Stores ship into pool/SSH workers (WorkerContext); the index is
        # per-process derived state and rebuilds lazily on the other side.
        return {"root": self.root, "segment_steps": self.segment_steps}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self.segment_steps = state["segment_steps"]
        self._index = None

    @property
    def index(self) -> StoreIndex:
        """The store's append-only JSONL index (derived metadata; the
        artifact files stay the only ground truth)."""
        if self._index is None:
            self._index = StoreIndex(
                self.root,
                suffix=_SUFFIX,
                store_version=TRACE_FORMAT_VERSION,
                describe=_describe_artifact,
                kind="traces",
            )
        return self._index

    # -- addressing --------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def scan(self) -> frozenset[str]:
        """Every key present, from the index journal — O(1) filesystem work
        on a warm store, one ``listdir`` + stat-diff after any write.

        Mirrors :meth:`ResultStore.scan`: the campaign warm-scan checks N
        cells against this one set and only header-reads the members.
        Presence is name-level only — a scanned key can still be a miss if
        its artifact is stale or unreadable — and the index self-heals from
        the directory whenever it is missing, torn or disagrees with it.
        """
        if not self.root.is_dir():
            return frozenset()
        return self.index.scan()

    def keys(self) -> list[str]:
        return sorted(self.scan())

    def __len__(self) -> int:
        return len(self.scan())

    def __contains__(self, run: RunSpec) -> bool:
        """Whether ``run``'s cell holds a readable, current-format trace."""
        try:
            self._header_span(self.path_for(content_key(run)))
        except _READ_ERRORS:
            return False
        return True

    # -- read/write --------------------------------------------------------------

    @staticmethod
    def _header_span(path: Path) -> tuple[dict, int]:
        """Parse and validate the header member; returns ``(header,
        compressed_length)``.

        Cheap for v3 artifacts — only the small first member inflates — and
        the validation cross-checks the header's segment table against the
        file's actual byte size, so a truncated artifact fails here even
        though its header member is intact.
        """
        decomp = zlib.decompressobj(wbits=31)
        body = bytearray()
        consumed = 0
        with open(path, "rb") as stream:
            while not decomp.eof:
                chunk = stream.read(65536)
                if not chunk:
                    raise ValueError(f"{path} ends mid-member")
                body += decomp.decompress(chunk)
                consumed += len(chunk)
        header_bytes = consumed - len(decomp.unused_data)
        header = json.loads(bytes(body).split(b"\n", 1)[0])
        if not isinstance(header, dict) or header.get("record") != "run":
            raise ValueError(f"{path} has no run header record")
        if header.get("version") not in _COMPAT_VERSIONS:
            raise ValueError(
                f"trace {path.name} has format {header.get('version')!r}, "
                f"expected one of {sorted(_COMPAT_VERSIONS)}"
            )
        expected = (
            header_bytes
            + sum(int(seg["bytes"]) for seg in header["segments"])
            + int(header["mask_bytes"])
            + int(header.get("sched_bytes", 0))
        )
        actual = path.stat().st_size
        if actual != expected:
            raise ValueError(
                f"trace {path.name} holds {actual} byte(s), segment table "
                f"expects {expected} — truncated or corrupt"
            )
        return header, header_bytes

    @classmethod
    def _read_header(cls, path: Path) -> dict:
        """Parse and validate the artifact's header (see :meth:`_header_span`)."""
        return cls._header_span(path)[0]

    def _entry(self, key: str, path: Path) -> TraceEntry:
        header, header_bytes = self._header_span(path)
        return TraceEntry(key=key, path=path, header=header, header_bytes=header_bytes)

    def get(self, run: RunSpec, key: str | None = None) -> TraceEntry | None:
        """The stored trace of ``run``'s cell, or ``None`` on a miss
        (including unreadable, old-format or otherwise malformed artifacts —
        a bad cache entry must mean "re-simulate", never abort).  ``key`` is
        an optional precomputed ``content_key(run)``."""
        if key is None:
            key = content_key(run)
        path = self.path_for(key)
        try:
            entry = self._entry(key, path)
        except _READ_ERRORS:
            return None
        self.index.note_read(key)
        return entry

    def put(self, run: RunSpec, result: "ScenarioResult") -> Path:
        """Persist one executed run's full trace under its content key.

        Idempotent overwrite: the serialisation is deterministic (stable
        record order, sorted JSON keys, gzip mtimes pinned to 0, a fixed
        ``segment_steps`` chunking), so re-puts of the same cell write
        byte-identical artifacts.
        """
        key = content_key(run)
        tracer = result.tracer
        steps = list(tracer)  # canonical (start, job, rank) order
        changes = tracer.mask_changes()
        segment_blobs: list[bytes] = []
        segment_table: list[dict] = []
        for start in range(0, len(steps), self.segment_steps):
            chunk = steps[start : start + self.segment_steps]
            blob = _gzip_member(
                "\n".join(json.dumps(step.to_record(), sort_keys=True) for step in chunk)
                + "\n"
            )
            segment_blobs.append(blob)
            segment_table.append(
                {
                    "t0": chunk[0].start,
                    "t1": max(step.end for step in chunk),
                    "n": len(chunk),
                    "bytes": len(blob),
                }
            )
        mask_blob = b""
        if changes:
            mask_blob = _gzip_member(
                "\n".join(
                    json.dumps(change.to_record(), sort_keys=True) for change in changes
                )
                + "\n"
            )
        sched = getattr(result, "sched", None)
        sched_records = sched.to_records() if sched is not None else []
        sched_blob = b""
        if sched_records:
            sched_blob = _gzip_member(
                "\n".join(
                    json.dumps(record, sort_keys=True) for record in sched_records
                )
                + "\n"
            )
        header = {
            "record": "run",
            "version": TRACE_FORMAT_VERSION,
            "key": key,
            "run": spec_contents(run),
            "run_id": run.cell_id,
            "scenario": run.scenario,
            "workload": result.workload.name,
            "end_time": result.end_time,
            "cycles_per_us": tracer.cycles_per_us,
            "nsteps": len(tracer),
            "nmask_changes": len(changes),
            "segments": segment_table,
            "mask_bytes": len(mask_blob),
            "sched_bytes": len(sched_blob),
            "nsched": len(sched_records),
        }
        data = (
            _gzip_member(json.dumps(header, sort_keys=True) + "\n")
            + b"".join(segment_blobs)
            + mask_blob
            + sched_blob
        )
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        # Unique temp name + atomic rename: concurrent writers of the same
        # cell (pool workers, campaign shards) cannot interleave bytes.
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_bytes(data)
        tmp.replace(path)
        try:
            st = path.stat()
            self.index.record_put(
                key,
                size=st.st_size,
                mtime_ns=st.st_mtime_ns,
                version=TRACE_FORMAT_VERSION,
                summary=_summarise_header(header),
            )
        except OSError:
            pass  # the next scan reconciles the written file in
        _log.debug(
            "put %s (%s, %d step record(s), %d segment(s))",
            key[:12],
            run.cell_id,
            len(tracer),
            len(segment_table),
        )
        return path

    def load(self, key: str) -> TraceEntry:
        """Read one entry by (possibly abbreviated, unambiguous) key."""
        matches = [k for k in self.keys() if k.startswith(key)]
        if not matches:
            raise KeyError(f"no trace with key {key!r} in {self.root}")
        if len(matches) > 1:
            raise KeyError(f"key {key!r} is ambiguous ({len(matches)} matches)")
        entry = self._entry(matches[0], self.path_for(matches[0]))
        self.index.note_read(matches[0])
        return entry

    def summaries(
        self, prefix: str | None = None, limit: int | None = None
    ) -> list[IndexEntry]:
        """Render-ready listing rows straight from the index — one journal
        read instead of N header reads.  Keys whose artifact is stale or
        unreadable (``summary is None``) are excluded, matching
        :meth:`entries`'s visibility rule; rows come in key order."""
        if not self.root.is_dir():
            return []
        rows = self.index.live_entries()
        out: list[IndexEntry] = []
        for key in sorted(rows):
            if prefix is not None and not key.startswith(prefix):
                continue
            if rows[key].summary is None:
                continue
            out.append(rows[key])
            if limit is not None and len(out) >= limit:
                break
        return out

    def entries(self) -> Iterator[TraceEntry]:
        """All live entries, sorted by key (corrupt or old-format artifacts
        are skipped — same visibility rule as :meth:`get`)."""
        for key in self.keys():
            try:
                yield self._entry(key, self.path_for(key))
            except _READ_ERRORS:
                continue

    # -- maintenance -------------------------------------------------------------

    def remove(self, key: str) -> None:
        self.path_for(key).unlink(missing_ok=True)
        self.index.record_remove(key)

    def gc(
        self,
        predicate=None,
        dry_run: bool = False,
        lru_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Collect artifacts: unreadable/old-format files always, plus any
        whose :class:`TraceEntry` satisfies ``predicate``, plus the
        retention policies' picks (``max_age`` in seconds on the file's
        mtime, then ``lru_bytes`` evicting least-recently-read artifacts
        until the survivors fit the byte budget).  Returns removed keys."""
        doomed: list[str] = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                entry = self._entry(key, path)
            except _READ_ERRORS:
                doomed.append(key)
                continue
            if predicate is not None and predicate(entry):
                doomed.append(key)
        doomed.extend(
            self.index.retention_doomed(
                lru_bytes=lru_bytes, max_age=max_age, now=now, exclude=set(doomed)
            )
        )
        if not dry_run:
            for key in doomed:
                self.remove(key)
                _log.debug("gc removed %s", key[:12])
        _log.info(
            "gc %s %d of %d artifact(s) in %s",
            "would remove" if dry_run else "removed",
            len(doomed),
            len(self.keys()) + (0 if dry_run else len(doomed)),
            self.root,
        )
        return doomed

    def merge(self, other: "TraceStore", overwrite: bool = False) -> int:
        """Union another trace store's artifacts into this one — the
        campaign-sharding transport, shipping traces alongside the metrics
        tier's :meth:`~repro.results.store.ResultStore.merge`.

        Returns the number of artifacts copied.  Same rules as the metrics
        tier: local current-format entries win unless ``overwrite``, stale or
        unreadable source artifacts are never imported, and a stale local
        file never shadows a current incoming one.
        """
        copied = 0
        present = self.scan()
        for key in sorted(other.scan()):
            target = self.path_for(key)
            if not overwrite and key in present:
                try:
                    self._read_header(target)
                    continue  # current local entry wins
                except _READ_ERRORS:
                    pass  # stale or unreadable: the incoming one wins
            source = other.path_for(key)
            try:
                header = other._read_header(source)
                data = source.read_bytes()
            except _READ_ERRORS:
                continue
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.root / f".{key}.{os.getpid()}.tmp"
            tmp.write_bytes(data)
            tmp.replace(target)
            try:
                st = target.stat()
                self.index.record_put(
                    key,
                    size=st.st_size,
                    mtime_ns=st.st_mtime_ns,
                    version=TRACE_FORMAT_VERSION,
                    summary=_summarise_header(header),
                )
            except OSError:
                pass  # the next scan reconciles the copied file in
            copied += 1
        _log.info("merged %d artifact(s) from %s", copied, other.root)
        return copied
