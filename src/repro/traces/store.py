"""Content-addressed persistence for full execution traces.

The metrics tier (:class:`~repro.results.store.ResultStore`) memoises the
compact :class:`~repro.campaign.runner.RunMetrics` row of every campaign
cell; this module adds the second tier the trace-derived figures (3, 5, 13,
14) need: every executed run's full :class:`~repro.metrics.tracing.Tracer`
persists as one gzip-compressed JSONL artifact keyed by the **same**
:func:`~repro.results.store.content_key` as the metrics entry.  The two
tiers thus address the same cell by the same hash — a key found in both
means "this simulation's reporting is fully reconstructable without
re-simulating".

Artifact layout: one ``<key>.jsonl.gz`` file per cell.  The first line is a
versioned run header (spec contents, scenario, workload name, end time,
cycles/µs calibration); every following line is one step or mask-change
record — steps in the tracer's canonical ``(start, job, rank)`` order, mask
changes in recording order — using exactly the JSONL-sink schema
(:meth:`~repro.metrics.tracing.StepRecord.to_record`).  Floats serialise via
``repr`` and gzip is written with a zeroed mtime, so the same tracer always
produces byte-identical artifacts — re-puts are idempotent, and shard stores
merge by plain file union like the metrics tier.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import zlib
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.campaign.spec import RunSpec
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.obs.log import get_logger
from repro.results.store import content_key, spec_contents, spec_from_contents

_log = get_logger("traces.store")

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.workload.runner import ScenarioResult

#: Default persistent location, a sibling of the metrics tier's
#: ``benchmarks/results/store/`` (both are gitignored).
DEFAULT_TRACE_ROOT = Path("benchmarks") / "results" / "traces"

#: Bumped whenever the artifact layout or the content-hash inputs change;
#: old artifacts are then cache misses and ``gc`` collects them.  The hash
#: inputs are shared with the metrics tier, so a metrics schema bump that
#: changes :func:`~repro.results.store.spec_contents` must bump this too.
#:
#: Version history:
#:
#: * 1 — initial layout (header + step/mask-change records, gzip JSONL).
#: * 2 — step records serialise in the tracer's canonical ``(start, job,
#:   rank)`` order instead of raw recording order, so batched and unbatched
#:   executions of the same cell write byte-identical artifacts.
TRACE_FORMAT_VERSION = 2

_SUFFIX = ".jsonl.gz"

#: Everything a read of a missing/corrupt/stale artifact can raise, and that
#: must therefore read as a *miss* rather than abort a campaign: filesystem
#: errors (``gzip.BadGzipFile`` is an ``OSError``), malformed JSON/headers,
#: and truncated or bit-rotted compressed streams (``EOFError`` /
#: ``zlib.error`` — e.g. an interrupted copy of a shard store).
_READ_ERRORS = (OSError, ValueError, KeyError, EOFError, zlib.error)


@dataclass(frozen=True)
class TraceEntry:
    """One stored trace: its key, validated header, and a lazy tracer.

    The header (one JSON line) is read eagerly for listing and version
    checks; the full record stream is only decompressed and parsed when
    :attr:`tracer` is first touched — ``ls`` over a thousand-cell store
    never inflates a single trace body.
    """

    key: str
    path: Path
    header: dict

    @property
    def contents(self) -> dict:
        """The canonical spec contents the artifact was keyed by."""
        return self.header["run"]

    @property
    def run(self) -> RunSpec:
        return spec_from_contents(self.contents)

    @cached_property
    def tracer(self) -> Tracer:
        """The full tracer, parsed from the compressed record stream."""
        tracer = Tracer(cycles_per_us=self.header.get("cycles_per_us", 2600.0))
        with gzip.open(self.path, "rt", encoding="utf-8") as stream:
            next(stream)  # the header line, already parsed
            for line in stream:
                record = json.loads(line)
                kind = record.get("record")
                if kind == "step":
                    tracer.record_step(StepRecord.from_record(record))
                elif kind == "mask_change":
                    tracer.record_mask_change(MaskChangeRecord.from_record(record))
                else:
                    raise ValueError(
                        f"unknown record type {kind!r} in {self.path}"
                    )
        return tracer


class TraceStore:
    """Content-addressed, mergeable store of full run traces.

    Mirrors :class:`~repro.results.store.ResultStore`'s contract: entries
    are pure functions of their key's spec, reads never abort a campaign
    (a bad artifact is a miss), writes are atomic, and :meth:`merge` is the
    cross-host sharding union.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_TRACE_ROOT) -> None:
        self.root = Path(root)

    # -- addressing --------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def scan(self) -> frozenset[str]:
        """Every key present, from a **single** directory listing.

        Mirrors :meth:`ResultStore.scan`: the campaign warm-scan checks N
        cells against this set (one ``listdir`` total) and only header-reads
        the members, instead of probing the filesystem once per cell.
        Presence is name-level only — a scanned key can still be a miss if
        its artifact is stale or unreadable.
        """
        if not self.root.is_dir():
            return frozenset()
        return frozenset(
            name[: -len(_SUFFIX)]
            for name in os.listdir(self.root)
            if name.endswith(_SUFFIX) and not name.startswith(".")
        )

    def keys(self) -> list[str]:
        return sorted(self.scan())

    def __len__(self) -> int:
        return len(self.scan())

    def __contains__(self, run: RunSpec) -> bool:
        """Whether ``run``'s cell holds a readable, current-format trace."""
        try:
            self._read_header(self.path_for(content_key(run)))
        except _READ_ERRORS:
            return False
        return True

    # -- read/write --------------------------------------------------------------

    @staticmethod
    def _read_header(path: Path) -> dict:
        """Parse and validate the artifact's header line (cheap: the gzip
        stream is only inflated up to the first newline)."""
        with gzip.open(path, "rt", encoding="utf-8") as stream:
            header = json.loads(stream.readline())
        if not isinstance(header, dict) or header.get("record") != "run":
            raise ValueError(f"{path} has no run header record")
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"trace {path.name} has format {header.get('version')!r}, "
                f"expected {TRACE_FORMAT_VERSION}"
            )
        return header

    def get(self, run: RunSpec, key: str | None = None) -> TraceEntry | None:
        """The stored trace of ``run``'s cell, or ``None`` on a miss
        (including unreadable, old-format or otherwise malformed artifacts —
        a bad cache entry must mean "re-simulate", never abort).  ``key`` is
        an optional precomputed ``content_key(run)``."""
        if key is None:
            key = content_key(run)
        path = self.path_for(key)
        try:
            header = self._read_header(path)
        except _READ_ERRORS:
            return None
        return TraceEntry(key=key, path=path, header=header)

    def put(self, run: RunSpec, result: "ScenarioResult") -> Path:
        """Persist one executed run's full trace under its content key.

        Idempotent overwrite: the serialisation is deterministic (stable
        record order, sorted JSON keys, gzip mtime pinned to 0), so re-puts
        of the same cell write byte-identical artifacts.
        """
        key = content_key(run)
        tracer = result.tracer
        header = {
            "record": "run",
            "version": TRACE_FORMAT_VERSION,
            "key": key,
            "run": spec_contents(run),
            "run_id": run.cell_id,
            "scenario": run.scenario,
            "workload": result.workload.name,
            "end_time": result.end_time,
            "cycles_per_us": tracer.cycles_per_us,
            "nsteps": len(tracer),
            "nmask_changes": len(tracer.mask_changes()),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(step.to_record(), sort_keys=True) for step in tracer)
        lines.extend(
            json.dumps(change.to_record(), sort_keys=True)
            for change in tracer.mask_changes()
        )
        buffer = io.BytesIO()
        # mtime=0: gzip embeds a timestamp by default, which would make two
        # exports of the same trace differ byte-wise and break merge dedupe.
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as stream:
            stream.write(("\n".join(lines) + "\n").encode("utf-8"))
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        # Unique temp name + atomic rename: concurrent writers of the same
        # cell (pool workers, campaign shards) cannot interleave bytes.
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        tmp.write_bytes(buffer.getvalue())
        tmp.replace(path)
        _log.debug(
            "put %s (%s, %d step record(s))", key[:12], run.cell_id, len(tracer)
        )
        return path

    def load(self, key: str) -> TraceEntry:
        """Read one entry by (possibly abbreviated, unambiguous) key."""
        matches = [k for k in self.keys() if k.startswith(key)]
        if not matches:
            raise KeyError(f"no trace with key {key!r} in {self.root}")
        if len(matches) > 1:
            raise KeyError(f"key {key!r} is ambiguous ({len(matches)} matches)")
        path = self.path_for(matches[0])
        return TraceEntry(key=matches[0], path=path, header=self._read_header(path))

    def entries(self) -> Iterator[TraceEntry]:
        """All live entries, sorted by key (corrupt or old-format artifacts
        are skipped — same visibility rule as :meth:`get`)."""
        for key in self.keys():
            path = self.path_for(key)
            try:
                header = self._read_header(path)
            except _READ_ERRORS:
                continue
            yield TraceEntry(key=key, path=path, header=header)

    # -- maintenance -------------------------------------------------------------

    def remove(self, key: str) -> None:
        self.path_for(key).unlink(missing_ok=True)

    def gc(self, predicate=None, dry_run: bool = False) -> list[str]:
        """Collect artifacts: unreadable/old-format files always, plus any
        whose :class:`TraceEntry` satisfies ``predicate``.  Returns the
        removed keys."""
        doomed: list[str] = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                header = self._read_header(path)
            except _READ_ERRORS:
                doomed.append(key)
                continue
            if predicate is not None and predicate(
                TraceEntry(key=key, path=path, header=header)
            ):
                doomed.append(key)
        if not dry_run:
            for key in doomed:
                self.remove(key)
                _log.debug("gc removed %s", key[:12])
        _log.info(
            "gc %s %d of %d artifact(s) in %s",
            "would remove" if dry_run else "removed",
            len(doomed),
            len(self.keys()) + (0 if dry_run else len(doomed)),
            self.root,
        )
        return doomed

    def merge(self, other: "TraceStore", overwrite: bool = False) -> int:
        """Union another trace store's artifacts into this one — the
        campaign-sharding transport, shipping traces alongside the metrics
        tier's :meth:`~repro.results.store.ResultStore.merge`.

        Returns the number of artifacts copied.  Same rules as the metrics
        tier: local current-format entries win unless ``overwrite``, stale or
        unreadable source artifacts are never imported, and a stale local
        file never shadows a current incoming one.
        """
        copied = 0
        present = self.scan()
        for key in sorted(other.scan()):
            target = self.path_for(key)
            if not overwrite and key in present:
                try:
                    self._read_header(target)
                    continue  # current local entry wins
                except _READ_ERRORS:
                    pass  # stale or unreadable: the incoming one wins
            source = other.path_for(key)
            try:
                other._read_header(source)
                data = source.read_bytes()
            except _READ_ERRORS:
                continue
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.root / f".{key}.{os.getpid()}.tmp"
            tmp.write_bytes(data)
            tmp.replace(target)
            copied += 1
        _log.info("merged %d artifact(s) from %s", copied, other.root)
        return copied
