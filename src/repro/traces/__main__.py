"""``python -m repro.traces`` — inspect and maintain a trace store.

Subcommands::

    ls     [--store ROOT]                         list stored traces
    show   KEY [--store ROOT] [--bin-seconds S]   one trace's timelines
    export KEY [--store ROOT] [--format prv|jsonl] [--out DIR]
    gc     [--store ROOT] [filters] [--delete]    collect artifacts

``export`` re-emits one stored cell on demand — a ``.prv``-style trace
(through the same renderer as the live
:class:`~repro.results.sinks.ParaverTraceSink`, so the bytes match a
per-run sink export) or the decompressed JSONL record stream.  File names
use the content key alone, so re-exports overwrite instead of accumulating.
``gc`` is a dry run unless ``--delete`` is given; unreadable or old-format
artifacts are always candidates.
"""

from __future__ import annotations

import argparse
import gzip
import sys
from pathlib import Path

from repro.experiments.tables import render_table
from repro.results.sinks import prv_text
from repro.traces.query import TraceReader
from repro.traces.store import DEFAULT_TRACE_ROOT, TraceEntry, TraceStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description="Inspect a content-addressed campaign trace store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=str(DEFAULT_TRACE_ROOT),
                       help=f"trace store root (default {DEFAULT_TRACE_ROOT})")

    ls = sub.add_parser("ls", help="list stored traces")
    add_store(ls)

    show = sub.add_parser("show", help="show one trace's timelines")
    show.add_argument("key", help="content key (an unambiguous prefix is enough)")
    add_store(show)
    show.add_argument("--bin-seconds", type=float, default=100.0,
                      help="timeline bin width in seconds (default 100)")

    export = sub.add_parser("export", help="re-emit one stored trace")
    export.add_argument("key", help="content key (an unambiguous prefix is enough)")
    add_store(export)
    export.add_argument("--format", choices=("prv", "jsonl"), default="prv",
                        help="output format (default prv)")
    export.add_argument("--out", default=".", metavar="DIR",
                        help="output directory (default current directory)")

    gc = sub.add_parser("gc", help="collect artifacts (dry run without --delete)")
    add_store(gc)
    gc.add_argument("--scenario", default=None,
                    help="also collect traces of this scenario")
    gc.add_argument("--workload-contains", default=None, metavar="SUBSTRING",
                    help="also collect traces whose workload label contains this")
    gc.add_argument("--all", action="store_true", help="collect every artifact")
    gc.add_argument("--delete", action="store_true",
                    help="actually delete (default: dry run)")
    return parser


def render_trace_table(store: TraceStore) -> str:
    """One row per stored trace, in key order."""
    entries = list(store.entries())
    if not entries:
        return f"(trace store {store.root} is empty)"
    rows = [
        (
            entry.key[:12],
            entry.header["scenario"],
            entry.run.workload.label,
            str(entry.header.get("nsteps", "?")),
            str(entry.header.get("nmask_changes", "?")),
            f"{entry.header['end_time']:.3f}",
            f"{entry.path.stat().st_size / 1024:.1f}",
        )
        for entry in entries
    ]
    return render_table(
        ["Key", "Scenario", "Workload", "Steps", "Mask chg", "End (s)", "KiB"],
        rows,
    )


def render_trace(entry: TraceEntry, bin_seconds: float) -> str:
    """Header summary plus the per-job width timeline of one trace."""
    reader = TraceReader(entry)
    lines = [
        f"key       {entry.key}",
        f"run       {entry.header['run_id']}",
        f"scenario  {entry.header['scenario']}",
        f"workload  {entry.header['workload']}",
        f"end time  {entry.header['end_time']:.3f} s",
        "",
    ]
    intervals = reader.job_intervals()
    if not intervals:
        lines.append("(no step records)")
        return "\n".join(lines)
    lines.append(
        render_table(
            ["Job", "First step (s)", "Last end (s)", "Mask chg"],
            [
                (
                    job,
                    f"{lo:.3f}",
                    f"{hi:.3f}",
                    str(len(reader.mask_change_sequence(job))),
                )
                for job, (lo, hi) in intervals.items()
            ],
        )
    )
    lines.append("")
    lines.append(reader.render_job_widths(bin_seconds=bin_seconds))
    return "\n".join(lines)


def _gc_predicate(args: argparse.Namespace):
    if args.all:
        return lambda entry: True
    if args.scenario is None and args.workload_contains is None:
        return None  # only unreadable/old-format artifacts
    def predicate(entry: TraceEntry) -> bool:
        if args.scenario is not None and entry.header["scenario"] != args.scenario:
            return False
        if (
            args.workload_contains is not None
            and args.workload_contains not in entry.run.workload.label
        ):
            return False
        return True
    return predicate


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    store = TraceStore(args.store)
    if args.command == "ls":
        print(f"trace store {store.root}: {len(store)} trace(s)")
        print(render_trace_table(store))
        return 0
    if args.command in ("show", "export"):
        try:
            entry = store.load(args.key)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        if args.command == "show":
            print(render_trace(entry, args.bin_seconds))
            return 0
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        stem = f"{entry.header['scenario']}-{entry.key[:12]}"
        if args.format == "prv":
            path = out / f"{stem}.prv"
            path.write_text(prv_text(entry.tracer))
        else:
            path = out / f"{stem}.jsonl"
            path.write_bytes(gzip.decompress(entry.path.read_bytes()))
        print(f"exported {entry.key[:12]} -> {path}")
        return 0
    if args.command == "gc":
        removed = store.gc(_gc_predicate(args), dry_run=not args.delete)
        verb = "removed" if args.delete else "would remove"
        print(f"gc {store.root}: {verb} {len(removed)} trace(s)")
        for key in removed:
            print(f"  {key[:12]}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
