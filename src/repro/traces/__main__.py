"""``python -m repro.traces`` — inspect and maintain a trace store.

Subcommands::

    ls     [--store ROOT]                         list stored traces
    show   KEY [--store ROOT] [--bin-seconds S] [--sched]
                                                  one trace's timelines (or,
                                                  with --sched, its scheduler
                                                  lifecycle/fairness view)
    export KEY [--store ROOT] [--format prv|jsonl] [--out DIR]
    gc     [--store ROOT] [filters] [--delete]    collect artifacts

``export`` re-emits one stored cell on demand — a ``.prv``-style trace
(through the same renderer as the live
:class:`~repro.results.sinks.ParaverTraceSink`, so the bytes match a
per-run sink export) with its ``.pcf``/``.row`` companion files so the
real Paraver UI can open it, or the decompressed JSONL record stream.
File names use the content key alone, so re-exports overwrite instead of
accumulating.  ``show --head N`` and windowed queries route through the
v3 artifact's segment table, inflating only the slices they touch.
``gc`` is a dry run unless ``--delete`` is given; unreadable or old-format
artifacts are always candidates.
"""

from __future__ import annotations

import argparse
import gzip
import sys
from pathlib import Path

from repro.experiments.tables import render_table
from repro.results.sinks import pcf_text, prv_text, row_text
from repro.traces.query import TraceReader
from repro.traces.store import DEFAULT_TRACE_ROOT, TraceEntry, TraceStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description="Inspect a content-addressed campaign trace store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=str(DEFAULT_TRACE_ROOT),
                       help=f"trace store root (default {DEFAULT_TRACE_ROOT})")

    ls = sub.add_parser("ls", help="list stored traces")
    add_store(ls)
    ls.add_argument("--limit", type=int, default=None, metavar="N",
                    help="print at most N rows")
    ls.add_argument("--prefix", default=None,
                    help="only list keys starting with this hex prefix")

    show = sub.add_parser("show", help="show one trace's timelines")
    show.add_argument("key", help="content key (an unambiguous prefix is enough)")
    add_store(show)
    show.add_argument("--bin-seconds", type=float, default=100.0,
                      help="timeline bin width in seconds (default 100)")
    show.add_argument("--head", type=int, default=None, metavar="N",
                      help="print the first N step records instead of the "
                           "timelines (inflates only the leading segments)")
    show.add_argument("--sched", action="store_true",
                      help="print the scheduler timeline instead: job "
                           "lifecycle table, fairness summary and queue "
                           "depth (inflates only the sched member)")

    export = sub.add_parser("export", help="re-emit one stored trace")
    export.add_argument("key", help="content key (an unambiguous prefix is enough)")
    add_store(export)
    export.add_argument("--format", choices=("prv", "jsonl"), default="prv",
                        help="output format (default prv)")
    export.add_argument("--out", default=".", metavar="DIR",
                        help="output directory (default current directory)")

    gc = sub.add_parser("gc", help="collect artifacts (dry run without --delete)")
    add_store(gc)
    gc.add_argument("--scenario", default=None,
                    help="also collect traces of this scenario")
    gc.add_argument("--workload-contains", default=None, metavar="SUBSTRING",
                    help="also collect traces whose workload label contains this")
    gc.add_argument("--all", action="store_true", help="collect every artifact")
    gc.add_argument("--lru", type=int, default=None, metavar="BYTES",
                    help="evict least-recently-read artifacts until the "
                         "survivors total at most BYTES")
    gc.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                    help="also collect artifacts whose file is older than this")
    gc.add_argument("--delete", action="store_true",
                    help="actually delete (default: dry run)")
    return parser


def render_trace_table(
    store: TraceStore, limit: int | None = None, prefix: str | None = None
) -> str:
    """One row per stored trace, in key order.

    Served from the store's index summaries — no header (let alone body)
    inflation per artifact, so ``ls`` is O(changed) on a warm store.
    """
    summaries = store.summaries(prefix=prefix, limit=limit)
    if not summaries:
        return f"(trace store {store.root} is empty)"
    rows = [
        (
            item.key[:12],
            item.summary["scenario"],
            item.summary["workload"],
            str(item.summary["nsteps"]),
            str(item.summary["nmask_changes"]),
            f"{item.summary['end_time']:.3f}",
            f"{item.size / 1024:.1f}",
        )
        for item in summaries
    ]
    return render_table(
        ["Key", "Scenario", "Workload", "Steps", "Mask chg", "End (s)", "KiB"],
        rows,
    )


def render_trace_head(entry: TraceEntry, count: int) -> str:
    """The first ``count`` step records in canonical order — inflating only
    the leading segments of the artifact."""
    steps = entry.head_steps(count)
    if not steps:
        return "(no step records)"
    table = render_table(
        ["Job", "Rank", "Node", "Start (s)", "Dur (s)", "Thr", "IPC", "Phase"],
        [
            (
                step.job,
                str(step.rank),
                step.node,
                f"{step.start:.3f}",
                f"{step.duration:.3f}",
                str(step.nthreads),
                f"{step.ipc:.3f}",
                step.phase,
            )
            for step in steps
        ],
    )
    return (
        table
        + f"\n({len(steps)} of {entry.header.get('nsteps', '?')} step record(s); "
        f"{entry.segments_inflated} of {len(entry.segments)} segment(s) inflated)"
    )


def render_trace_sched(entry: TraceEntry) -> str:
    """The scheduler timeline of one trace: lifecycle table, fairness
    summary and queue-depth series — served entirely from the artifact's
    ``sched`` member (zero simulation, no step segment inflates)."""
    timeline = entry.sched
    if not len(timeline):
        return (
            "(no scheduler records — artifact predates trace format v4; "
            "re-run the cell to backfill it)"
        )
    lines = [
        render_table(
            ["Job", "Submit (s)", "Start (s)", "End (s)", "Wait (s)",
             "Nodes", "Granted", "Co-alloc", "Slowdown"],
            [
                (
                    row.job,
                    f"{row.submit_time:.3f}",
                    f"{row.start_time:.3f}" if row.start_time is not None else "-",
                    f"{row.end_time:.3f}" if row.end_time is not None else "-",
                    f"{row.wait_time:.3f}" if row.wait_time is not None else "-",
                    str(row.requested_nodes),
                    str(row.granted_nodes),
                    "yes" if row.co_allocated else "no",
                    f"{row.bounded_slowdown:.2f}"
                    if row.bounded_slowdown is not None
                    else "-",
                )
                for row in timeline.job_lifecycle()
            ],
        ),
        "",
    ]
    fairness = timeline.fairness_summary()
    lines.append(
        f"fairness  wait p50/p95/max {fairness.p50_wait:.3f}/"
        f"{fairness.p95_wait:.3f}/{fairness.max_wait:.3f} s | "
        f"slowdown p50/p95/max {fairness.p50_slowdown:.2f}/"
        f"{fairness.p95_slowdown:.2f}/{fairness.max_slowdown:.2f}"
    )
    depths = [depth for _, depth in timeline.queue_depth_series()]
    lines.append(
        f"queue     {len(depths)} sample(s), max depth {max(depths)}"
        if depths
        else "queue     (no samples)"
    )
    end_time = float(entry.header.get("end_time", 0.0))
    lines.append(
        f"cluster   {len(timeline.node_names())} node(s), allocation "
        f"utilization {timeline.utilization(end_time):.3f} over "
        f"{end_time:.3f} s"
    )
    return "\n".join(lines)


def render_trace(entry: TraceEntry, bin_seconds: float) -> str:
    """Header summary plus the per-job width timeline of one trace."""
    reader = TraceReader(entry)
    lines = [
        f"key       {entry.key}",
        f"run       {entry.header['run_id']}",
        f"scenario  {entry.header['scenario']}",
        f"workload  {entry.header['workload']}",
        f"end time  {entry.header['end_time']:.3f} s",
        "",
    ]
    intervals = reader.job_intervals()
    if not intervals:
        lines.append("(no step records)")
        return "\n".join(lines)
    lines.append(
        render_table(
            ["Job", "First step (s)", "Last end (s)", "Mask chg"],
            [
                (
                    job,
                    f"{lo:.3f}",
                    f"{hi:.3f}",
                    str(len(reader.mask_change_sequence(job))),
                )
                for job, (lo, hi) in intervals.items()
            ],
        )
    )
    lines.append("")
    lines.append(reader.render_job_widths(bin_seconds=bin_seconds))
    return "\n".join(lines)


def _gc_predicate(args: argparse.Namespace):
    if args.all:
        return lambda entry: True
    if args.scenario is None and args.workload_contains is None:
        return None  # only unreadable/old-format artifacts
    def predicate(entry: TraceEntry) -> bool:
        if args.scenario is not None and entry.header["scenario"] != args.scenario:
            return False
        if (
            args.workload_contains is not None
            and args.workload_contains not in entry.run.workload.label
        ):
            return False
        return True
    return predicate


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    store = TraceStore(args.store)
    if args.command == "ls":
        print(f"trace store {store.root}: {len(store)} trace(s)")
        print(render_trace_table(store, limit=args.limit, prefix=args.prefix))
        return 0
    if args.command in ("show", "export"):
        try:
            entry = store.load(args.key)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        if args.command == "show":
            if args.sched:
                print(render_trace_sched(entry))
            elif args.head is not None:
                print(render_trace_head(entry, args.head))
            else:
                print(render_trace(entry, args.bin_seconds))
            return 0
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        stem = f"{entry.header['scenario']}-{entry.key[:12]}"
        if args.format == "prv":
            # Emit the Paraver triple: the .prv record stream plus the .pcf
            # event/value dictionary and .row axis labels the real Paraver
            # UI needs to open it.
            path = out / f"{stem}.prv"
            path.write_text(prv_text(entry.tracer))
            (out / f"{stem}.pcf").write_text(pcf_text(entry.tracer))
            (out / f"{stem}.row").write_text(row_text(entry.tracer))
        else:
            path = out / f"{stem}.jsonl"
            path.write_bytes(gzip.decompress(entry.path.read_bytes()))
        print(f"exported {entry.key[:12]} -> {path}")
        return 0
    if args.command == "gc":
        removed = store.gc(
            _gc_predicate(args),
            dry_run=not args.delete,
            lru_bytes=args.lru,
            max_age=args.max_age,
        )
        verb = "removed" if args.delete else "would remove"
        print(f"gc {store.root}: {verb} {len(removed)} trace(s)")
        for key in removed:
            print(f"  {key[:12]}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
