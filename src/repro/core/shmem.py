"""Node shared memory — the backbone of the DLB framework.

In the real DLB library every process on a node maps a small POSIX shared
memory segment protected by a lock; DROM administrators write new CPU masks
into it and the managed processes read them back from their polling points.
This module reproduces the same structure in-process:

* one :class:`NodeSharedMemory` per simulated node;
* a :class:`ProcessEntry` per registered pid carrying the *current* mask (what
  the process is actually running with), the *assigned* mask (what an
  administrator last wrote) and the *initial* mask (CPU ownership, used when
  stolen CPUs are returned);
* the polling/acknowledgement protocol: an entry is *dirty* while assigned
  differs from current, and becomes clean when the process polls;
* the optional asynchronous mode, where a registered callback is invoked
  immediately when the mask changes (the helper-thread mode of the paper).

Thread-safety: all mutating operations take an ``RLock``, matching the
lock-protected address space described in Section 3.1.  The simulation itself
is single-threaded, but the lock keeps the component usable from real threads
(e.g. the asynchronous helper-thread example).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.errors import (
    CpuOwnershipError,
    ProcessAlreadyRegisteredError,
    ProcessNotRegisteredError,
)
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology

MaskCallback = Callable[[int, CpuSet], None]


@dataclass
class ProcessEntry:
    """Book-keeping of one DLB-registered process."""

    pid: int
    #: Mask the process is currently running with (last acknowledged).
    current_mask: CpuSet
    #: Mask last assigned by an administrator; differs from ``current_mask``
    #: while the process has not yet polled.
    assigned_mask: CpuSet
    #: Mask the process registered with; defines CPU *ownership* for
    #: return-stolen semantics.
    initial_mask: CpuSet
    #: Simulated (or wall-clock) registration timestamp; informational.
    registered_at: float = 0.0
    #: True when the entry was created by ``DROM_PreInit`` and the real
    #: process has not yet called ``DLB_Init``.
    preinitialized: bool = False
    #: CPUs taken from other pids when this entry was created with the steal
    #: flag: victim pid -> mask stolen from it.
    stolen_from: dict[int, CpuSet] = field(default_factory=dict)
    #: Asynchronous-mode callback; invoked as ``callback(pid, new_mask)``.
    async_callback: MaskCallback | None = None
    #: Number of times the process polled and found an update.
    updates_applied: int = 0

    @property
    def dirty(self) -> bool:
        """Whether an assigned mask is waiting to be acknowledged."""
        return self.assigned_mask != self.current_mask

    @property
    def ncpus(self) -> int:
        """Number of CPUs currently assigned to the process."""
        return self.assigned_mask.count()


class NodeSharedMemory:
    """The per-node DLB shared memory segment.

    Parameters
    ----------
    topology:
        Node hardware description; masks are validated against it.
    name:
        Identifier (usually the node name); used in error messages.
    max_processes:
        Capacity of the registry.  The real shared memory segment is a fixed
        size; the default of 64 is far above anything the experiments need but
        keeps the "shared memory full" error path testable.
    """

    def __init__(
        self,
        topology: NodeTopology,
        name: str | None = None,
        max_processes: int = 64,
    ) -> None:
        self.topology = topology
        self.name = name or topology.name
        self.max_processes = max_processes
        self._entries: dict[int, ProcessEntry] = {}
        self._lock = threading.RLock()
        self._observers: list[MaskCallback] = []
        self._unregister_observers: list[Callable[[int], None]] = []
        self._clock: Callable[[], float] = lambda: 0.0

    # -- wiring ------------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install a time source (the simulation engine's ``now``)."""
        self._clock = clock

    def add_observer(self, callback: MaskCallback) -> None:
        """Register an instrumentation hook called on every mask assignment."""
        self._observers.append(callback)

    def add_unregister_observer(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(pid)`` to run whenever a pid unregisters.

        Modules keeping per-pid state outside the entry table (LeWI's lending
        pools, statistics caches) hook in here so a finished process never
        leaves dangling state behind.
        """
        self._unregister_observers.append(callback)

    # -- registration --------------------------------------------------------

    def register(
        self,
        pid: int,
        mask: CpuSet,
        *,
        preinitialized: bool = False,
        steal: bool = False,
    ) -> ProcessEntry:
        """Register ``pid`` with ``mask``.

        If ``steal`` is true, CPUs in ``mask`` currently assigned to other
        processes are removed from those processes (their entries become
        dirty); otherwise an overlap raises :class:`CpuOwnershipError`.
        """
        with self._lock:
            if pid in self._entries and not self._entries[pid].preinitialized:
                raise ProcessAlreadyRegisteredError(pid)
            if len(self._entries) >= self.max_processes and pid not in self._entries:
                raise CpuOwnershipError(
                    f"node {self.name!r} shared memory is full "
                    f"({self.max_processes} processes)"
                )
            self.topology.validate_mask(mask)
            if mask.is_empty():
                raise ValueError("cannot register a process with an empty mask")

            stolen_from: dict[int, CpuSet] = {}
            for other in self._entries.values():
                if other.pid == pid:
                    continue
                overlap = other.assigned_mask & mask
                if overlap.is_empty():
                    continue
                if not steal:
                    raise CpuOwnershipError(
                        f"CPUs {overlap.to_list_string()} requested for pid {pid} are "
                        f"assigned to pid {other.pid}; use the STEAL flag to shrink it"
                    )
                stolen_from[other.pid] = overlap
                self._assign(other, other.assigned_mask - overlap)

            if pid in self._entries:
                # Completing a pre-initialised registration: the child process
                # inherits the reserved mask (DROM_PreInit workflow).
                entry = self._entries[pid]
                entry.preinitialized = preinitialized
                entry.stolen_from.update(stolen_from)
                return entry

            entry = ProcessEntry(
                pid=pid,
                current_mask=mask,
                assigned_mask=mask,
                initial_mask=mask,
                registered_at=self._clock(),
                preinitialized=preinitialized,
                stolen_from=stolen_from,
            )
            self._entries[pid] = entry
            return entry

    def unregister(self, pid: int) -> ProcessEntry:
        """Remove ``pid`` from the registry and return its final entry."""
        with self._lock:
            entry = self._require(pid)
            del self._entries[pid]
            for observer in self._unregister_observers:
                observer(pid)
            return entry

    # -- queries --------------------------------------------------------------

    def pids(self) -> list[int]:
        """Registered pids in registration order."""
        with self._lock:
            return list(self._entries.keys())

    def entry(self, pid: int) -> ProcessEntry:
        with self._lock:
            return self._require(pid)

    def has(self, pid: int) -> bool:
        with self._lock:
            return pid in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[ProcessEntry]:
        with self._lock:
            return iter(list(self._entries.values()))

    def get_mask(self, pid: int) -> CpuSet:
        """The mask currently assigned to ``pid`` (may not yet be applied)."""
        with self._lock:
            return self._require(pid).assigned_mask

    def busy_mask(self) -> CpuSet:
        """Union of all assigned masks on the node."""
        with self._lock:
            busy = CpuSet.empty()
            for entry in self._entries.values():
                busy = busy | entry.assigned_mask
            return busy

    def free_mask(self) -> CpuSet:
        """CPUs of the node not assigned to any registered process."""
        return self.topology.full_mask() - self.busy_mask()

    def oversubscribed_cpus(self) -> CpuSet:
        """CPUs assigned to more than one process (should stay empty with DROM)."""
        with self._lock:
            seen = CpuSet.empty()
            dup = CpuSet.empty()
            for entry in self._entries.values():
                dup = dup | (seen & entry.assigned_mask)
                seen = seen | entry.assigned_mask
            return dup

    # -- mask management --------------------------------------------------------

    def set_mask(self, pid: int, mask: CpuSet, *, steal: bool = False) -> ProcessEntry:
        """Assign a new mask to ``pid``.

        The entry becomes dirty until the process polls (or its asynchronous
        callback is delivered).  With ``steal`` the CPUs are taken from any
        other process currently holding them.
        """
        with self._lock:
            entry = self._require(pid)
            self.topology.validate_mask(mask)
            if mask.is_empty():
                raise ValueError(f"refusing to assign an empty mask to pid {pid}")
            for other in self._entries.values():
                if other.pid == pid:
                    continue
                overlap = other.assigned_mask & mask
                if overlap.is_empty():
                    continue
                if not steal:
                    raise CpuOwnershipError(
                        f"CPUs {overlap.to_list_string()} are assigned to pid "
                        f"{other.pid}; use the STEAL flag to shrink it"
                    )
                entry.stolen_from.setdefault(other.pid, CpuSet.empty())
                entry.stolen_from[other.pid] = entry.stolen_from[other.pid] | overlap
                self._assign(other, other.assigned_mask - overlap)
            self._assign(entry, mask)
            return entry

    def return_stolen(self, pid: int) -> dict[int, CpuSet]:
        """Give back the CPUs ``pid`` stole, to owners that are still registered.

        Returns the mapping of owner pid to returned mask.  CPUs whose owner
        has already finished are left unassigned (the SLURM plugin hands them
        out through its ``release_resources`` path instead).
        """
        with self._lock:
            entry = self._require(pid)
            returned: dict[int, CpuSet] = {}
            for owner_pid, stolen in list(entry.stolen_from.items()):
                if owner_pid not in self._entries:
                    continue
                owner = self._entries[owner_pid]
                give_back = stolen & entry.assigned_mask
                if give_back.is_empty():
                    continue
                self._assign(entry, entry.assigned_mask - give_back)
                self._assign(owner, owner.assigned_mask | give_back)
                returned[owner_pid] = give_back
                del entry.stolen_from[owner_pid]
            return returned

    def poll(self, pid: int) -> CpuSet | None:
        """Process-side poll: return the new mask if one is pending, else ``None``.

        Acknowledges the assignment (the entry becomes clean).
        """
        with self._lock:
            entry = self._require(pid)
            if not entry.dirty:
                return None
            entry.current_mask = entry.assigned_mask
            entry.updates_applied += 1
            return entry.current_mask

    def set_async_callback(self, pid: int, callback: MaskCallback | None) -> None:
        """Install (or clear) the asynchronous-mode callback of ``pid``."""
        with self._lock:
            self._require(pid).async_callback = callback

    # -- internals ----------------------------------------------------------------

    def _require(self, pid: int) -> ProcessEntry:
        if pid not in self._entries:
            raise ProcessNotRegisteredError(pid)
        return self._entries[pid]

    def _assign(self, entry: ProcessEntry, mask: CpuSet) -> None:
        """Write a new assigned mask and fire callbacks/observers."""
        if mask == entry.assigned_mask:
            return
        entry.assigned_mask = mask
        for observer in self._observers:
            observer(entry.pid, mask)
        if entry.async_callback is not None:
            # Asynchronous mode: the helper thread delivers the change right
            # away and the entry is immediately acknowledged.
            entry.current_mask = mask
            entry.updates_applied += 1
            entry.async_callback(entry.pid, mask)


class ShmemRegistry:
    """Registry of per-node shared memory segments (one per simulated node)."""

    def __init__(self) -> None:
        self._segments: dict[str, NodeSharedMemory] = {}

    def create(self, topology: NodeTopology, name: str | None = None) -> NodeSharedMemory:
        name = name or topology.name
        if name in self._segments:
            raise ValueError(f"shared memory for node {name!r} already exists")
        shmem = NodeSharedMemory(topology, name=name)
        self._segments[name] = shmem
        return shmem

    def get(self, name: str) -> NodeSharedMemory:
        if name not in self._segments:
            raise KeyError(f"no shared memory segment for node {name!r}")
        return self._segments[name]

    def get_or_create(self, topology: NodeTopology, name: str | None = None) -> NodeSharedMemory:
        name = name or topology.name
        if name in self._segments:
            return self._segments[name]
        return self.create(topology, name=name)

    def names(self) -> list[str]:
        return list(self._segments.keys())

    def __contains__(self, name: object) -> bool:
        return name in self._segments

    def __len__(self) -> int:
        return len(self._segments)
