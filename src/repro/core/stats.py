"""DROM statistics module — run-time performance data for the scheduler.

The paper's future-work section proposes "the collection of useful data from
applications at run time.  The collected information can be consulted by an
external [entity] to get info about applications performance and send them to
the job scheduler to be taken into account for further scheduling decisions".
The real DLB library later grew this capability as the TALP module; this
module provides the equivalent for the reproduction:

* every DLB process accumulates, in the node shared memory, counters of
  useful compute time, idle (load-imbalance) time, MPI time and the number of
  DROM mask changes it has applied;
* an attached administrator reads them back per pid or per node
  (:meth:`StatsModule.process_stats`, :meth:`StatsModule.node_summary`), which
  is exactly what a DROM-aware scheduling policy needs to choose "victim"
  nodes with low utilisation.

The workload runner feeds these counters from the application models, and the
``LowUtilisationFirst`` policy in :mod:`repro.slurm.policies` consumes them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.errors import ProcessNotRegisteredError
from repro.core.shmem import NodeSharedMemory


@dataclass
class ProcessStats:
    """Per-process accumulated counters (the shared-memory stats record)."""

    pid: int
    #: Seconds of useful computation performed by the process's threads.
    useful_time: float = 0.0
    #: Seconds the threads spent idle (load imbalance, shrunk-team gaps).
    idle_time: float = 0.0
    #: Seconds spent inside MPI calls.
    mpi_time: float = 0.0
    #: Number of DROM mask changes the process has applied.
    mask_changes: int = 0
    #: Integral of (CPUs owned x seconds) — the denominator for utilisation.
    cpu_seconds_owned: float = 0.0

    @property
    def utilisation(self) -> float:
        """Fraction of the owned CPU time that was useful computation."""
        if self.cpu_seconds_owned <= 0:
            return 0.0
        return min(1.0, self.useful_time / self.cpu_seconds_owned)

    @property
    def parallel_efficiency(self) -> float:
        """Useful time over useful + idle + MPI time (a LeWI-style metric)."""
        total = self.useful_time + self.idle_time + self.mpi_time
        if total <= 0:
            return 0.0
        return self.useful_time / total


@dataclass(frozen=True)
class NodeStatsSummary:
    """Aggregated view of one node, as a scheduler would consume it."""

    node: str
    nprocesses: int
    cpus_owned: int
    utilisation: float
    parallel_efficiency: float
    total_mask_changes: int


class StatsModule:
    """Accumulates and serves run-time statistics for one node.

    The module piggybacks on the node's :class:`NodeSharedMemory`: only pids
    registered there may report statistics, and entries are dropped when the
    process unregisters (mirroring how the stats live in the same shared
    memory segment).
    """

    def __init__(self, shmem: NodeSharedMemory) -> None:
        self._shmem = shmem
        self._stats: dict[int, ProcessStats] = {}
        self._lock = threading.RLock()

    # -- process side -------------------------------------------------------------

    def record_compute(
        self, pid: int, useful_time: float, idle_time: float = 0.0
    ) -> ProcessStats:
        """Add one execution interval's useful/idle seconds for ``pid``."""
        if useful_time < 0 or idle_time < 0:
            raise ValueError("times must be non-negative")
        with self._lock:
            stats = self._require(pid)
            stats.useful_time += useful_time
            stats.idle_time += idle_time
            return stats

    def record_compute_batch(
        self, pid: int, intervals: "list[tuple[float, float, int, float]]"
    ) -> ProcessStats:
        """Account a whole batch of execution intervals in one call.

        Each entry is ``(useful_time, idle_time, ncpus, seconds)`` — one
        step's compute accounting plus its CPU-ownership integral.  The
        accumulators advance entry by entry, in order, exactly as the same
        sequence of :meth:`record_compute` + :meth:`record_ownership` calls
        would (float addition is order-sensitive), but with one lock acquire
        and one registry lookup for the whole batch.
        """
        with self._lock:
            stats = self._require(pid)
            useful = stats.useful_time
            idle = stats.idle_time
            owned = stats.cpu_seconds_owned
            for useful_time, idle_time, ncpus, seconds in intervals:
                if useful_time < 0 or idle_time < 0:
                    raise ValueError("times must be non-negative")
                if ncpus < 0 or seconds < 0:
                    raise ValueError("ncpus and seconds must be non-negative")
                useful += useful_time
                idle += idle_time
                owned += ncpus * seconds
            stats.useful_time = useful
            stats.idle_time = idle
            stats.cpu_seconds_owned = owned
            return stats

    def record_mpi(self, pid: int, mpi_time: float) -> ProcessStats:
        """Add time spent inside MPI calls."""
        if mpi_time < 0:
            raise ValueError("mpi_time must be non-negative")
        with self._lock:
            stats = self._require(pid)
            stats.mpi_time += mpi_time
            return stats

    def record_ownership(self, pid: int, ncpus: int, seconds: float) -> ProcessStats:
        """Account ``ncpus`` owned for ``seconds`` (utilisation denominator)."""
        if ncpus < 0 or seconds < 0:
            raise ValueError("ncpus and seconds must be non-negative")
        with self._lock:
            stats = self._require(pid)
            stats.cpu_seconds_owned += ncpus * seconds
            return stats

    def record_mask_change(self, pid: int) -> ProcessStats:
        with self._lock:
            stats = self._require(pid)
            stats.mask_changes += 1
            return stats

    def drop(self, pid: int) -> None:
        """Remove a finished process's record (``DROM_PostFinalize`` path)."""
        with self._lock:
            self._stats.pop(pid, None)

    # -- administrator side ------------------------------------------------------------

    def process_stats(self, pid: int) -> ProcessStats:
        """Counters of one registered process (raises if unknown)."""
        with self._lock:
            if pid not in self._stats and not self._shmem.has(pid):
                raise ProcessNotRegisteredError(pid)
            return self._require(pid)

    def pids(self) -> list[int]:
        with self._lock:
            return list(self._stats.keys())

    def node_summary(self) -> NodeStatsSummary:
        """Aggregate the node's statistics for the scheduler."""
        with self._lock:
            records = [self._stats[pid] for pid in self._stats if self._shmem.has(pid)]
            cpus_owned = self._shmem.busy_mask().count()
            if not records:
                return NodeStatsSummary(
                    node=self._shmem.name,
                    nprocesses=0,
                    cpus_owned=cpus_owned,
                    utilisation=0.0,
                    parallel_efficiency=0.0,
                    total_mask_changes=0,
                )
            owned = sum(r.cpu_seconds_owned for r in records)
            useful = sum(r.useful_time for r in records)
            busy = sum(r.useful_time + r.idle_time + r.mpi_time for r in records)
            return NodeStatsSummary(
                node=self._shmem.name,
                nprocesses=len(records),
                cpus_owned=cpus_owned,
                utilisation=min(1.0, useful / owned) if owned > 0 else 0.0,
                parallel_efficiency=useful / busy if busy > 0 else 0.0,
                total_mask_changes=sum(r.mask_changes for r in records),
            )

    # -- internals ----------------------------------------------------------------------

    def _require(self, pid: int) -> ProcessStats:
        if pid not in self._stats:
            if not self._shmem.has(pid):
                raise ProcessNotRegisteredError(pid)
            self._stats[pid] = ProcessStats(pid=pid)
        return self._stats[pid]
