"""DLB framework core: shared memory, DROM administrator API, process handle, LeWI.

This subpackage is the paper's primary contribution — the Dynamic Resource
Ownership Management (DROM) module inside the DLB library:

* :class:`~repro.core.shmem.NodeSharedMemory` — the lock-protected per-node
  registry every DLB process attaches to.
* :class:`~repro.core.drom.DromAdmin` — the administrator API
  (``DROM_Attach`` … ``DROM_PostFinalize``) used by SLURM or user tools.
* :class:`~repro.core.dlb.DlbProcess` — the process-side handle
  (``DLB_Init`` / ``DLB_PollDROM`` / ``DLB_Finalize`` and the asynchronous
  callback mode).
* :class:`~repro.core.lewi.LewiModule` — the pre-existing Lend-When-Idle load
  balancing module DROM coexists with.
* :class:`~repro.core.flags.DromFlags`, :class:`~repro.core.errors.DlbError` —
  option flags and return codes mirroring the C interface.
"""

from repro.core.dlb import DlbProcess
from repro.core.drom import (
    DROM_PREINIT_MASK_ENV,
    DROM_PREINIT_PID_ENV,
    DromAdmin,
    PreInitResult,
    attach_admin,
)
from repro.core.errors import (
    CpuOwnershipError,
    DlbError,
    DlbException,
    NotAttachedError,
    ProcessAlreadyRegisteredError,
    ProcessNotRegisteredError,
)
from repro.core.flags import DromFlags
from repro.core.lewi import LewiModule
from repro.core.shmem import NodeSharedMemory, ProcessEntry, ShmemRegistry
from repro.core.stats import NodeStatsSummary, ProcessStats, StatsModule

__all__ = [
    "DlbProcess",
    "DromAdmin",
    "PreInitResult",
    "attach_admin",
    "DROM_PREINIT_PID_ENV",
    "DROM_PREINIT_MASK_ENV",
    "DlbError",
    "DlbException",
    "DromFlags",
    "CpuOwnershipError",
    "NotAttachedError",
    "ProcessAlreadyRegisteredError",
    "ProcessNotRegisteredError",
    "LewiModule",
    "NodeSharedMemory",
    "ProcessEntry",
    "ShmemRegistry",
    "StatsModule",
    "ProcessStats",
    "NodeStatsSummary",
]
