"""LeWI — the Lend-When-Idle module of DLB.

DROM is built inside the pre-existing DLB framework whose original module,
LeWI, dynamically balances load *within* one application: when a process
blocks (typically inside an MPI call) it lends its CPUs to the node pool, and
other processes of the same node can borrow them to widen their thread teams;
when the lender resumes it reclaims its CPUs.

DROM itself does not need LeWI, but the paper presents them as the two modules
of the same framework (Figure 1), and the ablation benchmarks use LeWI to
contrast *intra-job* malleability (load balancing) with DROM's *inter-job*
malleability (resource management).  The implementation below provides the
lend / borrow / reclaim cycle over the same :class:`NodeSharedMemory` process
entries that DROM manages, so the two modules compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import DlbError, ProcessNotRegisteredError
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet


@dataclass
class LendingState:
    """Per-node pool of lent CPUs."""

    #: CPUs currently lent and not borrowed, available for any process.
    idle_pool: CpuSet = CpuSet.empty()
    #: Owner of each lent CPU: cpu id -> lender pid.
    lender_of: dict[int, int] = field(default_factory=dict)
    #: Current borrower of each lent CPU: cpu id -> borrower pid.
    borrower_of: dict[int, int] = field(default_factory=dict)


class LewiModule:
    """Lend-When-Idle coordination for one node.

    The module subscribes to the shared memory's unregister notifications, so
    a process that finalises (``DLB_Finalize`` / ``DROM_PostFinalize``) is
    automatically purged from the lending pools: its lent CPUs stop being
    borrowable (their owner is gone) and its borrowed CPUs return to the idle
    pool for the surviving processes.
    """

    def __init__(self, shmem: NodeSharedMemory) -> None:
        self._shmem = shmem
        self._state = LendingState()
        shmem.add_unregister_observer(self.forget)

    # -- lending ------------------------------------------------------------

    def lend(self, pid: int, mask: CpuSet | None = None) -> tuple[DlbError, CpuSet]:
        """Lend CPUs of ``pid`` to the node pool.

        With ``mask=None`` the process lends everything except its lowest CPU
        (it keeps one CPU to make progress and to be able to reclaim), which
        is DLB's behaviour when a process enters a blocking MPI call.
        Returns the mask actually lent.
        """
        try:
            entry = self._shmem.entry(pid)
        except ProcessNotRegisteredError:
            return DlbError.DLB_ERR_NOPROC, CpuSet.empty()
        owned = entry.assigned_mask
        if mask is None:
            if owned.count() <= 1:
                return DlbError.DLB_NOUPDT, CpuSet.empty()
            mask = owned - CpuSet([owned.lowest()])
        lend_mask = mask & owned
        # CPUs already lent by this pid are not lent twice.
        lend_mask = CpuSet([c for c in lend_mask if c not in self._state.lender_of])
        if lend_mask.is_empty():
            return DlbError.DLB_NOUPDT, CpuSet.empty()
        for cpu in lend_mask:
            self._state.lender_of[cpu] = pid
        self._state.idle_pool = self._state.idle_pool | lend_mask
        return DlbError.DLB_SUCCESS, lend_mask

    def borrow(self, pid: int, max_cpus: int | None = None) -> tuple[DlbError, CpuSet]:
        """Borrow idle CPUs from the pool for ``pid``.

        Returns the borrowed mask; the caller (the programming-model runtime)
        is responsible for actually widening its thread team.
        """
        if not self._shmem.has(pid):
            return DlbError.DLB_ERR_NOPROC, CpuSet.empty()
        available = CpuSet(
            [c for c in self._state.idle_pool if self._state.lender_of.get(c) != pid]
        )
        if available.is_empty():
            return DlbError.DLB_NOUPDT, CpuSet.empty()
        take = available if max_cpus is None else available.first(max_cpus)
        if take.is_empty():
            return DlbError.DLB_NOUPDT, CpuSet.empty()
        for cpu in take:
            self._state.borrower_of[cpu] = pid
        self._state.idle_pool = self._state.idle_pool - take
        return DlbError.DLB_SUCCESS, take

    def reclaim(self, pid: int) -> tuple[DlbError, CpuSet, dict[int, CpuSet]]:
        """Reclaim the CPUs ``pid`` had lent.

        Returns ``(code, reclaimed_mask, revoked)`` where ``revoked`` maps each
        borrower pid to the CPUs it must stop using (the runtime narrows its
        team at its next malleability point).
        """
        lent = CpuSet([c for c, owner in self._state.lender_of.items() if owner == pid])
        if lent.is_empty():
            return DlbError.DLB_NOUPDT, CpuSet.empty(), {}
        revoked: dict[int, CpuSet] = {}
        for cpu in lent:
            borrower = self._state.borrower_of.pop(cpu, None)
            if borrower is not None:
                revoked.setdefault(borrower, CpuSet.empty())
                revoked[borrower] = revoked[borrower].add(cpu)
            del self._state.lender_of[cpu]
        self._state.idle_pool = self._state.idle_pool - lent
        return DlbError.DLB_SUCCESS, lent, revoked

    def return_borrowed(self, pid: int, mask: CpuSet | None = None) -> tuple[DlbError, CpuSet]:
        """Voluntarily return CPUs ``pid`` had borrowed to the idle pool."""
        borrowed = CpuSet(
            [c for c, borrower in self._state.borrower_of.items() if borrower == pid]
        )
        give_back = borrowed if mask is None else borrowed & mask
        if give_back.is_empty():
            return DlbError.DLB_NOUPDT, CpuSet.empty()
        for cpu in give_back:
            del self._state.borrower_of[cpu]
        self._state.idle_pool = self._state.idle_pool | give_back
        return DlbError.DLB_SUCCESS, give_back

    # -- teardown -----------------------------------------------------------

    def forget(self, pid: int) -> None:
        """Purge every trace of ``pid`` from the lending state.

        Called automatically when ``pid`` unregisters from the node shared
        memory (and callable directly from process teardown paths).  CPUs the
        pid had lent are withdrawn from the pool — their owner no longer
        exists, so they must not remain borrowable under a stale lender pid —
        and CPUs the pid had borrowed go back to the idle pool.
        """
        state = self._state
        lent = CpuSet([c for c, owner in state.lender_of.items() if owner == pid])
        for cpu in lent:
            del state.lender_of[cpu]
            state.borrower_of.pop(cpu, None)
        state.idle_pool = state.idle_pool - lent
        borrowed = CpuSet(
            [c for c, borrower in state.borrower_of.items() if borrower == pid]
        )
        for cpu in borrowed:
            del state.borrower_of[cpu]
        state.idle_pool = state.idle_pool | borrowed

    # -- queries --------------------------------------------------------------

    def idle_cpus(self) -> CpuSet:
        """CPUs currently lent and not borrowed by anyone."""
        return self._state.idle_pool

    def lent_by(self, pid: int) -> CpuSet:
        return CpuSet([c for c, owner in self._state.lender_of.items() if owner == pid])

    def borrowed_by(self, pid: int) -> CpuSet:
        return CpuSet(
            [c for c, borrower in self._state.borrower_of.items() if borrower == pid]
        )

    def effective_mask(self, pid: int) -> CpuSet:
        """Mask a process can actually compute on: assigned - lent + borrowed."""
        entry = self._shmem.entry(pid)
        return (entry.assigned_mask - self.lent_by(pid)) | self.borrowed_by(pid)
