"""DLB return codes and exceptions.

The C library reports errors through negative integer return codes; the
public Python API in this reproduction mirrors those codes (so benchmarks and
tests can check the same conditions the paper's integration relies on) while
also raising typed exceptions for programming errors.
"""

from __future__ import annotations

from enum import IntEnum


class DlbError(IntEnum):
    """Return codes of the DLB/DROM API, mirroring ``dlb_errors.h``.

    Non-negative codes are success-ish (``DLB_SUCCESS``, ``DLB_NOUPDT``,
    ``DLB_NOTED``); negative codes are failures.
    """

    #: Operation applied and a new value is available (e.g. PollDROM got a mask).
    DLB_SUCCESS = 0
    #: Operation succeeded but there was nothing to update (no pending mask).
    DLB_NOUPDT = 1
    #: Operation noted; it will complete asynchronously (e.g. a mask change
    #: that the target process has not yet acknowledged).
    DLB_NOTED = 2

    #: Unknown / generic error.
    DLB_ERR_UNKNOWN = -1
    #: The calling process is not attached / initialised.
    DLB_ERR_NOINIT = -2
    #: The process is already initialised / attached.
    DLB_ERR_INIT = -3
    #: The target pid is not registered in the shared memory.
    DLB_ERR_NOPROC = -4
    #: A pid is already registered (PreInit of an existing pid without steal).
    DLB_ERR_PDIRTY = -5
    #: Permission error: the requested CPUs are owned by another process and
    #: stealing was not requested.
    DLB_ERR_PERM = -6
    #: A synchronous operation timed out waiting for the target to react.
    DLB_ERR_TIMEOUT = -7
    #: The requested mask is empty or malformed.
    DLB_ERR_REQST = -8
    #: The node shared memory is full (too many registered processes).
    DLB_ERR_NOMEM = -9
    #: The requested CPUs do not exist in the node.
    DLB_ERR_NOCOMP = -10

    def is_error(self) -> bool:
        return self.value < 0

    def ok(self) -> bool:
        return self.value >= 0


class DlbException(RuntimeError):
    """Base exception for misuse of the DLB/DROM Python API."""

    def __init__(self, code: DlbError, message: str = "") -> None:
        super().__init__(message or code.name)
        self.code = code


class NotAttachedError(DlbException):
    """An administrator operation was attempted before ``DROM_Attach``."""

    def __init__(self, message: str = "administrator process is not attached") -> None:
        super().__init__(DlbError.DLB_ERR_NOINIT, message)


class ProcessNotRegisteredError(DlbException):
    """The target pid is not registered in the node shared memory."""

    def __init__(self, pid: int) -> None:
        super().__init__(DlbError.DLB_ERR_NOPROC, f"pid {pid} is not registered with DLB")
        self.pid = pid


class ProcessAlreadyRegisteredError(DlbException):
    """A pid was registered twice (without the steal/replace flags)."""

    def __init__(self, pid: int) -> None:
        super().__init__(DlbError.DLB_ERR_INIT, f"pid {pid} is already registered with DLB")
        self.pid = pid


class CpuOwnershipError(DlbException):
    """Requested CPUs belong to another process and stealing was not allowed."""

    def __init__(self, message: str) -> None:
        super().__init__(DlbError.DLB_ERR_PERM, message)
