"""Process-side DLB handle.

This is the view an *application* process has of DLB: it initialises itself
into the node shared memory (``DLB_Init``), polls for pending mask changes at
its malleability points (``DLB_PollDROM``), optionally enables the
asynchronous callback mode, and finalises on exit (``DLB_Finalize``).

Listing 1 of the paper shows the manual integration pattern reproduced by
:class:`DlbProcess`:

.. code-block:: python

    dlb = DlbProcess(pid=..., shmem=node_shmem, mask=initial_mask)
    dlb.init()
    for _ in range(iterations):
        code, ncpus, mask = dlb.poll_drom()
        if code is DlbError.DLB_SUCCESS:
            modify_num_resources(ncpus, mask)
        ...  # parallel region
    dlb.finalize()

When the process runs a supported programming model the polling calls are
issued automatically by the PMPI/OMPT interception layers in
:mod:`repro.runtime`, so the application never sees this API — exactly the
"effortless" integration the paper describes.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.drom import DROM_PREINIT_MASK_ENV, DROM_PREINIT_PID_ENV
from repro.core.errors import (
    DlbError,
    DlbException,
    ProcessAlreadyRegisteredError,
    ProcessNotRegisteredError,
)
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet

MaskCallback = Callable[[CpuSet], None]


class DlbProcess:
    """Per-process DLB handle (the ``DLB_*`` half of the API).

    Parameters
    ----------
    pid:
        Process identifier within the node (any unique integer).
    shmem:
        The node shared memory to register with.
    mask:
        Initial CPU mask.  If omitted, the mask reserved for this pid by a
        prior ``DROM_PreInit`` is looked up from ``environ``.
    environ:
        Environment mapping used to complete a pre-initialised registration
        (defaults to ``os.environ``).
    """

    def __init__(
        self,
        pid: int,
        shmem: NodeSharedMemory,
        mask: CpuSet | None = None,
        environ: dict[str, str] | None = None,
    ) -> None:
        self.pid = pid
        self._shmem = shmem
        self._environ = dict(os.environ) if environ is None else dict(environ)
        self._initial_mask = mask
        self._initialized = False
        self._async_callback: MaskCallback | None = None
        self.polls = 0
        self.updates = 0

    # -- lifecycle ------------------------------------------------------------

    def init(self) -> DlbError:
        """Register the process with DLB (``DLB_Init``).

        A process started through the ``DROM_PreInit`` workflow finds its
        reserved mask in the environment and completes that registration;
        otherwise it registers fresh with the supplied mask.
        """
        if self._initialized:
            return DlbError.DLB_ERR_INIT
        mask = self._initial_mask
        preinit_pid = self._environ.get(DROM_PREINIT_PID_ENV)
        if preinit_pid is not None and int(preinit_pid) == self.pid and self._shmem.has(self.pid):
            # Pre-initialised by the administrator: adopt the reserved entry.
            entry = self._shmem.entry(self.pid)
            entry.preinitialized = False
            if mask is not None and mask != entry.assigned_mask:
                # The reservation wins; the caller-supplied mask is ignored,
                # mirroring how the execed child inherits the slurmstepd mask.
                pass
            self._initialized = True
            return DlbError.DLB_SUCCESS
        if mask is None:
            env_mask = self._environ.get(DROM_PREINIT_MASK_ENV)
            if env_mask is None:
                raise DlbException(
                    DlbError.DLB_ERR_REQST,
                    "DLB_Init needs an initial mask (none supplied, none pre-initialised)",
                )
            mask = CpuSet.parse(env_mask)
        try:
            self._shmem.register(self.pid, mask)
        except ProcessAlreadyRegisteredError:
            return DlbError.DLB_ERR_INIT
        self._initialized = True
        return DlbError.DLB_SUCCESS

    def finalize(self) -> DlbError:
        """Unregister from DLB (``DLB_Finalize``)."""
        if not self._initialized:
            return DlbError.DLB_ERR_NOINIT
        try:
            self._shmem.unregister(self.pid)
        except ProcessNotRegisteredError:
            # The administrator may have already cleaned the entry
            # (DROM_PostFinalize); that is not an application error.
            pass
        self._initialized = False
        return DlbError.DLB_SUCCESS

    @property
    def initialized(self) -> bool:
        return self._initialized

    # -- polling -----------------------------------------------------------------

    def poll_drom(self) -> tuple[DlbError, int, CpuSet | None]:
        """Check for a pending mask change (``DLB_PollDROM``).

        Returns ``(DLB_SUCCESS, ncpus, mask)`` when a new mask is available,
        ``(DLB_NOUPDT, current_ncpus, None)`` when there is nothing to update.
        """
        self._require_init()
        self.polls += 1
        new_mask = self._shmem.poll(self.pid)
        if new_mask is None:
            current = self._shmem.get_mask(self.pid)
            return DlbError.DLB_NOUPDT, current.count(), None
        self.updates += 1
        return DlbError.DLB_SUCCESS, new_mask.count(), new_mask

    def current_mask(self) -> CpuSet:
        """The mask currently assigned to this process."""
        self._require_init()
        return self._shmem.get_mask(self.pid)

    # -- asynchronous mode ----------------------------------------------------------

    def enable_async(self, callback: MaskCallback) -> DlbError:
        """Enable the asynchronous (helper-thread) mode.

        ``callback(new_mask)`` is invoked immediately whenever an
        administrator changes this process's mask, instead of waiting for the
        next poll.
        """
        self._require_init()
        self._async_callback = callback
        self._shmem.set_async_callback(self.pid, lambda _pid, mask: self._on_async(mask))
        return DlbError.DLB_SUCCESS

    def disable_async(self) -> DlbError:
        self._require_init()
        self._async_callback = None
        self._shmem.set_async_callback(self.pid, None)
        return DlbError.DLB_SUCCESS

    def _on_async(self, mask: CpuSet) -> None:
        self.updates += 1
        if self._async_callback is not None:
            self._async_callback(mask)

    # -- helpers ------------------------------------------------------------------------

    def _require_init(self) -> None:
        if not self._initialized:
            raise DlbException(DlbError.DLB_ERR_NOINIT, "DLB_Init has not been called")
