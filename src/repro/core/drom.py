"""The DROM administrator API (Section 3.2 of the paper).

An *administrator process* (SLURM's slurmd/slurmstepd in the paper, or a
user-written tool) attaches to the node's DLB shared memory and can then
query and modify the CPU masks of every process registered with DLB on that
node.  The interface reproduced here follows the paper's function list:

========================  ====================================================
Paper C function          This module
========================  ====================================================
``DROM_Attach``           :meth:`DromAdmin.attach`
``DROM_Detach``           :meth:`DromAdmin.detach`
``DROM_GetPidList``       :meth:`DromAdmin.get_pid_list`
``DROM_GetProcessMask``   :meth:`DromAdmin.get_process_mask`
``DROM_SetProcessMask``   :meth:`DromAdmin.set_process_mask`
``DROM_PreInit``          :meth:`DromAdmin.pre_init`
``DROM_PostFinalize``     :meth:`DromAdmin.post_finalize`
========================  ====================================================

Each method returns a :class:`~repro.core.errors.DlbError` code (mirroring the
C ``int`` returns) alongside its payload where applicable; misuse (calling
before attach, unknown pid, ownership violations without ``STEAL``) surfaces
both as error codes and as typed exceptions depending on the entry point, so
the behaviour can be tested the same way the C API would be.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.errors import (
    CpuOwnershipError,
    DlbError,
    NotAttachedError,
    ProcessAlreadyRegisteredError,
    ProcessNotRegisteredError,
)
from repro.core.flags import DromFlags
from repro.core.shmem import NodeSharedMemory
from repro.cpuset.mask import CpuSet


#: Environment variable propagated by ``DROM_PreInit`` so that the child
#: process can register itself under the pre-initialised pid (the
#: ``next_environ`` mechanism of the paper).
DROM_PREINIT_PID_ENV = "DLB_DROM_PREINIT_PID"
#: Environment variable carrying the reserved mask (CPU list string).
DROM_PREINIT_MASK_ENV = "DLB_DROM_PREINIT_MASK"


@dataclass
class PreInitResult:
    """Outcome of :meth:`DromAdmin.pre_init`.

    Attributes
    ----------
    code:
        ``DLB_SUCCESS`` when the reservation was made, an error code otherwise.
    next_environ:
        Environment additions the administrator must pass to the child process
        it forks/execs, so the child can complete the registration.
    shrunk:
        Map of victim pid to the CPUs removed from it to make room.
    """

    code: DlbError
    next_environ: dict[str, str] = field(default_factory=dict)
    shrunk: dict[int, CpuSet] = field(default_factory=dict)


class DromAdmin:
    """A DROM administrator attached to one node's shared memory.

    One administrator instance manages exactly one node (the paper: "if the
    submission allocates more than one node, one administrator process must be
    created for each node that requires management").

    Parameters
    ----------
    shmem:
        The node shared memory to administer.
    clock, sleep:
        Time sources used by the ``SYNC_QUERY`` wait loop of
        :meth:`set_process_mask`.  They default to ``None``, which selects the
        simulation behaviour: nothing else can run while the administrator
        waits in the single-threaded discrete-event experiments, so the call
        reports ``DLB_ERR_TIMEOUT`` immediately instead of burning
        ``sync_timeout`` seconds of real wall-clock time.  Pass
        ``clock=time.monotonic, sleep=time.sleep`` (or use
        :func:`attach_admin` with ``real_time=True``) when the managed
        processes run on real threads that can acknowledge concurrently.
    """

    def __init__(
        self,
        shmem: NodeSharedMemory,
        *,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if (clock is None) != (sleep is None):
            raise ValueError(
                "clock and sleep must be provided together (both for "
                "real-thread waiting, neither for the simulation)"
            )
        self._shmem = shmem
        self._attached = False
        self._clock = clock
        self._sleep = sleep

    # -- attach / detach ----------------------------------------------------

    def attach(self) -> DlbError:
        """Attach to the node's DLB shared memory (``DROM_Attach``)."""
        if self._attached:
            return DlbError.DLB_ERR_INIT
        self._attached = True
        return DlbError.DLB_SUCCESS

    def detach(self) -> DlbError:
        """Detach from the shared memory (``DROM_Detach``)."""
        if not self._attached:
            return DlbError.DLB_ERR_NOINIT
        self._attached = False
        return DlbError.DLB_SUCCESS

    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def shmem(self) -> NodeSharedMemory:
        return self._shmem

    # -- queries --------------------------------------------------------------

    def get_pid_list(self, max_len: int | None = None) -> list[int]:
        """Pids of all processes registered with DLB on this node
        (``DROM_GetPidList``)."""
        self._require_attached()
        pids = self._shmem.pids()
        if max_len is not None:
            pids = pids[:max_len]
        return pids

    def get_process_mask(
        self, pid: int, flags: DromFlags = DromFlags.NONE
    ) -> tuple[DlbError, CpuSet | None]:
        """Current assigned mask of ``pid`` (``DROM_GetProcessMask``)."""
        self._require_attached()
        try:
            return DlbError.DLB_SUCCESS, self._shmem.get_mask(pid)
        except ProcessNotRegisteredError:
            return DlbError.DLB_ERR_NOPROC, None

    # -- mask management ---------------------------------------------------------

    def set_process_mask(
        self,
        pid: int,
        mask: CpuSet,
        flags: DromFlags = DromFlags.NONE,
        *,
        sync_timeout: float = 1.0,
        sync_poll_interval: float = 1e-3,
    ) -> DlbError:
        """Assign a new mask to ``pid`` (``DROM_SetProcessMask``).

        Returns ``DLB_NOTED`` when the change is registered but not yet
        acknowledged by the target (the normal, asynchronous case),
        ``DLB_SUCCESS`` when the target has already acknowledged it (e.g. it
        uses the asynchronous callback mode, or ``SYNC_QUERY`` was given and
        the target polled within the timeout), or an error code.

        ``sync_timeout`` and ``sync_poll_interval`` only apply with
        ``SYNC_QUERY`` on an administrator constructed with real ``clock`` /
        ``sleep`` sources.  Under the default (simulation) configuration the
        target can never acknowledge while this call waits, so ``SYNC_QUERY``
        on a not-yet-acknowledged change returns ``DLB_ERR_TIMEOUT``
        immediately and deterministically, consuming no wall-clock time.
        """
        self._require_attached()
        try:
            if flags.is_dry_run():
                self._check_assignment(pid, mask, flags)
                return DlbError.DLB_SUCCESS
            entry = self._shmem.set_mask(pid, mask, steal=flags.allows_steal())
        except ProcessNotRegisteredError:
            return DlbError.DLB_ERR_NOPROC
        except CpuOwnershipError:
            return DlbError.DLB_ERR_PERM
        except ValueError:
            return DlbError.DLB_ERR_REQST

        if not entry.dirty:
            return DlbError.DLB_SUCCESS
        if flags.is_sync():
            if self._clock is None:
                # Simulation: single-threaded, the target cannot poll while
                # this call waits, so waiting can only end in a timeout.
                return DlbError.DLB_ERR_TIMEOUT
            deadline = self._clock() + sync_timeout
            while entry.dirty:
                if self._clock() >= deadline:
                    return DlbError.DLB_ERR_TIMEOUT
                self._sleep(sync_poll_interval)
            return DlbError.DLB_SUCCESS
        return DlbError.DLB_NOTED

    def _check_assignment(self, pid: int, mask: CpuSet, flags: DromFlags) -> None:
        if not self._shmem.has(pid):
            raise ProcessNotRegisteredError(pid)
        self._shmem.topology.validate_mask(mask)
        if mask.is_empty():
            raise ValueError("empty mask")
        if not flags.allows_steal():
            for entry in self._shmem:
                if entry.pid != pid and not (entry.assigned_mask & mask).is_empty():
                    raise CpuOwnershipError(
                        f"mask overlaps pid {entry.pid} and STEAL not given"
                    )

    # -- pre-init / post-finalize ---------------------------------------------------

    def pre_init(
        self,
        pid: int,
        mask: CpuSet,
        flags: DromFlags = DromFlags.STEAL,
        environ: Mapping[str, str] | None = None,
    ) -> PreInitResult:
        """Reserve ``mask`` for a process about to start (``DROM_PreInit``).

        The usual workflow (paper, Section 3.2): the administrator registers
        the future pid, receives ``next_environ`` and then forks/execs the
        child, which completes the registration using the inherited
        environment.  With the ``STEAL`` flag the reservation shrinks the
        masks of already running processes ("making room in the node").
        """
        self._require_attached()
        shrunk_before = {e.pid: e.assigned_mask for e in self._shmem}
        try:
            entry = self._shmem.register(
                pid, mask, preinitialized=True, steal=flags.allows_steal()
            )
        except ProcessAlreadyRegisteredError:
            return PreInitResult(code=DlbError.DLB_ERR_INIT)
        except CpuOwnershipError:
            return PreInitResult(code=DlbError.DLB_ERR_PERM)
        except ValueError:
            return PreInitResult(code=DlbError.DLB_ERR_REQST)

        shrunk: dict[int, CpuSet] = {}
        for other_pid, before in shrunk_before.items():
            if other_pid == pid or not self._shmem.has(other_pid):
                continue
            after = self._shmem.get_mask(other_pid)
            removed = before - after
            if not removed.is_empty():
                shrunk[other_pid] = removed

        next_environ = dict(environ or {})
        next_environ[DROM_PREINIT_PID_ENV] = str(pid)
        next_environ[DROM_PREINIT_MASK_ENV] = entry.assigned_mask.to_list_string()
        return PreInitResult(
            code=DlbError.DLB_SUCCESS, next_environ=next_environ, shrunk=shrunk
        )

    def post_finalize(
        self, pid: int, flags: DromFlags = DromFlags.RETURN_STOLEN
    ) -> tuple[DlbError, dict[int, CpuSet]]:
        """Finalise a pre-initialised process (``DROM_PostFinalize``).

        Cleans the shared-memory entry (the child may already have done so if
        it ran a supported programming model — that case returns
        ``DLB_NOUPDT``).  With ``RETURN_STOLEN`` the CPUs the process was
        using are given back to their original owners if still registered;
        the returned mapping says who got what back.
        """
        self._require_attached()
        if not self._shmem.has(pid):
            return DlbError.DLB_NOUPDT, {}
        returned: dict[int, CpuSet] = {}
        if flags.returns_stolen():
            returned = self._shmem.return_stolen(pid)
        self._shmem.unregister(pid)
        return DlbError.DLB_SUCCESS, returned

    # -- helpers -----------------------------------------------------------------

    def _require_attached(self) -> None:
        if not self._attached:
            raise NotAttachedError()


def attach_admin(shmem: NodeSharedMemory, *, real_time: bool = False) -> DromAdmin:
    """Create an administrator and attach it in one call.

    ``real_time=True`` wires the administrator to ``time.monotonic`` /
    ``time.sleep`` so that ``SYNC_QUERY`` genuinely waits for concurrently
    running (real-thread) processes; the default keeps the deterministic
    no-wait simulation behaviour.
    """
    if real_time:
        admin = DromAdmin(shmem, clock=_time.monotonic, sleep=_time.sleep)
    else:
        admin = DromAdmin(shmem)
    code = admin.attach()
    if code.is_error():
        raise NotAttachedError(f"DROM_Attach failed with {code.name}")
    return admin
