"""``dlb_drom_flags_t`` — option flags of the DROM calls.

The paper describes the flags argument as "a custom bitset provided by DLB
[that] adds some flexibility to the interface by allowing some options like:
whether the function call is synchronous or asynchronous, whether to steal the
CPUs from other processes, etc.".  This module reproduces that bitset.
"""

from __future__ import annotations

from enum import IntFlag


class DromFlags(IntFlag):
    """Flags accepted by the DROM administrator calls."""

    #: No options: asynchronous, non-stealing behaviour.
    NONE = 0

    #: Block until the target process has acknowledged the new mask (i.e. it
    #: has polled DROM and applied the change).  Without this flag the call
    #: returns ``DLB_NOTED`` immediately and the change is applied at the
    #: target's next malleability point.
    SYNC_QUERY = 1 << 0

    #: Allow taking CPUs that are currently owned by other registered
    #: processes, shrinking their masks accordingly.  This is what the SLURM
    #: integration uses when co-allocating a new job on a busy node.
    STEAL = 1 << 1

    #: When finalising a pre-initialised process, return the CPUs it was using
    #: to their original owners (if those owners are still registered).
    RETURN_STOLEN = 1 << 2

    #: Do not actually apply the change, only check that it would be legal.
    DRY_RUN = 1 << 3

    def is_sync(self) -> bool:
        return bool(self & DromFlags.SYNC_QUERY)

    def allows_steal(self) -> bool:
        return bool(self & DromFlags.STEAL)

    def returns_stolen(self) -> bool:
        return bool(self & DromFlags.RETURN_STOLEN)

    def is_dry_run(self) -> bool:
        return bool(self & DromFlags.DRY_RUN)
