"""CPU mask bitset (the reproduction's ``cpu_set_t``).

The real DLB library passes around GNU libc ``cpu_set_t`` structures hidden
behind the opaque ``dlb_cpu_set_t`` pointer.  Here the same role is played by
:class:`CpuSet`, an immutable, hashable set of logical CPU identifiers with
the set algebra that the DROM module and the SLURM task/affinity plugin need.

Keeping the type immutable makes shared-memory bookkeeping trivially safe: a
mask stored in the node registry can be handed to any number of readers
without defensive copying, exactly like the value-semantics of ``cpu_set_t``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class CpuSet:
    """An immutable set of logical CPU ids.

    Parameters
    ----------
    cpus:
        Any iterable of non-negative integers.  Duplicates are ignored.

    Examples
    --------
    >>> a = CpuSet([0, 1, 2, 3])
    >>> b = CpuSet.from_range(2, 6)
    >>> (a & b).cpus()
    (2, 3)
    >>> (a | b).count()
    6
    >>> a - b
    CpuSet([0, 1])
    """

    __slots__ = ("_bits",)

    def __init__(self, cpus: Iterable[int] = ()) -> None:
        bits = 0
        for cpu in cpus:
            cpu = int(cpu)
            if cpu < 0:
                raise ValueError(f"CPU id must be non-negative, got {cpu}")
            bits |= 1 << cpu
        object.__setattr__(self, "_bits", bits)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_bits(cls, bits: int) -> "CpuSet":
        """Build a mask directly from a bit pattern (bit *i* = CPU *i*)."""
        if bits < 0:
            raise ValueError("bit pattern must be non-negative")
        obj = cls.__new__(cls)
        object.__setattr__(obj, "_bits", bits)
        return obj

    @classmethod
    def from_range(cls, start: int, stop: int) -> "CpuSet":
        """Mask containing CPUs ``start .. stop-1`` (like ``range``)."""
        if stop < start:
            raise ValueError("stop must be >= start")
        if start < 0:
            raise ValueError("start must be non-negative")
        return cls.from_bits(((1 << (stop - start)) - 1) << start)

    @classmethod
    def full(cls, ncpus: int) -> "CpuSet":
        """Mask of the first ``ncpus`` CPUs (a full node mask)."""
        return cls.from_range(0, ncpus)

    @classmethod
    def empty(cls) -> "CpuSet":
        """The empty mask."""
        return cls.from_bits(0)

    @classmethod
    def parse(cls, spec: str) -> "CpuSet":
        """Parse a Linux-style CPU list, e.g. ``"0-3,8,10-11"``.

        The empty string parses to the empty mask.
        """
        spec = spec.strip()
        if not spec:
            return cls.empty()
        cpus: list[int] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "-" in token:
                lo_s, hi_s = token.split("-", 1)
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise ValueError(f"invalid CPU range {token!r}")
                cpus.extend(range(lo, hi + 1))
            else:
                cpus.append(int(token))
        return cls(cpus)

    # -- queries ---------------------------------------------------------

    @property
    def bits(self) -> int:
        """The raw bit pattern (bit *i* set means CPU *i* is in the mask)."""
        return self._bits

    def cpus(self) -> tuple[int, ...]:
        """All CPU ids in the mask, ascending."""
        return tuple(self)

    def count(self) -> int:
        """Number of CPUs in the mask (``CPU_COUNT``)."""
        return self._bits.bit_count()

    def contains(self, cpu: int) -> bool:
        """Whether CPU ``cpu`` is in the mask (``CPU_ISSET``)."""
        return cpu >= 0 and bool(self._bits >> cpu & 1)

    def is_empty(self) -> bool:
        return self._bits == 0

    def lowest(self) -> int:
        """The lowest CPU id in the mask.

        Raises
        ------
        ValueError
            If the mask is empty.
        """
        if self._bits == 0:
            raise ValueError("empty CpuSet has no lowest CPU")
        return (self._bits & -self._bits).bit_length() - 1

    def highest(self) -> int:
        """The highest CPU id in the mask."""
        if self._bits == 0:
            raise ValueError("empty CpuSet has no highest CPU")
        return self._bits.bit_length() - 1

    def issubset(self, other: "CpuSet") -> bool:
        return self._bits & ~other._bits == 0

    def issuperset(self, other: "CpuSet") -> bool:
        return other.issubset(self)

    def isdisjoint(self, other: "CpuSet") -> bool:
        return self._bits & other._bits == 0

    def first(self, n: int) -> "CpuSet":
        """The ``n`` lowest-numbered CPUs of this mask.

        If the mask has fewer than ``n`` CPUs the whole mask is returned.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        picked = 0
        remaining = self._bits
        for _ in range(min(n, self.count())):
            low = remaining & -remaining
            picked |= low
            remaining ^= low
        return CpuSet.from_bits(picked)

    def last(self, n: int) -> "CpuSet":
        """The ``n`` highest-numbered CPUs of this mask."""
        if n < 0:
            raise ValueError("n must be non-negative")
        cpus = self.cpus()
        return CpuSet(cpus[len(cpus) - min(n, len(cpus)):])

    # -- set algebra -----------------------------------------------------

    def union(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_bits(self._bits | other._bits)

    def intersection(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_bits(self._bits & other._bits)

    def difference(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_bits(self._bits & ~other._bits)

    def symmetric_difference(self, other: "CpuSet") -> "CpuSet":
        return CpuSet.from_bits(self._bits ^ other._bits)

    def add(self, cpu: int) -> "CpuSet":
        """Return a new mask with ``cpu`` added (``CPU_SET``)."""
        if cpu < 0:
            raise ValueError("CPU id must be non-negative")
        return CpuSet.from_bits(self._bits | (1 << cpu))

    def remove(self, cpu: int) -> "CpuSet":
        """Return a new mask with ``cpu`` removed (``CPU_CLR``)."""
        if cpu < 0:
            raise ValueError("CPU id must be non-negative")
        return CpuSet.from_bits(self._bits & ~(1 << cpu))

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    # -- dunder ----------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __contains__(self, cpu: object) -> bool:
        return isinstance(cpu, int) and self.contains(cpu)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CpuSet):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CpuSet", self._bits))

    def __le__(self, other: "CpuSet") -> bool:
        return self.issubset(other)

    def __ge__(self, other: "CpuSet") -> bool:
        return self.issuperset(other)

    def __lt__(self, other: "CpuSet") -> bool:
        return self.issubset(other) and self != other

    def __gt__(self, other: "CpuSet") -> bool:
        return self.issuperset(other) and self != other

    def __repr__(self) -> str:
        return f"CpuSet([{', '.join(str(c) for c in self)}])"

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CpuSet is immutable")

    def to_list_string(self) -> str:
        """Render as a compact Linux CPU list, e.g. ``"0-3,8"``."""
        cpus: Sequence[int] = self.cpus()
        if not cpus:
            return ""
        ranges: list[tuple[int, int]] = []
        start = prev = cpus[0]
        for cpu in cpus[1:]:
            if cpu == prev + 1:
                prev = cpu
                continue
            ranges.append((start, prev))
            start = prev = cpu
        ranges.append((start, prev))
        return ",".join(f"{a}-{b}" if a != b else f"{a}" for a, b in ranges)
