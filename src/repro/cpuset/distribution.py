"""Mask-distribution policies for co-allocated jobs.

When a new job starts on a node that already hosts DROM-managed jobs, the
DROM-enabled ``task/affinity`` plugin (Section 5 of the paper) recomputes the
CPU masks of *both* the new and the running jobs.  The paper's algorithm:

* resources are **equally partitioned** among the jobs sharing the node
  (fairness / equipartition);
* within a job, CPUs are split evenly among its tasks so that hybrid
  MPI+OpenMP ranks stay balanced (imbalance degrades performance);
* jobs are kept on **separate sockets** whenever possible to preserve data
  locality.

This module implements that policy (:class:`SocketAwareEquipartition`) plus
the simpler variants used as ablation baselines: plain equipartition ignoring
sockets, proportional shares (by requested CPU count), and naive packing
(first-fit, the behaviour one would get from an unmodified affinity plugin).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import NodeTopology


@dataclass(frozen=True)
class JobShare:
    """Request of one job on one node.

    Parameters
    ----------
    job_id:
        SLURM-style numeric job id.
    ntasks:
        Number of tasks (MPI ranks) of the job placed on this node.
    requested_cpus:
        CPUs per node the job originally asked for (its ``--cpus-per-task``
        times ``ntasks``).  Used by the proportional policy and as an upper
        bound: a job is never handed more CPUs than it asked for unless it is
        expanding into CPUs released by a finished job.
    """

    job_id: int
    ntasks: int
    requested_cpus: int

    def __post_init__(self) -> None:
        if self.ntasks <= 0:
            raise ValueError("a job share needs at least one task")
        if self.requested_cpus < self.ntasks:
            raise ValueError("requested_cpus must be >= ntasks")


@dataclass(frozen=True)
class JobAllocation:
    """Result of a distribution: the node mask of a job and per-task masks."""

    job_id: int
    mask: CpuSet
    task_masks: tuple[CpuSet, ...]

    @property
    def ncpus(self) -> int:
        return self.mask.count()


class DistributionPolicy(ABC):
    """Strategy deciding how node CPUs are split among co-allocated jobs."""

    #: Human-readable policy name (used in benchmark output).
    name: str = "abstract"

    @abstractmethod
    def job_shares(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> Mapping[int, int]:
        """Return the number of CPUs each job gets on ``node``.

        The returned values sum to at most ``node.ncpus`` and every job gets
        at least one CPU per task.
        """

    def distribute(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> dict[int, JobAllocation]:
        """Compute per-job and per-task masks for all jobs sharing ``node``.

        Jobs are laid out socket by socket in the order given, so the first
        job occupies the lowest-numbered CPUs.  Within a job, tasks receive
        contiguous, near-equal chunks of the job mask.
        """
        if not jobs:
            return {}
        self._validate(node, jobs)
        shares = self.job_shares(node, jobs)
        free = list(node.full_mask())
        result: dict[int, JobAllocation] = {}
        cursor = 0
        for job in jobs:
            ncpus = shares[job.job_id]
            chunk = CpuSet(free[cursor:cursor + ncpus])
            cursor += ncpus
            result[job.job_id] = JobAllocation(
                job_id=job.job_id,
                mask=chunk,
                task_masks=split_among_tasks(chunk, job.ntasks),
            )
        return result

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _validate(node: NodeTopology, jobs: Sequence[JobShare]) -> None:
        ids = [job.job_id for job in jobs]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate job ids in distribution request")
        min_needed = sum(job.ntasks for job in jobs)
        if min_needed > node.ncpus:
            raise ValueError(
                f"cannot fit {min_needed} tasks on a {node.ncpus}-CPU node; "
                "co-allocation would require oversubscription, which DROM avoids"
            )


class EquipartitionPolicy(DistributionPolicy):
    """Equal split of the node CPUs among jobs (the paper's fairness rule).

    Each job's share is bounded by its own request, and CPUs left over after
    capping are handed back to jobs that asked for more — so a small analytics
    job (e.g. STREAM's 2 CPUs) only takes what it needs and the running
    simulation keeps the rest, exactly the paper's "we remove 2 CPUs from the
    simulation" behaviour.
    """

    name = "equipartition"

    def job_shares(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> Mapping[int, int]:
        njobs = len(jobs)
        base = node.ncpus // njobs
        remainder = node.ncpus % njobs
        shares: dict[int, int] = {}
        for i, job in enumerate(jobs):
            share = base + (1 if i < remainder else 0)
            # A job never receives fewer CPUs than tasks, and never more than
            # it requested.
            share = max(share, job.ntasks)
            share = min(share, max(job.requested_cpus, job.ntasks))
            shares[job.job_id] = share
        _shrink_to_fit(shares, jobs, node.ncpus)
        _grow_to_fill(shares, jobs, node.ncpus)
        return shares


class SocketAwareEquipartition(EquipartitionPolicy):
    """Equipartition that rounds shares to whole sockets when it can.

    This is the policy described in Section 5: resources are equally
    partitioned, and the algorithm "distributes CPUs trying to keep
    applications in separate sockets in order to improve data locality".
    With two jobs on a 2-socket node each job gets exactly one socket.
    """

    name = "socket-equipartition"

    def distribute(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> dict[int, JobAllocation]:
        if not jobs:
            return {}
        self._validate(node, jobs)
        shares = self.job_shares(node, jobs)

        # Assign whole sockets greedily to jobs whose share is a multiple of
        # the socket size; leftovers fall back to the contiguous layout.
        cores = node.cores_per_socket
        remaining_sockets = list(range(node.nsockets))
        assignments: dict[int, CpuSet] = {}
        leftover_jobs: list[JobShare] = []
        for job in jobs:
            share = shares[job.job_id]
            nsock = share // cores
            if nsock >= 1 and share % cores == 0 and len(remaining_sockets) >= nsock:
                mask = CpuSet.empty()
                for _ in range(nsock):
                    mask = mask | node.socket_mask(remaining_sockets.pop(0))
                assignments[job.job_id] = mask
            else:
                leftover_jobs.append(job)

        free = node.full_mask()
        for mask in assignments.values():
            free = free - mask
        free_cpus = list(free)
        cursor = 0
        for job in leftover_jobs:
            share = shares[job.job_id]
            assignments[job.job_id] = CpuSet(free_cpus[cursor:cursor + share])
            cursor += share

        return {
            job.job_id: JobAllocation(
                job_id=job.job_id,
                mask=assignments[job.job_id],
                task_masks=split_among_tasks(assignments[job.job_id], job.ntasks),
            )
            for job in jobs
        }


class ProportionalPolicy(DistributionPolicy):
    """Shares proportional to each job's requested CPU count."""

    name = "proportional"

    def job_shares(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> Mapping[int, int]:
        total_request = sum(job.requested_cpus for job in jobs)
        shares: dict[int, int] = {}
        for job in jobs:
            share = int(round(node.ncpus * job.requested_cpus / total_request))
            share = max(share, job.ntasks)
            share = min(share, job.requested_cpus)
            shares[job.job_id] = share
        _shrink_to_fit(shares, jobs, node.ncpus)
        return shares


class PackedPolicy(DistributionPolicy):
    """First-fit packing: every job keeps what it asked for until CPUs run out.

    This mimics an affinity plugin with no malleability: the running job keeps
    its full request and the new job is squeezed into whatever is left.  It is
    used as an ablation baseline — with two full-node jobs it degenerates into
    oversubscription, which :meth:`job_shares` reports by raising.
    """

    name = "packed"

    def job_shares(
        self, node: NodeTopology, jobs: Sequence[JobShare]
    ) -> Mapping[int, int]:
        shares: dict[int, int] = {}
        available = node.ncpus
        for job in jobs:
            share = min(job.requested_cpus, available)
            if share < job.ntasks:
                raise ValueError(
                    f"packed policy cannot place job {job.job_id}: only "
                    f"{available} CPUs left for {job.ntasks} tasks"
                )
            shares[job.job_id] = share
            available -= share
        return shares


def split_among_tasks(mask: CpuSet, ntasks: int) -> tuple[CpuSet, ...]:
    """Split ``mask`` into ``ntasks`` contiguous, near-equal task masks.

    The first ``count % ntasks`` tasks get one extra CPU, mirroring how the
    SLURM block distribution hands out remainders.  Tasks may receive an empty
    mask only if the job mask has fewer CPUs than tasks, which the policies
    above never produce.
    """
    if ntasks <= 0:
        raise ValueError("ntasks must be positive")
    cpus = list(mask)
    base = len(cpus) // ntasks
    remainder = len(cpus) % ntasks
    masks: list[CpuSet] = []
    cursor = 0
    for i in range(ntasks):
        take = base + (1 if i < remainder else 0)
        masks.append(CpuSet(cpus[cursor:cursor + take]))
        cursor += take
    return tuple(masks)


def distribute_tasks(
    node: NodeTopology,
    jobs: Sequence[JobShare],
    policy: DistributionPolicy | None = None,
) -> dict[int, JobAllocation]:
    """Convenience wrapper: distribute ``jobs`` on ``node`` with ``policy``.

    The default policy is the paper's socket-aware equipartition.
    """
    policy = policy or SocketAwareEquipartition()
    return policy.distribute(node, jobs)


def _shrink_to_fit(
    shares: dict[int, int], jobs: Sequence[JobShare], ncpus: int
) -> None:
    """Trim shares (largest first) until they fit in the node, in place."""
    total = sum(shares.values())
    min_share = {job.job_id: job.ntasks for job in jobs}
    while total > ncpus:
        # shrink the job with the largest share that is still above its floor
        candidates = [j for j in shares if shares[j] > min_share[j]]
        if not candidates:
            raise ValueError("cannot fit job shares within the node")
        victim = max(candidates, key=lambda j: shares[j])
        shares[victim] -= 1
        total -= 1


def _grow_to_fill(
    shares: dict[int, int], jobs: Sequence[JobShare], ncpus: int
) -> None:
    """Hand leftover CPUs back to jobs below their request, in place.

    Jobs are topped up one CPU at a time, preferring the job furthest below
    its request, so fairness is preserved while no CPU is left idle if someone
    asked for it.
    """
    max_share = {job.job_id: max(job.requested_cpus, job.ntasks) for job in jobs}
    total = sum(shares.values())
    while total < ncpus:
        candidates = [j for j in shares if shares[j] < max_share[j]]
        if not candidates:
            break
        beneficiary = max(candidates, key=lambda j: max_share[j] - shares[j])
        shares[beneficiary] += 1
        total += 1
