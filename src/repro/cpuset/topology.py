"""Hardware topology models.

The paper's evaluation runs on MareNostrum III (MN3) nodes: two Intel
SandyBridge sockets with eight cores each and 128 GB of DDR3 memory per node.
The DROM-enabled SLURM plugin distributes CPUs *per socket* to preserve data
locality, and the STREAM workload saturates the node memory bandwidth, so the
topology model carries sockets, cores and an aggregate memory-bandwidth figure
in addition to the plain CPU count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpuset.mask import CpuSet


@dataclass(frozen=True)
class Socket:
    """One CPU socket: a contiguous range of logical CPUs sharing a memory bus."""

    index: int
    cpus: CpuSet
    #: Sustainable memory bandwidth of this socket in GB/s.  MN3 SandyBridge
    #: sockets sustain roughly 40 GB/s with all channels populated.
    memory_bandwidth_gbs: float = 40.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("socket index must be non-negative")
        if self.cpus.is_empty():
            raise ValueError("socket must contain at least one CPU")


@dataclass(frozen=True)
class NodeTopology:
    """A compute node: a list of sockets plus memory capacity.

    The default constructor :meth:`marenostrum3` matches the nodes used in the
    paper's evaluation.
    """

    name: str
    sockets: tuple[Socket, ...]
    memory_gb: float = 128.0

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ValueError("a node needs at least one socket")
        seen = CpuSet.empty()
        for socket in self.sockets:
            if not seen.isdisjoint(socket.cpus):
                raise ValueError("sockets must not share CPUs")
            seen = seen | socket.cpus

    # -- constructors ----------------------------------------------------

    @classmethod
    def marenostrum3(cls, name: str = "mn3-node") -> "NodeTopology":
        """The MareNostrum III node used in the paper: 2 sockets x 8 cores, 128 GB."""
        return cls.uniform(name=name, sockets=2, cores_per_socket=8, memory_gb=128.0)

    @classmethod
    def uniform(
        cls,
        name: str = "node",
        sockets: int = 2,
        cores_per_socket: int = 8,
        memory_gb: float = 128.0,
        socket_bandwidth_gbs: float = 40.0,
    ) -> "NodeTopology":
        """A node with ``sockets`` identical sockets of ``cores_per_socket`` CPUs."""
        if sockets <= 0 or cores_per_socket <= 0:
            raise ValueError("sockets and cores_per_socket must be positive")
        socks = tuple(
            Socket(
                index=i,
                cpus=CpuSet.from_range(i * cores_per_socket, (i + 1) * cores_per_socket),
                memory_bandwidth_gbs=socket_bandwidth_gbs,
            )
            for i in range(sockets)
        )
        return cls(name=name, sockets=socks, memory_gb=memory_gb)

    # -- queries ----------------------------------------------------------

    @property
    def ncpus(self) -> int:
        """Total number of logical CPUs in the node."""
        return sum(s.cpus.count() for s in self.sockets)

    @property
    def nsockets(self) -> int:
        return len(self.sockets)

    @property
    def cores_per_socket(self) -> int:
        return self.sockets[0].cpus.count()

    @property
    def memory_bandwidth_gbs(self) -> float:
        """Aggregate node memory bandwidth (sum over sockets)."""
        return sum(s.memory_bandwidth_gbs for s in self.sockets)

    def full_mask(self) -> CpuSet:
        """Mask covering every CPU of the node."""
        mask = CpuSet.empty()
        for socket in self.sockets:
            mask = mask | socket.cpus
        return mask

    def socket_of(self, cpu: int) -> Socket:
        """The socket a CPU belongs to.

        Raises
        ------
        ValueError
            If the CPU is not part of this node.
        """
        for socket in self.sockets:
            if socket.cpus.contains(cpu):
                return socket
        raise ValueError(f"CPU {cpu} is not part of node {self.name!r}")

    def socket_mask(self, index: int) -> CpuSet:
        """Mask of all CPUs of socket ``index``."""
        return self.sockets[index].cpus

    def sockets_spanned(self, mask: CpuSet) -> int:
        """How many sockets a mask touches (data-locality indicator)."""
        return sum(1 for s in self.sockets if not s.cpus.isdisjoint(mask))

    def validate_mask(self, mask: CpuSet) -> None:
        """Raise ``ValueError`` if ``mask`` contains CPUs outside the node."""
        if not mask.issubset(self.full_mask()):
            bad = mask - self.full_mask()
            raise ValueError(
                f"mask {mask.to_list_string()!r} contains CPUs outside node "
                f"{self.name!r}: {bad.to_list_string()!r}"
            )


@dataclass(frozen=True)
class ClusterTopology:
    """A set of named compute nodes managed together (the SLURM partition)."""

    nodes: tuple[NodeTopology, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(names) != len(set(names)):
            raise ValueError("node names must be unique")

    @classmethod
    def marenostrum3(cls, nnodes: int = 2) -> "ClusterTopology":
        """The 2-node MN3 partition used for all the paper's experiments."""
        if nnodes <= 0:
            raise ValueError("nnodes must be positive")
        return cls(
            nodes=tuple(NodeTopology.marenostrum3(name=f"mn3-{i}") for i in range(nnodes))
        )

    @classmethod
    def uniform(
        cls,
        nnodes: int,
        sockets: int = 2,
        cores_per_socket: int = 8,
        memory_gb: float = 128.0,
        socket_bandwidth_gbs: float = 40.0,
        name_prefix: str = "node",
    ) -> "ClusterTopology":
        """A partition of ``nnodes`` identical nodes (campaign sweeps beyond MN3)."""
        if nnodes <= 0:
            raise ValueError("nnodes must be positive")
        return cls(
            nodes=tuple(
                NodeTopology.uniform(
                    name=f"{name_prefix}-{i}",
                    sockets=sockets,
                    cores_per_socket=cores_per_socket,
                    memory_gb=memory_gb,
                    socket_bandwidth_gbs=socket_bandwidth_gbs,
                )
                for i in range(nnodes)
            )
        )

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    @property
    def ncpus(self) -> int:
        return sum(node.ncpus for node in self.nodes)

    def node(self, name: str) -> NodeTopology:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def node_names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)
