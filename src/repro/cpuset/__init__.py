"""CPU-set substrate.

The DROM interface of the paper manipulates Linux ``cpu_set_t`` bitsets
(CPUSETs) through an opaque ``dlb_cpu_set_t`` type.  This subpackage provides
the Python equivalent used throughout the reproduction:

* :class:`~repro.cpuset.mask.CpuSet` — an immutable bitset of logical CPU ids
  with the full set algebra (union, intersection, difference, subset tests).
* :class:`~repro.cpuset.topology.NodeTopology` /
  :class:`~repro.cpuset.topology.ClusterTopology` — hardware descriptions
  (sockets, cores per socket, memory, memory bandwidth) modelled after the
  MareNostrum III nodes used in the paper's evaluation.
* :mod:`~repro.cpuset.distribution` — the mask-distribution policies the
  DROM-enabled SLURM ``task/affinity`` plugin applies when co-allocating jobs
  (equipartition, socket-aware placement, proportional shares).
"""

from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology, NodeTopology, Socket
from repro.cpuset.distribution import (
    DistributionPolicy,
    EquipartitionPolicy,
    PackedPolicy,
    ProportionalPolicy,
    SocketAwareEquipartition,
    distribute_tasks,
)

__all__ = [
    "CpuSet",
    "NodeTopology",
    "ClusterTopology",
    "Socket",
    "DistributionPolicy",
    "EquipartitionPolicy",
    "SocketAwareEquipartition",
    "PackedPolicy",
    "ProportionalPolicy",
    "distribute_tasks",
]
