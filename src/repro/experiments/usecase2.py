"""Use case 2 — High-priority job (Section 6.2, Figures 13–15).

A long NEST simulation is running on the two nodes when a high-priority
CoreNeuron job arrives.  In the Serial scenario CoreNeuron waits for NEST to
finish; in the DROM scenario the node CPUs are equipartitioned so CoreNeuron
starts immediately, and it expands to the full nodes when NEST completes.

The paper reports three observations, each regenerated here:

* Figure 13 — cycles-per-µs traces of both scenarios and a ~2.5 % total
  run-time improvement with DROM;
* Figure 14 — per-thread IPC histograms: the two scenarios are comparable,
  i.e. co-allocation does not disturb the applications;
* Figure 15 — average response time improves (~10 % in the paper) because the
  high-priority job starts immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign.runner import run_campaign, run_scenario_pair
from repro.campaign.spec import CampaignSpec, HighPriorityWorkloadRef
from repro.metrics.collect import relative_improvement
from repro.metrics.counters import CounterLog
from repro.metrics.paraver import ParaverView
from repro.workload.runner import DROM, SERIAL, ScenarioResult


@dataclass(frozen=True)
class UseCase2Result:
    """All the measurements of use case 2, for both scenarios.

    ``serial``/``drom`` are either live
    :class:`~repro.workload.runner.ScenarioResult` executions or
    :class:`~repro.traces.query.ScenarioReplay` reconstructions from the two
    store tiers — every accessor below only touches the reporting interface
    the two share (``metrics``, ``tracer``), so figures regenerated from a
    warm store render byte-identically to a cold run.
    """

    serial: ScenarioResult
    drom: ScenarioResult
    nest_label: str
    coreneuron_label: str
    #: How many of the two scenarios actually simulated (0 on a fully warm
    #: store — the CI trace-tier smoke asserts this).
    executed: int = 2

    # -- Figure 13: total run time + traces -------------------------------------------

    @property
    def serial_total_run_time(self) -> float:
        return self.serial.metrics.total_run_time

    @property
    def drom_total_run_time(self) -> float:
        return self.drom.metrics.total_run_time

    @property
    def total_run_time_gain(self) -> float:
        return relative_improvement(self.serial_total_run_time, self.drom_total_run_time)

    def cycles_rendering(self, scenario: str, bin_seconds: float = 200.0) -> str:
        """ASCII equivalent of Figure 13's per-job width/cycles timeline."""
        result = self.serial if scenario == SERIAL else self.drom
        view = ParaverView(result.tracer, bin_seconds=bin_seconds)
        return view.render_job_widths([self.nest_label, self.coreneuron_label])

    # -- Figure 14: IPC histograms ----------------------------------------------------------

    def counter_log(self, scenario: str) -> CounterLog:
        result = self.serial if scenario == SERIAL else self.drom
        return result.tracer.counter_log()

    def mean_ipc(self, scenario: str, job: str) -> float:
        return self.counter_log(scenario).mean_ipc(job)

    def ipc_comparison(self) -> dict[str, tuple[float, float]]:
        """job -> (serial mean IPC, DROM mean IPC); the two should be close."""
        out: dict[str, tuple[float, float]] = {}
        for job in (self.nest_label, self.coreneuron_label):
            out[job] = (self.mean_ipc(SERIAL, job), self.mean_ipc(DROM, job))
        return out

    def ipc_histograms(self, scenario: str, bins: int = 20) -> dict[str, np.ndarray]:
        """job -> aggregated IPC histogram over all threads (Figure 14)."""
        log = self.counter_log(scenario)
        out: dict[str, np.ndarray] = {}
        for job in (self.nest_label, self.coreneuron_label):
            per_thread = log.ipc_histogram(job, bins=bins)
            total = np.zeros(bins)
            for counts in per_thread.values():
                total += counts
            out[job] = total
        return out

    # -- Figure 15: average response time ---------------------------------------------------------

    @property
    def serial_average_response(self) -> float:
        return self.serial.metrics.average_response_time

    @property
    def drom_average_response(self) -> float:
        return self.drom.metrics.average_response_time

    @property
    def average_response_gain(self) -> float:
        return relative_improvement(self.serial_average_response, self.drom_average_response)

    # -- per-job details --------------------------------------------------------------------------------

    def response_times(self) -> dict[str, dict[str, float]]:
        return {
            SERIAL: dict(self.serial.metrics.response_times()),
            DROM: dict(self.drom.metrics.response_times()),
        }

    def wait_times(self) -> dict[str, dict[str, float]]:
        return {
            SERIAL: dict(self.serial.metrics.wait_times()),
            DROM: dict(self.drom.metrics.wait_times()),
        }

    def coreneuron_expanded(self) -> bool:
        """Whether CoreNeuron grew back to the full nodes after NEST ended
        (the expansion at time (d) of Figure 13)."""
        changes = self.drom.tracer.mask_changes(self.coreneuron_label)
        return any(change.new_threads > 8 for change in changes)


@dataclass(frozen=True)
class UseCase2Responses:
    """The Figure 15 slice of use case 2: response-time metrics only.

    Unlike :class:`UseCase2Result` this carries no tracers, so it can be
    served entirely from a content-addressed
    :class:`~repro.results.store.ResultStore` — the store-backed path the
    figure benchmarks use for cheap regeneration.
    """

    nest_label: str
    coreneuron_label: str
    serial_average_response: float
    drom_average_response: float
    #: scenario -> {job label -> response time (s)}.
    responses: dict[str, dict[str, float]]

    @property
    def average_response_gain(self) -> float:
        return relative_improvement(
            self.serial_average_response, self.drom_average_response
        )


def usecase2_responses(
    second_submit: float = 120.0, store=None
) -> UseCase2Responses:
    """Figure 15 through the campaign/store path (no traces simulated twice).

    ``store`` (a :class:`~repro.results.store.ResultStore`) memoises the two
    runs like any other campaign cell, so a warm store regenerates the figure
    without simulating at all.
    """
    spec = CampaignSpec(
        name="usecase2",
        workloads=(HighPriorityWorkloadRef(second_submit=second_submit),),
        scenarios=(SERIAL, DROM),
    )
    result = run_campaign(spec, store=store)
    cell = result.scenario_pairs()[0]
    serial, drom = cell[SERIAL], cell[DROM]
    labels = [label for label, _ in serial.response_times]
    return UseCase2Responses(
        nest_label=labels[0],
        coreneuron_label=labels[1],
        serial_average_response=serial.average_response_time,
        drom_average_response=drom.average_response_time,
        responses={
            SERIAL: dict(serial.response_times),
            DROM: dict(drom.response_times),
        },
    )


def run_usecase2(
    second_submit: float = 120.0, sinks=(), store=None, trace_store=None
) -> UseCase2Result:
    """Run both scenarios of use case 2 through the campaign API.

    ``sinks`` (:class:`~repro.results.sinks.TraceSink` instances) receive
    both scenarios' full results — the paper's Figure 13 timelines come from
    exactly these traces, so exporting them as ``.prv``/JSONL makes the
    use case inspectable post hoc.

    ``store``/``trace_store`` are the metrics and trace tiers: scenarios
    whose cells hit in both are replayed instead of simulated (Figures 13
    and 14 after one cold run), and misses write both tiers back.  The
    cells share their content keys with :func:`usecase2_responses`'s
    campaign, so one warm store serves Figures 13–15 together.
    """
    ref = HighPriorityWorkloadRef(second_submit=second_submit)
    results = run_scenario_pair(ref, sinks=sinks, store=store, trace_store=trace_store)
    workload = results[DROM].workload
    return UseCase2Result(
        serial=results[SERIAL],
        drom=results[DROM],
        nest_label=workload.jobs[0].label,
        coreneuron_label=workload.jobs[1].label,
        executed=sum(1 for result in results.values() if not result.replayed),
    )
