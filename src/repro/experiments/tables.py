"""Textual rendering of the paper's tables/figures from experiment data.

These helpers format the experiment results the way the benchmarks print
them: one row per configuration with Serial and DROM values side by side, so
the benchmark output can be compared against the paper's bar charts directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.usecase1 import WorkloadComparison
from repro.workload.configs import table1_rows


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Simple fixed-width table renderer."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: application configurations."""
    return render_table(
        ["Application", "Conf. 1 (MPI x OpenMP)", "Conf. 2", "Conf. 3"], table1_rows()
    )


def render_run_time_figure(comparisons: list[WorkloadComparison]) -> str:
    """Figures 4/9 style: total run time, Serial vs DROM, per configuration."""
    rows = [
        (
            c.simulator_label,
            c.analytics_label,
            f"{c.serial_total_run_time:.0f}",
            f"{c.drom_total_run_time:.0f}",
            f"{100 * c.total_run_time_gain:+.1f}%",
        )
        for c in comparisons
    ]
    return render_table(
        ["Simulator", "Analytics", "Serial total (s)", "DROM total (s)", "DROM gain"], rows
    )


def render_response_figure(comparisons: list[WorkloadComparison]) -> str:
    """Figures 6/10 style: per-job response times, Serial vs DROM."""
    rows = []
    for c in comparisons:
        rows.append(
            (
                c.simulator_label,
                c.analytics_label,
                f"{c.serial_response[c.simulator_label]:.0f}",
                f"{c.drom_response[c.simulator_label]:.0f}",
                f"{c.serial_response[c.analytics_label]:.0f}",
                f"{c.drom_response[c.analytics_label]:.0f}",
                f"{100 * c.analytics_response_reduction:.1f}%",
            )
        )
    return render_table(
        [
            "Simulator",
            "Analytics",
            "Sim resp Serial (s)",
            "Sim resp DROM (s)",
            "Ana resp Serial (s)",
            "Ana resp DROM (s)",
            "Ana resp reduction",
        ],
        rows,
    )


def render_average_response_figure(comparisons: list[WorkloadComparison]) -> str:
    """Figures 8/12 style: average response time, Serial vs DROM."""
    rows = [
        (
            c.simulator_label,
            c.analytics_label,
            f"{c.serial_average_response:.0f}",
            f"{c.drom_average_response:.0f}",
            f"{100 * c.average_response_gain:+.1f}%",
        )
        for c in comparisons
    ]
    return render_table(
        ["Simulator", "Analytics", "Serial avg resp (s)", "DROM avg resp (s)", "Gain"], rows
    )
