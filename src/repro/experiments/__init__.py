"""Experiment drivers: one module per use case plus table/figure rendering."""

from repro.experiments.usecase1 import (
    ImbalanceTrace,
    ScenarioTimeline,
    WorkloadComparison,
    compare_workload,
    imbalance_trace,
    scenario_timelines,
    simulator_average_response,
    simulator_pils_response,
    simulator_pils_run_time,
    simulator_stream,
)
from repro.experiments.usecase2 import (
    UseCase2Responses,
    UseCase2Result,
    run_usecase2,
    usecase2_responses,
)
from repro.experiments.tables import (
    render_average_response_figure,
    render_response_figure,
    render_run_time_figure,
    render_table,
    render_table1,
)

__all__ = [
    "WorkloadComparison",
    "compare_workload",
    "simulator_pils_run_time",
    "simulator_pils_response",
    "simulator_stream",
    "simulator_average_response",
    "imbalance_trace",
    "ImbalanceTrace",
    "scenario_timelines",
    "ScenarioTimeline",
    "UseCase2Result",
    "UseCase2Responses",
    "run_usecase2",
    "usecase2_responses",
    "render_table",
    "render_table1",
    "render_run_time_figure",
    "render_response_figure",
    "render_average_response_figure",
]
