"""Use case 1 — In-Situ Analytics (Section 6.1, Figures 3–12).

Each function regenerates the data behind one figure: the Serial and DROM
scenarios of the corresponding workloads are simulated and the same series the
paper plots (total run time, per-job response time, average response time,
thread utilisation traces) are returned as plain data structures, ready to be
printed by the benchmarks or asserted by the tests.

All of them now go through the campaign subsystem: the figure sweeps expand
to a :class:`~repro.campaign.spec.CampaignSpec` grid (so they can be executed
on a worker pool like any other campaign), and the trace-based figures use
:func:`~repro.campaign.runner.run_scenario_pair` on the same declarative
workload references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.runner import RunMetrics, run_campaign, run_scenario_pair
from repro.campaign.spec import CampaignSpec, InSituWorkloadRef
from repro.metrics.collect import relative_improvement
from repro.metrics.paraver import ParaverView
from repro.workload.runner import DROM, SERIAL, ScenarioResult

#: Analytics configurations evaluated against each simulator configuration,
#: matching the X axes of Figures 4/6 (Pils) and 7 (STREAM).
PILS_CONFIGS = ("Conf. 1", "Conf. 2", "Conf. 3")
SIMULATOR_CONFIGS = ("Conf. 1", "Conf. 2")


@dataclass(frozen=True)
class WorkloadComparison:
    """Serial vs DROM comparison of one workload (one X position of a figure)."""

    workload: str
    simulator: str
    simulator_config: str
    analytics: str
    analytics_config: str
    serial_total_run_time: float
    drom_total_run_time: float
    serial_response: dict[str, float]
    drom_response: dict[str, float]
    serial_average_response: float
    drom_average_response: float

    @property
    def total_run_time_gain(self) -> float:
        """Fractional improvement of DROM over Serial (positive = DROM wins)."""
        return relative_improvement(self.serial_total_run_time, self.drom_total_run_time)

    @property
    def average_response_gain(self) -> float:
        return relative_improvement(
            self.serial_average_response, self.drom_average_response
        )

    @property
    def simulator_label(self) -> str:
        return f"{self.simulator} {self.simulator_config}"

    @property
    def analytics_label(self) -> str:
        return f"{self.analytics} {self.analytics_config}"

    @property
    def simulator_response_change(self) -> float:
        """Fractional increase of the simulator's response time under DROM."""
        serial = self.serial_response[self.simulator_label]
        drom = self.drom_response[self.simulator_label]
        return drom / serial - 1.0

    @property
    def analytics_response_reduction(self) -> float:
        """Fractional decrease of the analytics' response time under DROM."""
        serial = self.serial_response[self.analytics_label]
        drom = self.drom_response[self.analytics_label]
        return 1.0 - drom / serial


def _comparison_from_rows(
    ref: InSituWorkloadRef, serial: RunMetrics, drom: RunMetrics
) -> WorkloadComparison:
    return WorkloadComparison(
        workload=serial.workload_name,
        simulator=ref.simulator,
        simulator_config=ref.simulator_config,
        analytics=ref.analytics,
        analytics_config=ref.analytics_config,
        serial_total_run_time=serial.total_run_time,
        drom_total_run_time=drom.total_run_time,
        serial_response=dict(serial.response_times),
        drom_response=dict(drom.response_times),
        serial_average_response=serial.average_response_time,
        drom_average_response=drom.average_response_time,
    )


def compare_workloads(
    refs: list[InSituWorkloadRef], workers: int = 1, store=None
) -> list[WorkloadComparison]:
    """Run the Serial+DROM campaign of several workloads and pair the rows.

    ``store`` (a :class:`~repro.results.store.ResultStore`) memoises the
    cells: the figure sweeps overlap heavily (Figures 4/6 share every cell,
    Figure 8 is a superset of both), so one warm store serves a whole
    use-case-1 regeneration with only the first sweep simulating.
    """
    spec = CampaignSpec(
        name="usecase1",
        workloads=tuple(refs),
        scenarios=(SERIAL, DROM),
    )
    result = run_campaign(spec, workers=workers, store=store)
    comparisons = []
    for cell in result.scenario_pairs():
        serial, drom = cell[SERIAL], cell[DROM]
        comparisons.append(_comparison_from_rows(serial.run.workload, serial, drom))
    return comparisons


def compare_workload(
    simulator: str,
    simulator_config: str,
    analytics: str,
    analytics_config: str,
    store=None,
) -> WorkloadComparison:
    """Run the Serial and DROM scenarios of one simulator+analytics workload."""
    ref = InSituWorkloadRef(simulator, simulator_config, analytics, analytics_config)
    return compare_workloads([ref], store=store)[0]


# -- Figures 4/9 (total run time, simulator + Pils) --------------------------------------


def simulator_pils_run_time(simulator: str, store=None) -> list[WorkloadComparison]:
    """Figure 4 (NEST) / Figure 9 (CoreNeuron): total run time vs Pils config."""
    return compare_workloads(
        [
            InSituWorkloadRef(simulator, sim_conf, "Pils", pils_conf)
            for sim_conf in SIMULATOR_CONFIGS
            for pils_conf in PILS_CONFIGS
        ],
        store=store,
    )


# -- Figures 6/10 (individual response times, simulator + Pils) -----------------------------


def simulator_pils_response(simulator: str, store=None) -> list[WorkloadComparison]:
    """Figure 6 (NEST) / Figure 10 (CoreNeuron): per-job response times."""
    return simulator_pils_run_time(simulator, store=store)


# -- Figures 7/11 (simulator + STREAM) ------------------------------------------------------


def simulator_stream(simulator: str, store=None) -> list[WorkloadComparison]:
    """Figure 7 (NEST) / Figure 11 (CoreNeuron): run time and response with STREAM."""
    return compare_workloads(
        [
            InSituWorkloadRef(simulator, sim_conf, "STREAM", "Conf. 1")
            for sim_conf in SIMULATOR_CONFIGS
        ],
        store=store,
    )


# -- Figures 8/12 (average response time over all workloads of one simulator) ------------------


def simulator_average_response(simulator: str, store=None) -> list[WorkloadComparison]:
    """Figure 8 (NEST) / Figure 12 (CoreNeuron): average response times.

    With a warm ``store`` this whole sweep is served from cache — its grid is
    exactly the union of the Figure 4/6 and Figure 7 grids.
    """
    refs = []
    for sim_conf in SIMULATOR_CONFIGS:
        for pils_conf in PILS_CONFIGS:
            refs.append(InSituWorkloadRef(simulator, sim_conf, "Pils", pils_conf))
        refs.append(InSituWorkloadRef(simulator, sim_conf, "STREAM", "Conf. 1"))
    return compare_workloads(refs, store=store)


# -- Figure 5 (imbalance trace after shrinking) ---------------------------------------------------


@dataclass(frozen=True)
class ImbalanceTrace:
    """Figure 5: per-thread utilisation of the shrunk NEST rank."""

    workload: str
    #: Thread utilisation of the simulator's rank 0 over the whole run
    #: (thread id -> busy fraction).
    utilisation: dict[int, float]
    #: Thread utilisation restricted to the period in which the rank ran with
    #: fewer threads than it initialised with — the window Figure 5 shows.
    shrunk_utilisation: dict[int, float]
    #: Number of DROM mask changes the simulator observed.
    mask_changes: int
    #: ASCII rendering of the per-thread activity timeline.
    rendering: str = field(repr=False, default="")

    @property
    def overloaded_threads(self) -> list[int]:
        """Threads that stay fully busy during the shrunk window (they pick up
        the orphaned chunks of the removed thread)."""
        return [t for t, u in self.shrunk_utilisation.items() if u >= 0.999]

    @property
    def underloaded_threads(self) -> list[int]:
        """Threads that show idle time during the shrunk window."""
        return [t for t, u in self.shrunk_utilisation.items() if u < 0.999]


def imbalance_trace(
    simulator: str = "NEST",
    simulator_config: str = "Conf. 1",
    analytics_config: str = "Conf. 2",
    store=None,
    trace_store=None,
) -> ImbalanceTrace:
    """Reproduce Figure 5: the static-partition imbalance after a shrink.

    The simulator loses one CPU per node to Pils Conf. 2; the orphaned data
    chunks are executed by a subset of the remaining threads, which therefore
    stay busy while the others show idle time.

    With both store tiers given (``store`` for metrics, ``trace_store`` for
    traces), a warm call replays the stored trace instead of simulating.
    """
    ref = InSituWorkloadRef(simulator, simulator_config, "Pils", analytics_config)
    result = run_scenario_pair(ref, store=store, trace_store=trace_store)[DROM]
    workload = result.workload
    sim_label = workload.jobs[0].label
    tracer = result.tracer
    view = ParaverView(tracer, bin_seconds=100.0)

    # Utilisation restricted to the steps executed with a reduced team.
    shrunk_busy: dict[int, float] = {}
    shrunk_total: dict[int, float] = {}
    for step in tracer.steps(sim_label, rank=0):
        plan_threads = len(step.thread_utilisation)
        if plan_threads == 0:
            continue
        initial = workload.jobs[0].app.config.threads_per_rank
        if step.nthreads >= initial:
            continue
        for thread, util in enumerate(step.thread_utilisation):
            shrunk_busy[thread] = shrunk_busy.get(thread, 0.0) + util * step.duration
            shrunk_total[thread] = shrunk_total.get(thread, 0.0) + step.duration
    shrunk_utilisation = {
        t: shrunk_busy[t] / shrunk_total[t] for t in sorted(shrunk_busy)
    }

    return ImbalanceTrace(
        workload=workload.name,
        utilisation=tracer.thread_utilisation(sim_label, rank=0),
        shrunk_utilisation=shrunk_utilisation,
        mask_changes=len(tracer.mask_changes(sim_label)),
        rendering=view.render_thread_activity(sim_label),
    )


# -- Figure 3 (conceptual timeline) ------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioTimeline:
    """Figure 3: width (CPUs in use) of each job over time, per scenario."""

    scenario: str
    rendering: str
    job_intervals: dict[str, tuple[float, float]]


def scenario_timelines(
    simulator: str = "NEST",
    simulator_config: str = "Conf. 1",
    analytics: str = "Pils",
    analytics_config: str = "Conf. 2",
    sinks=(),
    store=None,
    trace_store=None,
) -> dict[str, ScenarioTimeline]:
    """Reproduce the Figure 3 schematic from actual simulated runs.

    ``sinks`` export both scenarios' traces via the
    :class:`~repro.results.sinks.TraceSink` API.  With both store tiers
    given, warm calls replay stored traces instead of simulating.
    """
    ref = InSituWorkloadRef(simulator, simulator_config, analytics, analytics_config)
    results = run_scenario_pair(ref, sinks=sinks, store=store, trace_store=trace_store)
    workload = results[DROM].workload
    timelines: dict[str, ScenarioTimeline] = {}
    for scenario, result in results.items():
        view = ParaverView(result.tracer, bin_seconds=100.0)
        labels = [job.label for job in workload.jobs]
        intervals = {label: result.tracer.span(label) for label in labels}
        timelines[scenario] = ScenarioTimeline(
            scenario=scenario,
            rendering=view.render_job_widths(labels),
            job_intervals=intervals,
        )
    return timelines
