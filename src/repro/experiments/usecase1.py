"""Use case 1 — In-Situ Analytics (Section 6.1, Figures 3–12).

Each function regenerates the data behind one figure: the Serial and DROM
scenarios of the corresponding workloads are simulated and the same series the
paper plots (total run time, per-job response time, average response time,
thread utilisation traces) are returned as plain data structures, ready to be
printed by the benchmarks or asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.collect import relative_improvement
from repro.metrics.paraver import ParaverView
from repro.workload.runner import DROM, SERIAL, ScenarioResult, run_both_scenarios
from repro.workload.workloads import Workload, in_situ_workload

#: Analytics configurations evaluated against each simulator configuration,
#: matching the X axes of Figures 4/6 (Pils) and 7 (STREAM).
PILS_CONFIGS = ("Conf. 1", "Conf. 2", "Conf. 3")
SIMULATOR_CONFIGS = ("Conf. 1", "Conf. 2")


@dataclass(frozen=True)
class WorkloadComparison:
    """Serial vs DROM comparison of one workload (one X position of a figure)."""

    workload: str
    simulator: str
    simulator_config: str
    analytics: str
    analytics_config: str
    serial_total_run_time: float
    drom_total_run_time: float
    serial_response: dict[str, float]
    drom_response: dict[str, float]
    serial_average_response: float
    drom_average_response: float

    @property
    def total_run_time_gain(self) -> float:
        """Fractional improvement of DROM over Serial (positive = DROM wins)."""
        return relative_improvement(self.serial_total_run_time, self.drom_total_run_time)

    @property
    def average_response_gain(self) -> float:
        return relative_improvement(
            self.serial_average_response, self.drom_average_response
        )

    @property
    def simulator_label(self) -> str:
        return f"{self.simulator} {self.simulator_config}"

    @property
    def analytics_label(self) -> str:
        return f"{self.analytics} {self.analytics_config}"

    @property
    def simulator_response_change(self) -> float:
        """Fractional increase of the simulator's response time under DROM."""
        serial = self.serial_response[self.simulator_label]
        drom = self.drom_response[self.simulator_label]
        return drom / serial - 1.0

    @property
    def analytics_response_reduction(self) -> float:
        """Fractional decrease of the analytics' response time under DROM."""
        serial = self.serial_response[self.analytics_label]
        drom = self.drom_response[self.analytics_label]
        return 1.0 - drom / serial


def compare_workload(
    simulator: str,
    simulator_config: str,
    analytics: str,
    analytics_config: str,
) -> WorkloadComparison:
    """Run the Serial and DROM scenarios of one simulator+analytics workload."""
    workload = in_situ_workload(simulator, simulator_config, analytics, analytics_config)
    results = run_both_scenarios(workload)
    serial, drom = results[SERIAL], results[DROM]
    return WorkloadComparison(
        workload=workload.name,
        simulator=simulator,
        simulator_config=simulator_config,
        analytics=analytics,
        analytics_config=analytics_config,
        serial_total_run_time=serial.metrics.total_run_time,
        drom_total_run_time=drom.metrics.total_run_time,
        serial_response=dict(serial.metrics.response_times()),
        drom_response=dict(drom.metrics.response_times()),
        serial_average_response=serial.metrics.average_response_time,
        drom_average_response=drom.metrics.average_response_time,
    )


# -- Figures 4/9 (total run time, simulator + Pils) --------------------------------------


def simulator_pils_run_time(simulator: str) -> list[WorkloadComparison]:
    """Figure 4 (NEST) / Figure 9 (CoreNeuron): total run time vs Pils config."""
    return [
        compare_workload(simulator, sim_conf, "Pils", pils_conf)
        for sim_conf in SIMULATOR_CONFIGS
        for pils_conf in PILS_CONFIGS
    ]


# -- Figures 6/10 (individual response times, simulator + Pils) -----------------------------


def simulator_pils_response(simulator: str) -> list[WorkloadComparison]:
    """Figure 6 (NEST) / Figure 10 (CoreNeuron): per-job response times."""
    return simulator_pils_run_time(simulator)


# -- Figures 7/11 (simulator + STREAM) ------------------------------------------------------


def simulator_stream(simulator: str) -> list[WorkloadComparison]:
    """Figure 7 (NEST) / Figure 11 (CoreNeuron): run time and response with STREAM."""
    return [
        compare_workload(simulator, sim_conf, "STREAM", "Conf. 1")
        for sim_conf in SIMULATOR_CONFIGS
    ]


# -- Figures 8/12 (average response time over all workloads of one simulator) ------------------


def simulator_average_response(simulator: str) -> list[WorkloadComparison]:
    """Figure 8 (NEST) / Figure 12 (CoreNeuron): average response times."""
    comparisons = []
    for sim_conf in SIMULATOR_CONFIGS:
        for pils_conf in PILS_CONFIGS:
            comparisons.append(compare_workload(simulator, sim_conf, "Pils", pils_conf))
        comparisons.append(compare_workload(simulator, sim_conf, "STREAM", "Conf. 1"))
    return comparisons


# -- Figure 5 (imbalance trace after shrinking) ---------------------------------------------------


@dataclass(frozen=True)
class ImbalanceTrace:
    """Figure 5: per-thread utilisation of the shrunk NEST rank."""

    workload: str
    #: Thread utilisation of the simulator's rank 0 over the whole run
    #: (thread id -> busy fraction).
    utilisation: dict[int, float]
    #: Thread utilisation restricted to the period in which the rank ran with
    #: fewer threads than it initialised with — the window Figure 5 shows.
    shrunk_utilisation: dict[int, float]
    #: Number of DROM mask changes the simulator observed.
    mask_changes: int
    #: ASCII rendering of the per-thread activity timeline.
    rendering: str = field(repr=False, default="")

    @property
    def overloaded_threads(self) -> list[int]:
        """Threads that stay fully busy during the shrunk window (they pick up
        the orphaned chunks of the removed thread)."""
        return [t for t, u in self.shrunk_utilisation.items() if u >= 0.999]

    @property
    def underloaded_threads(self) -> list[int]:
        """Threads that show idle time during the shrunk window."""
        return [t for t, u in self.shrunk_utilisation.items() if u < 0.999]


def imbalance_trace(
    simulator: str = "NEST",
    simulator_config: str = "Conf. 1",
    analytics_config: str = "Conf. 2",
) -> ImbalanceTrace:
    """Reproduce Figure 5: the static-partition imbalance after a shrink.

    The simulator loses one CPU per node to Pils Conf. 2; the orphaned data
    chunks are executed by a subset of the remaining threads, which therefore
    stay busy while the others show idle time.
    """
    workload = in_situ_workload(simulator, simulator_config, "Pils", analytics_config)
    result: ScenarioResult = run_both_scenarios(workload)[DROM]
    sim_label = workload.jobs[0].label
    tracer = result.tracer
    view = ParaverView(tracer, bin_seconds=100.0)

    # Utilisation restricted to the steps executed with a reduced team.
    shrunk_busy: dict[int, float] = {}
    shrunk_total: dict[int, float] = {}
    for step in tracer.steps(sim_label, rank=0):
        plan_threads = len(step.thread_utilisation)
        if plan_threads == 0:
            continue
        initial = workload.jobs[0].app.config.threads_per_rank
        if step.nthreads >= initial:
            continue
        for thread, util in enumerate(step.thread_utilisation):
            shrunk_busy[thread] = shrunk_busy.get(thread, 0.0) + util * step.duration
            shrunk_total[thread] = shrunk_total.get(thread, 0.0) + step.duration
    shrunk_utilisation = {
        t: shrunk_busy[t] / shrunk_total[t] for t in sorted(shrunk_busy)
    }

    return ImbalanceTrace(
        workload=workload.name,
        utilisation=tracer.thread_utilisation(sim_label, rank=0),
        shrunk_utilisation=shrunk_utilisation,
        mask_changes=len(tracer.mask_changes(sim_label)),
        rendering=view.render_thread_activity(sim_label),
    )


# -- Figure 3 (conceptual timeline) ------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioTimeline:
    """Figure 3: width (CPUs in use) of each job over time, per scenario."""

    scenario: str
    rendering: str
    job_intervals: dict[str, tuple[float, float]]


def scenario_timelines(
    simulator: str = "NEST",
    simulator_config: str = "Conf. 1",
    analytics: str = "Pils",
    analytics_config: str = "Conf. 2",
) -> dict[str, ScenarioTimeline]:
    """Reproduce the Figure 3 schematic from actual simulated runs."""
    workload = in_situ_workload(simulator, simulator_config, analytics, analytics_config)
    results = run_both_scenarios(workload)
    timelines: dict[str, ScenarioTimeline] = {}
    for scenario, result in results.items():
        view = ParaverView(result.tracer, bin_seconds=100.0)
        labels = [job.label for job in workload.jobs]
        intervals = {label: result.tracer.span(label) for label in labels}
        timelines[scenario] = ScenarioTimeline(
            scenario=scenario,
            rendering=view.render_job_widths(labels),
            job_intervals=intervals,
        )
    return timelines
