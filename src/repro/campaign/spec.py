"""Declarative campaign specifications.

A campaign is a grid — scenario × workload × policy × cluster — expanded into
individually executable :class:`RunSpec` entries.  Everything here is a plain
frozen dataclass of primitive values: a run spec must cross process
boundaries (the campaign runner pickles it into a ``multiprocessing`` worker
pool) and must rebuild *exactly* the same simulation on the other side, which
is what makes fixed-seed campaigns byte-identical whether they execute
serially or across N workers.

Live objects (``Workload``, ``ClusterTopology``, ``DistributionPolicy``) are
therefore never stored; each reference knows how to ``build()`` its object in
whichever process executes the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.cpuset.distribution import (
    DistributionPolicy,
    EquipartitionPolicy,
    PackedPolicy,
    ProportionalPolicy,
    SocketAwareEquipartition,
)
from repro.cpuset.topology import ClusterTopology
from repro.slurm.policies import NODE_POLICY_FACTORIES
from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.runner import DROM, SERIAL
from repro.workload.workloads import (
    Workload,
    high_priority_workload,
    in_situ_workload,
)

#: Policy registry: short names usable in specs and on the CLI.
POLICY_REGISTRY: dict[str, type[DistributionPolicy]] = {
    "socket": SocketAwareEquipartition,
    "equipartition": EquipartitionPolicy,
    "proportional": ProportionalPolicy,
    "packed": PackedPolicy,
}


@dataclass(frozen=True)
class ClusterRef:
    """Reference to a cluster topology, buildable in any process.

    ``kind="mn3"`` builds ``nnodes`` MareNostrum III nodes (the paper's
    hardware); ``kind="uniform"`` builds ``nnodes`` × ``sockets`` ×
    ``cores_per_socket`` generic nodes.
    """

    nnodes: int = 2
    kind: str = "mn3"
    sockets: int = 2
    cores_per_socket: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("mn3", "uniform"):
            raise ValueError(f"unknown cluster kind {self.kind!r}")
        if self.nnodes <= 0:
            raise ValueError("nnodes must be positive")

    def build(self) -> ClusterTopology:
        if self.kind == "mn3":
            return ClusterTopology.marenostrum3(self.nnodes)
        return ClusterTopology.uniform(
            self.nnodes, sockets=self.sockets, cores_per_socket=self.cores_per_socket
        )

    @property
    def label(self) -> str:
        if self.kind == "mn3":
            return f"mn3x{self.nnodes}"
        return f"{self.kind}{self.nnodes}x{self.sockets}x{self.cores_per_socket}"


@dataclass(frozen=True)
class PolicyRef:
    """Reference to a mask-distribution policy by registry name."""

    name: str = "socket"

    def __post_init__(self) -> None:
        if self.name not in POLICY_REGISTRY:
            raise ValueError(
                f"unknown policy {self.name!r}; choose from {sorted(POLICY_REGISTRY)}"
            )

    def build(self) -> DistributionPolicy:
        return POLICY_REGISTRY[self.name]()


@dataclass(frozen=True)
class SyntheticWorkloadRef:
    """A workload drawn from the synthetic generator with a fixed seed."""

    spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    seed: int = 0

    def build(self) -> Workload:
        return generate_workload(self.spec, self.seed)

    @property
    def label(self) -> str:
        return f"{self.spec.name}[seed={self.seed}]"


@dataclass(frozen=True)
class InSituWorkloadRef:
    """The paper's use-case-1 workload family (simulator + analytics).

    ``simulator_kwargs`` (a tuple of key/value pairs, to stay hashable and
    picklable) forwards to the simulator's model factory — the ablations use
    ``(("malleable", False),)`` and ``(("chunks_per_thread", 0),)``.

    ``analytics_nodes`` shrinks the analytics job's resource request below
    the partition width (heterogeneous use case 1); it is part of the run
    identity — the same workload with a 1-node analytics job is a different
    cell than with the full-width one.
    """

    simulator: str = "NEST"
    simulator_config: str = "Conf. 1"
    analytics: str = "Pils"
    analytics_config: str = "Conf. 2"
    analytics_submit: float = 120.0
    simulator_kwargs: tuple[tuple[str, object], ...] = ()
    analytics_nodes: int | None = None

    def build(self) -> Workload:
        return in_situ_workload(
            self.simulator,
            self.simulator_config,
            self.analytics,
            self.analytics_config,
            analytics_submit=self.analytics_submit,
            simulator_model_kwargs=dict(self.simulator_kwargs) or None,
            analytics_nodes=self.analytics_nodes,
        )

    @property
    def label(self) -> str:
        suffix = (
            f" @{self.analytics_nodes}n" if self.analytics_nodes is not None else ""
        )
        return (
            f"{self.simulator} {self.simulator_config} + "
            f"{self.analytics} {self.analytics_config}{suffix}"
        )


@dataclass(frozen=True)
class HighPriorityWorkloadRef:
    """The paper's use-case-2 workload (NEST + high-priority CoreNeuron)."""

    second_submit: float = 120.0

    def build(self) -> Workload:
        return high_priority_workload(second_submit=self.second_submit)

    @property
    def label(self) -> str:
        return f"UC2[submit={self.second_submit:g}]"


WorkloadRef = Union[SyntheticWorkloadRef, InSituWorkloadRef, HighPriorityWorkloadRef]

#: Node-selection policies selectable by name on a :class:`SchedulerRef` —
#: the key set of :data:`repro.slurm.policies.NODE_POLICY_FACTORIES`.
#: ``lowest-utilisation`` is wired to the live DROM statistics modules by the
#: scenario runner (it needs per-run measured data, so it cannot be built
#: here); the other two are stateless.
NODE_POLICY_NAMES = tuple(sorted(NODE_POLICY_FACTORIES))


@dataclass(frozen=True)
class SchedulerRef:
    """Controller options of one run: backfill × node-selection policy.

    Exposes :class:`~repro.slurm.slurmctld.Slurmctld`'s existing knobs as a
    campaign axis, so backfill × victim-selection sweeps are declarative like
    everything else.  ``node_policy=None`` keeps the stock configuration
    order.
    """

    backfill: bool = False
    node_policy: str | None = None

    def __post_init__(self) -> None:
        if self.node_policy is not None and self.node_policy not in NODE_POLICY_NAMES:
            raise ValueError(
                f"unknown node policy {self.node_policy!r}; "
                f"choose from {sorted(NODE_POLICY_NAMES)}"
            )

    @property
    def label(self) -> str:
        parts = []
        if self.backfill:
            parts.append("backfill")
        if self.node_policy is not None:
            parts.append(self.node_policy)
        return "+".join(parts) if parts else "fcfs"


@dataclass(frozen=True)
class RunSpec:
    """One executable cell of the campaign grid.

    Note there is deliberately no per-run random seed: the simulation itself
    is deterministic, and workload randomness is owned by the workload
    reference (a :class:`SyntheticWorkloadRef` carries its generator seed) so
    that the Serial and DROM runs of the same cell see the *same* workload.
    """

    index: int
    scenario: str
    workload: WorkloadRef
    cluster: ClusterRef = ClusterRef()
    policy: PolicyRef | None = None
    #: Optional co-run slow-down: while a job shares a node, its steps take
    #: ``interference_factor`` times longer (the ablations' oversubscription
    #: model).  ``None`` means no interference, like the paper's measurements.
    interference_factor: float | None = None
    #: Controller options (backfill, node-selection policy).
    scheduler: SchedulerRef = SchedulerRef()

    def __post_init__(self) -> None:
        if self.scenario not in (SERIAL, DROM):
            raise ValueError(f"unknown scenario {self.scenario!r}")

    @property
    def run_id(self) -> str:
        policy = self.policy.name if self.policy is not None else "default"
        # Every field that changes what the run computes must appear here:
        # two ids may only collide when the runs are interchangeable.
        interference = (
            f"|x{self.interference_factor:g}"
            if self.interference_factor is not None
            else ""
        )
        return (
            f"{self.index:04d}|{self.scenario}|{self.workload.label}"
            f"|{self.cluster.label}|{policy}|{self.scheduler.label}{interference}"
        )

    @property
    def cell_id(self) -> str:
        """The run id minus its grid-index prefix — the identity of the
        *cell* (what the content-addressed store tiers persist), shared by
        every campaign that reaches the same simulation."""
        return self.run_id.split("|", 1)[1]


@dataclass(frozen=True)
class CampaignSpec:
    """The full sweep: every combination of the axes below becomes a run.

    Expansion order is deterministic — cluster, then policy, then workload,
    then scenario (innermost), so the Serial/DROM runs of the same cell are
    adjacent — and each run gets a stable index.
    """

    name: str
    workloads: tuple[WorkloadRef, ...]
    scenarios: tuple[str, ...] = (SERIAL, DROM)
    clusters: tuple[ClusterRef, ...] = (ClusterRef(),)
    policies: tuple[PolicyRef | None, ...] = (None,)
    schedulers: tuple[SchedulerRef, ...] = (SchedulerRef(),)
    interference_factor: float | None = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a campaign needs at least one workload")
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        for scenario in self.scenarios:
            if scenario not in (SERIAL, DROM):
                raise ValueError(f"unknown scenario {scenario!r}")
        if not self.clusters:
            raise ValueError("a campaign needs at least one cluster")
        if not self.policies:
            raise ValueError("a campaign needs at least one policy entry")
        if not self.schedulers:
            raise ValueError("a campaign needs at least one scheduler entry")

    def expand(self) -> list[RunSpec]:
        """Expand the grid into its run list (stable order and indices)."""
        runs: list[RunSpec] = []
        index = 0
        for cluster in self.clusters:
            for scheduler in self.schedulers:
                for policy in self.policies:
                    for workload in self.workloads:
                        for scenario in self.scenarios:
                            runs.append(
                                RunSpec(
                                    index=index,
                                    scenario=scenario,
                                    workload=workload,
                                    cluster=cluster,
                                    policy=policy,
                                    interference_factor=self.interference_factor,
                                    scheduler=scheduler,
                                )
                            )
                            index += 1
        return runs

    @property
    def nruns(self) -> int:
        return (
            len(self.clusters)
            * len(self.schedulers)
            * len(self.policies)
            * len(self.workloads)
            * len(self.scenarios)
        )

    def shard(self, n: int) -> list["CampaignSpec"]:
        """Split the campaign into up to ``n`` balanced shard specs.

        The workload axis (normally the widest) is dealt round-robin, so the
        shards' run counts differ by at most one workload's worth of cells.
        Each shard is a self-contained campaign; the union of the shards'
        cells equals this spec's cells (grid *indices* differ, but the
        content-addressed store excludes indices from its keys, so running
        every shard into its own :class:`~repro.results.store.ResultStore`,
        merging the stores, and re-running the full spec warm is the
        cross-host execution path).

        With fewer workloads than ``n``, only the non-empty shards are
        returned.
        """
        if n <= 0:
            raise ValueError("shard count must be positive")
        groups = [self.workloads[i::n] for i in range(n)]
        return [
            replace(self, name=f"{self.name}[shard {i + 1}/{n}]", workloads=group)
            for i, group in enumerate(groups)
            if group
        ]
