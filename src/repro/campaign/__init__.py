"""Campaign subsystem — parallel scenario sweeps over the DROM simulation.

The paper evaluates DROM on two nodes with a handful of hand-written
workloads; this package is the scaling seam on top of that substrate.  A
:class:`~repro.campaign.spec.CampaignSpec` describes a grid of
scenario × workload × policy × cluster combinations declaratively (plain
picklable dataclasses), :func:`~repro.campaign.runner.run_campaign` expands
it, executes every run — in-process or across a ``multiprocessing`` worker
pool — and aggregates the per-run metrics into one comparable table.

Fixed-seed campaigns are deterministic by construction: every run is a pure
function of its :class:`~repro.campaign.spec.RunSpec` and aggregation happens
in run-index order, so 1 worker and N workers produce byte-identical
aggregated metrics.

Command line::

    python -m repro.campaign --workloads 5 --njobs 3 --nnodes 4 --workers 4
"""

from repro.campaign.spec import (
    NODE_POLICY_NAMES,
    POLICY_REGISTRY,
    CampaignSpec,
    ClusterRef,
    HighPriorityWorkloadRef,
    InSituWorkloadRef,
    PolicyRef,
    RunSpec,
    SchedulerRef,
    SyntheticWorkloadRef,
    WorkloadRef,
)
from repro.campaign.runner import (
    CampaignResult,
    RunMetrics,
    execute_run,
    execute_runs,
    resume_campaign,
    run_campaign,
    run_scenario_pair,
    summarise_run,
)

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "ClusterRef",
    "PolicyRef",
    "SchedulerRef",
    "NODE_POLICY_NAMES",
    "SyntheticWorkloadRef",
    "InSituWorkloadRef",
    "HighPriorityWorkloadRef",
    "WorkloadRef",
    "POLICY_REGISTRY",
    "CampaignResult",
    "RunMetrics",
    "execute_run",
    "execute_runs",
    "resume_campaign",
    "run_campaign",
    "run_scenario_pair",
    "summarise_run",
]
