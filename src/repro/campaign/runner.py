"""Campaign execution: expand, run (serially or in a worker pool), aggregate.

The execution contract that everything else leans on:

* :func:`execute_run` is a **pure function** of a :class:`RunSpec` — it
  rebuilds the workload, cluster and policy from their declarative references
  and runs one fresh :class:`~repro.workload.runner.ScenarioRunner` on a fresh
  discrete-event engine.  No state leaks between runs.
* :func:`run_campaign` executes the expanded run list either in-process
  (``workers=1``) or on a ``multiprocessing`` pool, and aggregates the compact
  per-run metrics in **run-index order**.  Because each run is pure and the
  aggregation order is fixed, a fixed-seed campaign produces byte-identical
  aggregated metrics no matter how many workers executed it.

Experiments that need the full :class:`ScenarioResult` (tracers for the
figure reproductions) call :func:`execute_run` / :func:`run_scenario_pair`
directly instead of going through the compact aggregation.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Iterable

from repro.campaign.spec import CampaignSpec, RunSpec, WorkloadRef
from repro.workload.runner import DROM, SERIAL, ScenarioResult, ScenarioRunner

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.results.sinks import TraceSink
    from repro.results.store import ResultStore
    from repro.traces.query import ScenarioReplay
    from repro.traces.store import TraceStore


def execute_run(
    run: RunSpec, trace: bool = False, batching: bool = True
) -> ScenarioResult:
    """Execute one campaign run and return the full scenario result.

    ``batching=False`` runs the single-step reference loop instead of the
    batched fast path; results are byte-identical either way (the
    ``bench_perf_core`` harness gates on it), so the flag is deliberately
    *not* part of :class:`RunSpec` or the content hash.
    """
    workload = run.workload.build()
    interference = None
    if run.interference_factor is not None:
        factor = run.interference_factor

        def interference(job: str, node: str, co_runners: list[str]) -> float:
            return factor if co_runners else 1.0

    runner = ScenarioRunner(
        drom_enabled=run.scenario == DROM,
        cluster=run.cluster.build(),
        policy=run.policy.build() if run.policy is not None else None,
        interference=interference,
        backfill=run.scheduler.backfill,
        node_policy=run.scheduler.node_policy,
        batching=batching,
    )
    return runner.run(workload, trace=trace)


def run_scenario_pair(
    workload: WorkloadRef,
    trace: bool = True,
    sinks: Iterable["TraceSink"] = (),
    store: "ResultStore | None" = None,
    trace_store: "TraceStore | None" = None,
    **run_kwargs,
) -> dict[str, "ScenarioResult | ScenarioReplay"]:
    """Serial and DROM full results of one workload (the experiments' idiom).

    ``sinks`` receive each scenario's full result (tracing is forced on when
    any sink is given), so the figure experiments export their traces through
    the same sink API as campaigns.

    ``store``/``trace_store`` are the two content-addressed tiers.  When
    *both* are given and both hit for a scenario, execution is skipped and a
    :class:`~repro.traces.query.ScenarioReplay` (metrics row + stored
    tracer, same reporting interface) is returned instead; on any miss the
    scenario executes with tracing on and both tiers are written back.  This
    is what lets the trace-based figure experiments regenerate from a warm
    store without simulating.  Unlike campaign cache hits, replays *do*
    carry a full tracer, so sinks are fed on both paths.
    """
    sinks = tuple(sinks)
    results: dict[str, ScenarioResult] = {}
    for i, scenario in enumerate((SERIAL, DROM)):
        run = RunSpec(index=i, scenario=scenario, workload=workload, **run_kwargs)
        result = None
        if store is not None and trace_store is not None:
            row = store.get(run)
            entry = trace_store.get(run) if row is not None else None
            if row is not None and entry is not None:
                from repro.traces.query import replay_scenario

                result = replay_scenario(run, row, entry)
        if result is None:
            capture = trace or bool(sinks) or trace_store is not None
            result = execute_run(run, trace=capture)
            if store is not None:
                store.put(summarise_run(run, result))
            if trace_store is not None:
                trace_store.put(run, result)
        for sink in sinks:
            sink.write(run, result)
        results[scenario] = result
    return results


@dataclass(frozen=True)
class RunMetrics:
    """Compact, picklable summary of one run (what the pool ships back)."""

    run: RunSpec
    workload_name: str
    total_run_time: float
    average_response_time: float
    makespan_end: float
    #: Per-job (label, value) pairs, in job order — tuples keep the record
    #: hashable and deterministic to serialise.
    response_times: tuple[tuple[str, float], ...]
    wait_times: tuple[tuple[str, float], ...]
    run_times: tuple[tuple[str, float], ...]
    job_utilisation: tuple[tuple[str, float], ...]

    @property
    def run_id(self) -> str:
        return self.run.run_id

    @property
    def scenario(self) -> str:
        return self.run.scenario

    def response_time(self, job: str) -> float:
        return dict(self.response_times)[job]


def summarise_run(run: RunSpec, result: ScenarioResult) -> RunMetrics:
    """Compact a full scenario result into its campaign row."""
    metrics = result.metrics
    labels = [j.name for j in metrics.jobs]
    return RunMetrics(
        run=run,
        workload_name=result.workload.name,
        total_run_time=metrics.total_run_time,
        average_response_time=metrics.average_response_time,
        makespan_end=metrics.makespan_end,
        response_times=tuple((l, metrics.job(l).response_time) for l in labels),
        wait_times=tuple((l, metrics.job(l).wait_time) for l in labels),
        run_times=tuple((l, metrics.job(l).run_time) for l in labels),
        job_utilisation=tuple((l, result.job_utilisation(l)) for l in labels),
    )


def _execute_and_summarise(
    run: RunSpec,
    sinks: tuple["TraceSink", ...] = (),
    trace_store: "TraceStore | None" = None,
) -> RunMetrics:
    """Pool worker entry point (module-level so it pickles).

    Tracing is enabled only when sinks or the trace tier want the full
    trace; each worker writes its own runs' trace files (sink outputs and
    trace-store artifacts are keyed per run, so concurrent workers never
    collide — and same-cell collisions write atomically).
    """
    result = execute_run(run, trace=bool(sinks) or trace_store is not None)
    for sink in sinks:
        sink.write(run, result)
    if trace_store is not None:
        trace_store.put(run, result)
    return summarise_run(run, result)


@dataclass(frozen=True)
class CampaignResult:
    """All rows of a finished campaign, in run-index order."""

    name: str
    rows: tuple[RunMetrics, ...]
    #: How many rows were served from a result store instead of simulated.
    cache_hits: int = 0
    #: How many rows were actually simulated (``len(rows) - cache_hits``).
    executed: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def by_scenario(self) -> dict[str, list[RunMetrics]]:
        out: dict[str, list[RunMetrics]] = {}
        for row in self.rows:
            out.setdefault(row.scenario, []).append(row)
        return out

    def scenario_pairs(self) -> list[dict[str, RunMetrics]]:
        """Group rows by grid cell (the consecutive scenario block).

        Returns one ``{scenario: row}`` dict per cell, in grid order — the
        shape the Serial-vs-DROM comparisons consume.  Grouping follows the
        expansion order (scenarios are innermost, so each cell is one
        consecutive block of rows), which keeps repeated workload references
        in the grid as distinct cells.
        """
        cells: list[dict[str, RunMetrics]] = []
        current: dict[str, RunMetrics] = {}
        for row in self.rows:
            if row.scenario in current:
                cells.append(current)
                current = {}
            current[row.scenario] = row
        if current:
            cells.append(current)
        return cells

    def to_table(self) -> str:
        """Render the aggregated metrics as one comparable fixed-width table."""
        from repro.experiments.tables import render_table

        rows = [
            (
                f"{m.run.index:04d}",
                m.scenario,
                m.workload_name,
                m.run.cluster.label,
                m.run.policy.name if m.run.policy is not None else "default",
                m.run.scheduler.label,
                f"{m.total_run_time:.3f}",
                f"{m.average_response_time:.3f}",
                f"{m.makespan_end:.3f}",
            )
            for m in self.rows
        ]
        return render_table(
            [
                "Run",
                "Scenario",
                "Workload",
                "Cluster",
                "Policy",
                "Scheduler",
                "Total run time (s)",
                "Avg response (s)",
                "Makespan end (s)",
            ],
            rows,
        )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: "ResultStore | None" = None,
    sinks: Iterable["TraceSink"] = (),
    trace_store: "TraceStore | None" = None,
) -> CampaignResult:
    """Execute every run of ``spec`` and aggregate the metrics.

    ``workers=1`` executes in-process; ``workers>1`` fans the runs out over a
    ``multiprocessing`` pool.  Both paths return identical results for the
    same spec: each run is a pure function of its :class:`RunSpec` and rows
    are aggregated in run-index order regardless of completion order.

    ``store`` memoises execution on the run's content hash: cells already in
    the :class:`~repro.results.store.ResultStore` are served from it (no
    simulation), only the misses execute, and fresh rows are written back.
    Because stored rows are rebound to the requesting grid index and
    aggregation stays in run-index order, a warm campaign is byte-identical
    to a cold one.

    ``trace_store`` adds the second tier: every run that executes does so
    with tracing on and persists its full tracer under the same content key
    (:class:`~repro.traces.store.TraceStore`).  A run skips execution only
    when **both** tiers hit — a metrics hit whose trace artifact is missing
    (or stale-format) re-simulates to backfill the trace, which re-derives
    the identical row (runs are pure functions of their specs).

    ``sinks`` receive the full :class:`~repro.workload.runner.ScenarioResult`
    of every run that actually executes (cache hits carry no tracer, so they
    are not re-exported).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    runs = spec.expand()
    sinks = tuple(sinks)
    rows_by_index: dict[int, RunMetrics] = {}
    if store is not None:
        misses = []
        for run in runs:
            cached = store.get(run)
            if cached is not None and (trace_store is None or run in trace_store):
                rows_by_index[run.index] = cached
            else:
                misses.append(run)
    else:
        misses = list(runs)
    worker = partial(_execute_and_summarise, sinks=sinks, trace_store=trace_store)
    if not misses:
        fresh: list[RunMetrics] = []
    elif workers == 1:
        fresh = [worker(run) for run in misses]
    else:
        # chunksize=1 keeps the work spread even when run times are skewed;
        # Pool.map returns results in submission order, preserving run order.
        with multiprocessing.Pool(processes=min(workers, len(misses))) as pool:
            fresh = pool.map(worker, misses, chunksize=1)
    for row in fresh:
        rows_by_index[row.run.index] = row
        if store is not None:
            store.put(row)
    rows = tuple(rows_by_index[run.index] for run in runs)
    return CampaignResult(
        name=spec.name,
        rows=rows,
        cache_hits=len(runs) - len(misses),
        executed=len(misses),
    )
