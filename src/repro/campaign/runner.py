"""Campaign execution: expand, run (serially or in a worker pool), aggregate.

The execution contract that everything else leans on:

* :func:`execute_run` is a **pure function** of a :class:`RunSpec` — it
  rebuilds the workload, cluster and policy from their declarative references
  and runs one fresh :class:`~repro.workload.runner.ScenarioRunner` on a fresh
  discrete-event engine.  No state leaks between runs.
* :func:`run_campaign` executes the expanded run list either in-process
  (``workers=1``) or on a ``multiprocessing`` pool, and aggregates the compact
  per-run metrics in **run-index order**.  Because each run is pure and the
  aggregation order is fixed, a fixed-seed campaign produces byte-identical
  aggregated metrics no matter how many workers executed it.

Observability rides the same seam: every cell is measured on a *fresh clock*
from the telemetry's clock factory and records a detached
``cell -> {build, simulate, summarise, store_write, trace_write}`` span tree
(:mod:`repro.obs.telemetry`).  Pooled workers ship their trees back through
the pool next to the metrics row, and the parent stitches all cells under
the ``campaign`` span in run-index order — so serial and pooled campaigns
produce structurally identical telemetry (byte-identical with a
deterministic fake clock factory).  Telemetry is observational only: rows,
content keys and stored artifacts are byte-identical with it on or off.

Experiments that need the full :class:`ScenarioResult` (tracers for the
figure reproductions) call :func:`execute_run` / :func:`run_scenario_pair`
directly instead of going through the compact aggregation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, TextIO

from repro.campaign.spec import CampaignSpec, RunSpec, WorkloadRef
from repro.obs.log import get_logger
from repro.obs.progress import ProgressLine
from repro.obs.telemetry import DISABLED, Span, Telemetry
from repro.workload.runner import DROM, SERIAL, ScenarioResult, ScenarioRunner

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.results.sinks import TraceSink
    from repro.results.store import ResultStore
    from repro.traces.query import ScenarioReplay
    from repro.traces.store import TraceStore

_log = get_logger("campaign")


def execute_run(
    run: RunSpec,
    trace: bool = False,
    batching: bool = True,
    telemetry: Telemetry | None = None,
) -> ScenarioResult:
    """Execute one campaign run and return the full scenario result.

    ``batching=False`` runs the single-step reference loop instead of the
    batched fast path; results are byte-identical either way (the
    ``bench_perf_core`` harness gates on it), so the flag is deliberately
    *not* part of :class:`RunSpec` or the content hash.

    ``telemetry`` records ``build`` and ``simulate`` spans under the current
    span; the ``simulate`` span carries the run's engine/step/batch counters.
    """
    obs = telemetry if telemetry is not None else DISABLED
    with obs.span("build"):
        workload = run.workload.build()
        interference = None
        if run.interference_factor is not None:
            factor = run.interference_factor

            def interference(job: str, node: str, co_runners: list[str]) -> float:
                return factor if co_runners else 1.0

        runner = ScenarioRunner(
            drom_enabled=run.scenario == DROM,
            cluster=run.cluster.build(),
            policy=run.policy.build() if run.policy is not None else None,
            interference=interference,
            backfill=run.scheduler.backfill,
            node_policy=run.scheduler.node_policy,
            batching=batching,
        )
    with obs.span("simulate") as span:
        result = runner.run(workload, trace=trace)
        span.count("events", result.events_executed)
        span.count("steps", result.steps_advanced)
        span.count("batches", result.batches_executed)
        _annotate_sched(span, result)
    return result


def _annotate_sched(span: Span, result: ScenarioResult) -> None:
    """Attach the run's scheduler-level observables to its ``simulate`` span.

    Everything here is a pure function of the (deterministic) simulation
    outcome — never of wall clock — so serial and pooled campaigns record
    identical values.  The queue-depth series rides as a span attribute
    (excluded from Chrome-trace ``args``; exported as a counter track).
    """
    timeline = result.sched
    # The disabled telemetry hands out a shared null span whose ``attrs``
    # dict is class-level; never write into it.
    if not len(timeline) or not isinstance(span, Span):
        return
    fairness = timeline.fairness_summary()
    span.count("sched_jobs", fairness.njobs)
    span.count("sched_started", fairness.started)
    span.count("sched_wait_seconds", fairness.mean_wait * fairness.started)
    span.count("sched_busy_cpu_seconds", timeline.busy_cpu_seconds(result.end_time))
    span.count(
        "sched_capacity_cpu_seconds", timeline.capacity_cpu_seconds(result.end_time)
    )
    span.attrs["sched_max_wait"] = fairness.max_wait
    span.attrs["sched_queue_series"] = [
        list(point) for point in timeline.queue_depth_series()
    ]


def run_scenario_pair(
    workload: WorkloadRef,
    trace: bool = True,
    sinks: Iterable["TraceSink"] = (),
    store: "ResultStore | None" = None,
    trace_store: "TraceStore | None" = None,
    telemetry: Telemetry | None = None,
    **run_kwargs,
) -> dict[str, "ScenarioResult | ScenarioReplay"]:
    """Serial and DROM full results of one workload (the experiments' idiom).

    ``sinks`` receive each scenario's full result (tracing is forced on when
    any sink is given), so the figure experiments export their traces through
    the same sink API as campaigns.

    ``store``/``trace_store`` are the two content-addressed tiers.  When
    *both* are given and both hit for a scenario, execution is skipped and a
    :class:`~repro.traces.query.ScenarioReplay` (metrics row + stored
    tracer, same reporting interface) is returned instead; on any miss the
    scenario executes with tracing on and both tiers are written back.  This
    is what lets the trace-based figure experiments regenerate from a warm
    store without simulating.  Unlike campaign cache hits, replays *do*
    carry a full tracer, so sinks are fed on both paths.

    ``telemetry`` records one ``cell`` span per scenario (with a ``replay``
    child on double hits, the usual execution children otherwise).
    """
    sinks = tuple(sinks)
    obs = telemetry if telemetry is not None else DISABLED
    results: dict[str, ScenarioResult] = {}
    for i, scenario in enumerate((SERIAL, DROM)):
        run = RunSpec(index=i, scenario=scenario, workload=workload, **run_kwargs)
        with obs.span("cell", index=i, run_id=run.run_id, cached=False) as cell:
            result = None
            if store is not None and trace_store is not None:
                row = store.get(run)
                entry = trace_store.get(run) if row is not None else None
                if row is not None and entry is not None:
                    from repro.traces.query import replay_scenario

                    with obs.span("replay"):
                        result = replay_scenario(run, row, entry)
                    cell.attrs["cached"] = True
                    cell.count("metrics_hit", 1)
                    cell.count("trace_hit", 1)
                    _log.debug("cell %s: replayed from both tiers", run.cell_id)
            if result is None:
                capture = trace or bool(sinks) or trace_store is not None
                result = execute_run(run, trace=capture, telemetry=obs)
                if store is not None:
                    with obs.span("store_write") as span:
                        path = store.put(summarise_run(run, result))
                        span.count("bytes", path.stat().st_size)
                if trace_store is not None:
                    with obs.span("trace_write") as span:
                        path = trace_store.put(run, result)
                        span.count("bytes", path.stat().st_size)
            for sink in sinks:
                sink.write(run, result)
        results[scenario] = result
    return results


@dataclass(frozen=True)
class RunMetrics:
    """Compact, picklable summary of one run (what the pool ships back)."""

    run: RunSpec
    workload_name: str
    total_run_time: float
    average_response_time: float
    makespan_end: float
    #: Per-job (label, value) pairs, in job order — tuples keep the record
    #: hashable and deterministic to serialise.
    response_times: tuple[tuple[str, float], ...]
    wait_times: tuple[tuple[str, float], ...]
    run_times: tuple[tuple[str, float], ...]
    job_utilisation: tuple[tuple[str, float], ...]

    @property
    def run_id(self) -> str:
        return self.run.run_id

    @property
    def scenario(self) -> str:
        return self.run.scenario

    def response_time(self, job: str) -> float:
        return dict(self.response_times)[job]


def summarise_run(run: RunSpec, result: ScenarioResult) -> RunMetrics:
    """Compact a full scenario result into its campaign row."""
    metrics = result.metrics
    labels = [j.name for j in metrics.jobs]
    return RunMetrics(
        run=run,
        workload_name=result.workload.name,
        total_run_time=metrics.total_run_time,
        average_response_time=metrics.average_response_time,
        makespan_end=metrics.makespan_end,
        response_times=tuple((l, metrics.job(l).response_time) for l in labels),
        wait_times=tuple((l, metrics.job(l).wait_time) for l in labels),
        run_times=tuple((l, metrics.job(l).run_time) for l in labels),
        job_utilisation=tuple((l, result.job_utilisation(l)) for l in labels),
    )


def _execute_and_summarise(
    run: RunSpec,
    sinks: tuple["TraceSink", ...] = (),
    trace_store: "TraceStore | None" = None,
    store: "ResultStore | None" = None,
    clock_factory=None,
) -> tuple[RunMetrics, Span | None]:
    """Pool worker entry point (module-level so it pickles).

    Tracing is enabled only when sinks or the trace tier want the full
    trace; each worker writes its own runs' store entries and trace files
    (both tiers are keyed per run, so concurrent workers never collide — and
    same-cell collisions write atomically).

    Returns the metrics row plus the cell's detached span tree (``None``
    when telemetry is off).  The tree is measured on a **fresh clock** from
    ``clock_factory`` — the same code path whether this call runs in-process
    or inside a pool worker, which is what makes serial and pooled telemetry
    identical under a deterministic fake factory.
    """
    obs = Telemetry(clock_factory=clock_factory) if clock_factory is not None else DISABLED
    with obs.span("cell", index=run.index, run_id=run.run_id, cached=False) as cell:
        result = execute_run(
            run, trace=bool(sinks) or trace_store is not None, telemetry=obs
        )
        with obs.span("summarise"):
            row = summarise_run(run, result)
        for sink in sinks:
            sink.write(run, result)
        if store is not None:
            with obs.span("store_write") as span:
                path = store.put(row)
                span.count("bytes", path.stat().st_size)
        if trace_store is not None:
            with obs.span("trace_write") as span:
                path = trace_store.put(run, result)
                span.count("bytes", path.stat().st_size)
        cell.count("events", result.events_executed)
    return row, (obs.roots[0] if obs.enabled else None)


@dataclass(frozen=True)
class CampaignResult:
    """All rows of a finished campaign, in run-index order."""

    name: str
    rows: tuple[RunMetrics, ...]
    #: How many rows were served from the store tiers instead of simulated
    #: (with a trace tier configured, a row counts only when *both* tiers hit).
    cache_hits: int = 0
    #: How many rows were actually simulated (``len(rows) - cache_hits``).
    executed: int = 0
    #: Metrics-tier hits during the cache scan — includes rows that still
    #: re-simulated because the trace tier missed (see :attr:`backfilled`).
    metrics_hits: int = 0
    #: Trace-tier hits during the cache scan (0 when no trace tier was given).
    trace_hits: int = 0
    #: Metrics-tier hits that re-simulated to backfill a missing trace
    #: artifact (metrics hit, trace miss).
    backfilled: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def by_scenario(self) -> dict[str, list[RunMetrics]]:
        out: dict[str, list[RunMetrics]] = {}
        for row in self.rows:
            out.setdefault(row.scenario, []).append(row)
        return out

    def scenario_pairs(self) -> list[dict[str, RunMetrics]]:
        """Group rows by grid cell (the consecutive scenario block).

        Returns one ``{scenario: row}`` dict per cell, in grid order — the
        shape the Serial-vs-DROM comparisons consume.  Grouping follows the
        expansion order (scenarios are innermost, so each cell is one
        consecutive block of rows), which keeps repeated workload references
        in the grid as distinct cells.
        """
        cells: list[dict[str, RunMetrics]] = []
        current: dict[str, RunMetrics] = {}
        for row in self.rows:
            if row.scenario in current:
                cells.append(current)
                current = {}
            current[row.scenario] = row
        if current:
            cells.append(current)
        return cells

    def tier_summary(self) -> str:
        """One line of per-tier cache accounting (metrics vs trace tier)."""
        total = len(self.rows)
        parts = [
            f"metrics tier {self.metrics_hits} hit / "
            f"{total - self.metrics_hits} miss",
            f"trace tier {self.trace_hits} hit / {total - self.trace_hits} miss",
        ]
        return (
            "tiers: " + " | ".join(parts)
            + f" | {self.backfilled} backfill re-simulation(s)"
        )

    def to_table(self, tiers: bool = False) -> str:
        """Render the aggregated metrics as one comparable fixed-width table.

        ``tiers=True`` appends the per-tier cache accounting footer
        (:meth:`tier_summary`); the default rendering stays a pure function
        of the rows, so warm and cold campaigns tabulate byte-identically.
        """
        from repro.experiments.tables import render_table

        rows = [
            (
                f"{m.run.index:04d}",
                m.scenario,
                m.workload_name,
                m.run.cluster.label,
                m.run.policy.name if m.run.policy is not None else "default",
                m.run.scheduler.label,
                f"{m.total_run_time:.3f}",
                f"{m.average_response_time:.3f}",
                f"{m.makespan_end:.3f}",
            )
            for m in self.rows
        ]
        table = render_table(
            [
                "Run",
                "Scenario",
                "Workload",
                "Cluster",
                "Policy",
                "Scheduler",
                "Total run time (s)",
                "Avg response (s)",
                "Makespan end (s)",
            ],
            rows,
        )
        if tiers:
            table += "\n" + self.tier_summary()
        return table


def _as_executors(executor) -> "list | None":
    """Normalise ``run_campaign``'s ``executor=`` argument: ``None``, one
    :class:`~repro.exec.base.Executor`, or a sequence of them."""
    if executor is None:
        return None
    from repro.exec.base import Executor

    if isinstance(executor, Executor):
        return [executor]
    executors = list(executor)
    if not executors:
        return None
    for candidate in executors:
        if not isinstance(candidate, Executor):
            raise TypeError(f"not an Executor: {candidate!r}")
    return executors


def _as_manifest(manifest):
    """Normalise ``manifest=``: ``None``, a path, or a ``CampaignManifest``."""
    if manifest is None:
        return None
    from repro.exec.manifest import CampaignManifest

    if isinstance(manifest, CampaignManifest):
        return manifest
    return CampaignManifest(manifest)


def execute_runs(
    name: str,
    runs: Iterable[RunSpec],
    workers: int = 1,
    store: "ResultStore | None" = None,
    sinks: Iterable["TraceSink"] = (),
    trace_store: "TraceStore | None" = None,
    telemetry: Telemetry | None = None,
    progress: "bool | TextIO" = False,
    executor=None,
    manifest=None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
) -> CampaignResult:
    """Execute an explicit run list and aggregate the metrics — the core
    both :func:`run_campaign` (expanded spec) and :func:`resume_campaign`
    (manifest replay) drive.  See :func:`run_campaign` for the full
    parameter contract."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    runs = list(runs)
    sinks = tuple(sinks)
    executors = _as_executors(executor)
    journal = _as_manifest(manifest)
    obs = telemetry if telemetry is not None else DISABLED
    clock_factory = obs.clock_factory if obs.enabled else None
    stream = sys.stderr if progress is True else (progress or None)
    line = ProgressLine(len(runs), stream) if stream is not None else None
    _log.info(
        "campaign %r: %d runs on %s%s%s%s",
        name,
        len(runs),
        f"{len(executors)} executor(s)" if executors else f"{workers} worker(s)",
        f", store={store.root}" if store is not None else "",
        f", trace_store={trace_store.root}" if trace_store is not None else "",
        f", manifest={journal.path}" if journal is not None else "",
    )

    # The warm scan needs every cell's content key; compute each exactly
    # once (they also key the manifest journal and the store writes).
    keys: dict[int, str] = {}
    if store is not None or trace_store is not None or journal is not None:
        from repro.results.store import content_key

        keys = {run.index: content_key(run) for run in runs}
    if journal is not None:
        from repro.exec.manifest import DONE, FAILED

        journal.begin(name, runs)
    # One index read per tier for the whole scan (O(1) on a warm store,
    # one listdir + stat-diff after a write), instead of one filesystem
    # probe per cell per tier; membership is name-level, so hits are still
    # validated by the per-entry read below.  Index stats are snapshotted
    # as deltas around these parent-process scans only, so serial and
    # pooled campaigns count identically.
    def _index_stats(tier) -> dict:
        return dict(tier.index.stats) if tier is not None and tier.root.is_dir() else {}

    store_stats0 = _index_stats(store)
    trace_stats0 = _index_stats(trace_store)
    store_keys = store.scan() if store is not None else frozenset()
    trace_keys = trace_store.scan() if trace_store is not None else frozenset()
    index_counts = {}
    for tier, before, label in (
        (store, store_stats0, "store"),
        (trace_store, trace_stats0, "trace"),
    ):
        after = _index_stats(tier)
        # A "hit" is any scan the journal served (fresh or stat-diff
        # reconciled); only a missing/invalid journal counts as a rebuild.
        index_counts[f"{label}_index_hits"] = (
            after.get("hits", 0)
            + after.get("reconciles", 0)
            - before.get("hits", 0)
            - before.get("reconciles", 0)
        )
        index_counts[f"{label}_index_rebuilds"] = (
            after.get("rebuilds", 0) - before.get("rebuilds", 0)
        )

    rows_by_index: dict[int, RunMetrics] = {}
    spans_by_index: dict[int, Span] = {}
    #: index -> (metrics_hit, trace_hit) of the cache scan, annotated onto
    #: the executed cells' spans after stitching.
    tier_state: dict[int, tuple[bool, bool]] = {}
    with obs.span("campaign", name=name, runs=len(runs)) as campaign:
        misses = []
        metrics_hits = trace_hits = backfilled = 0
        for run in runs:
            key = keys.get(run.index)
            cached = (
                store.get(run, key)
                if store is not None and key in store_keys
                else None
            )
            trace_hit = (
                trace_store is not None
                and key in trace_keys
                and trace_store.get(run, key) is not None
            )
            metrics_hits += cached is not None
            trace_hits += trace_hit
            tier_state[run.index] = (cached is not None, trace_hit)
            if cached is not None and (trace_store is None or trace_hit):
                rows_by_index[run.index] = cached
                if journal is not None:
                    journal.record(key, DONE, index=run.index, cached=True)
                if obs.enabled:
                    span = obs.record(
                        "cell", index=run.index, run_id=run.run_id, cached=True
                    )
                    span.count("metrics_hit", 1)
                    if trace_hit:
                        span.count("trace_hit", 1)
                    spans_by_index[run.index] = span
                _log.debug("cell %04d: served from store", run.index)
                if line is not None:
                    line.advance(cached=True)
            else:
                if cached is not None:
                    backfilled += 1
                    _log.debug(
                        "cell %04d: metrics hit but trace miss, re-simulating "
                        "to backfill the trace tier", run.index,
                    )
                misses.append(run)

        def collect(results, journal_as: str | None = None, advance: bool = True) -> None:
            for row, span in results:
                rows_by_index[row.run.index] = row
                if span is not None:
                    spans_by_index[row.run.index] = span
                _log.debug("cell %04d: simulated", row.run.index)
                if journal is not None and journal_as is not None:
                    journal.record(
                        keys[row.run.index],
                        DONE,
                        index=row.run.index,
                        executor=journal_as,
                    )
                if line is not None and advance:
                    line.advance()

        try:
            if not misses:
                pass
            elif executors is not None:
                from repro.exec.base import WorkerContext
                from repro.exec.orchestrator import orchestrate

                context = WorkerContext(
                    sinks=sinks,
                    store=store,
                    trace_store=trace_store,
                    clock_factory=clock_factory,
                )

                def on_done(run, row, executor_name) -> None:
                    if journal is not None:
                        journal.record(
                            keys[run.index],
                            DONE,
                            index=run.index,
                            executor=executor_name,
                        )
                    if line is not None:
                        line.advance()

                def on_failed(run, reason, executor_name) -> None:
                    if journal is not None:
                        journal.record(
                            keys[run.index],
                            FAILED,
                            index=run.index,
                            executor=executor_name,
                            error=reason,
                        )

                def on_status(in_flight, queue_depth) -> None:
                    if line is not None:
                        busy = " ".join(
                            f"{name}:{n}" for name, n in in_flight.items()
                        )
                        line.set_status(
                            f"in flight {busy or '-'} | queued {queue_depth}"
                        )

                outcome = orchestrate(
                    misses,
                    executors,
                    context,
                    timeout=timeout,
                    retries=retries,
                    backoff=backoff,
                    on_done=on_done,
                    on_failed=on_failed,
                    on_status=on_status,
                    # A fresh clock (None when telemetry is off) turns on the
                    # per-executor (time, depth, in-flight) series without
                    # perturbing the campaign span's own clock domain.
                    clock=obs.fresh_clock(),
                )
                collect(outcome.results, advance=False)
                if obs.enabled:
                    # One closed span per executor with its dispatch
                    # accounting — pure bookkeeping of the orchestration,
                    # adopted before the cell stitch so the tree layout is
                    # deterministic.
                    for stat in outcome.stats.values():
                        span = obs.record(
                            "executor",
                            name=stat.name,
                            slots=stat.slots,
                            died=stat.died,
                        )
                        span.count("dispatched", stat.dispatched)
                        span.count("completed", stat.completed)
                        span.count("retried", stat.retried)
                        span.count("requeued", stat.requeued)
                        span.count("timeouts", stat.timeouts)
                        span.count("max_in_flight", stat.max_in_flight)
                        if stat.series:
                            # Full queue-depth/in-flight series (not just
                            # the high-water mark); excluded from Chrome
                            # args, exported as a counter track instead.
                            span.attrs["queue_series"] = [
                                list(sample) for sample in stat.series
                            ]
                        obs.adopt(span, parent=campaign)
                    campaign.count("max_queue_depth", outcome.max_queue_depth)
            elif workers == 1:
                collect(
                    (
                        _execute_and_summarise(
                            run,
                            sinks=sinks,
                            trace_store=trace_store,
                            store=store,
                            clock_factory=clock_factory,
                        )
                        for run in misses
                    ),
                    journal_as="serial",
                )
            else:
                # The worker pool ships the invariant context (sinks, store
                # tiers, clock factory) once through its initializer; per
                # cell only the RunSpec is pickled.  chunksize=1 keeps the
                # work spread even when run times are skewed; rows are keyed
                # by run index, so the unordered completion stream (which
                # lets the progress line advance as cells land) still
                # aggregates deterministically.
                from repro.exec.base import WorkerContext
                from repro.exec.local import pool_worker, worker_pool

                context = WorkerContext(
                    sinks=sinks,
                    store=store,
                    trace_store=trace_store,
                    clock_factory=clock_factory,
                )
                processes = min(workers, len(misses))
                with worker_pool(processes, context) as pool:
                    collect(
                        pool.imap_unordered(pool_worker, misses, chunksize=1),
                        journal_as=f"pool[{processes}]",
                    )
        finally:
            if line is not None:
                line.finish()
        if obs.enabled:
            # Stitch the cell trees under the campaign span in run-index
            # order and annotate executed cells with the cache-scan state —
            # both pure functions of the scan, so serial and pooled
            # campaigns produce identical trees.
            for run in runs:
                span = spans_by_index.get(run.index)
                if span is None:
                    continue
                if not span.attrs.get("cached"):
                    metrics_hit, trace_hit = tier_state[run.index]
                    span.attrs["backfilled"] = metrics_hit
                    if metrics_hit:
                        span.count("metrics_hit", 1)
                    if trace_hit:
                        span.count("trace_hit", 1)
                obs.adopt(span, parent=campaign)
            campaign.count("executed", len(misses))
            campaign.count("cached", len(runs) - len(misses))
            campaign.count("metrics_hits", metrics_hits)
            campaign.count("trace_hits", trace_hits)
            campaign.count("backfilled", backfilled)
            for counter, value in index_counts.items():
                campaign.count(counter, value)
    _log.info(
        "campaign %r done: %d simulated, %d served from store",
        name,
        len(misses),
        len(runs) - len(misses),
    )
    rows = tuple(rows_by_index[run.index] for run in runs)
    return CampaignResult(
        name=name,
        rows=rows,
        cache_hits=len(runs) - len(misses),
        executed=len(misses),
        metrics_hits=metrics_hits,
        trace_hits=trace_hits,
        backfilled=backfilled,
    )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    store: "ResultStore | None" = None,
    sinks: Iterable["TraceSink"] = (),
    trace_store: "TraceStore | None" = None,
    telemetry: Telemetry | None = None,
    progress: "bool | TextIO" = False,
    executor=None,
    manifest=None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
) -> CampaignResult:
    """Execute every run of ``spec`` and aggregate the metrics.

    ``workers=1`` executes in-process; ``workers>1`` fans the runs out over a
    ``multiprocessing`` pool whose workers receive the invariant campaign
    context once through the pool initializer.  ``executor`` overrides both:
    one :class:`~repro.exec.base.Executor` (or a list of them — e.g. a local
    pool plus two SSH hosts) dealt cells by the asyncio orchestrator
    (:mod:`repro.exec.orchestrator`), with per-cell ``timeout``, bounded
    ``retries`` with exponential ``backoff``, and graceful degradation when
    a backend dies.  All paths return identical results for the same spec:
    each run is a pure function of its :class:`RunSpec` and rows are
    aggregated in run-index order regardless of completion order.

    ``store`` memoises execution on the run's content hash: cells already in
    the :class:`~repro.results.store.ResultStore` are served from it (no
    simulation), only the misses execute, and fresh rows are written back.
    Because stored rows are rebound to the requesting grid index and
    aggregation stays in run-index order, a warm campaign is byte-identical
    to a cold one.

    ``trace_store`` adds the second tier: every run that executes does so
    with tracing on and persists its full tracer under the same content key
    (:class:`~repro.traces.store.TraceStore`).  A run skips execution only
    when **both** tiers hit — a metrics hit whose trace artifact is missing
    (or stale-format) re-simulates to backfill the trace, which re-derives
    the identical row (runs are pure functions of their specs).  The result's
    :attr:`~CampaignResult.metrics_hits` / :attr:`~CampaignResult.trace_hits`
    / :attr:`~CampaignResult.backfilled` break the scan down per tier.

    ``manifest`` (a path or :class:`~repro.exec.manifest.CampaignManifest`)
    journals the campaign as an append-only JSONL record of intent and
    completion — what :func:`resume_campaign` replays after a crash so only
    the cells missing from the store tiers re-execute.

    ``sinks`` receive the full :class:`~repro.workload.runner.ScenarioResult`
    of every run that actually executes (cache hits carry no tracer, so they
    are not re-exported).

    ``telemetry`` records the campaign's span tree: one ``campaign`` root
    whose children are the per-cell trees in run-index order (cache hits
    appear as closed ``cell`` spans marked ``cached=True``; orchestrated
    campaigns prepend one ``executor`` accounting span per backend).
    ``progress`` (``True`` for stderr, or any writable stream) repaints a
    live done/total | hits | cells/s | ETA line as cells complete, with
    per-executor in-flight counts when orchestrating.
    """
    return execute_runs(
        spec.name,
        spec.expand(),
        workers=workers,
        store=store,
        sinks=sinks,
        trace_store=trace_store,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
        manifest=manifest,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
    )


def resume_campaign(
    manifest,
    store: "ResultStore",
    workers: int = 1,
    sinks: Iterable["TraceSink"] = (),
    trace_store: "TraceStore | None" = None,
    telemetry: Telemetry | None = None,
    progress: "bool | TextIO" = False,
    executor=None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
) -> CampaignResult:
    """Resume a crashed or partially executed campaign from its manifest.

    The manifest is self-contained (every cell's canonical spec contents are
    journalled with its ``pending`` line), so no campaign grid flags are
    needed: the run list is rebuilt from the journal, and the normal warm
    scan against ``store`` (and ``trace_store`` if given) decides what still
    executes — **only the cells whose content keys are missing from the
    store tiers re-run**, regardless of what states the journal last saw.
    Completions are journalled back into the same manifest, so resuming is
    idempotent and re-entrant.
    """
    journal = _as_manifest(manifest)
    if journal is None:
        raise ValueError("resume requires a manifest path")
    if store is None:
        raise ValueError(
            "resume requires the campaign's result store — without it every "
            "cell would re-execute"
        )
    state = journal.replay()
    if not state.cells:
        raise ValueError(f"manifest {journal.path} records no cells")
    runs = state.runs()
    _log.info(
        "resuming campaign %r from %s: %d journalled cell(s), %d marked done",
        state.name,
        journal.path,
        len(runs),
        len(state.done),
    )
    return execute_runs(
        state.name,
        runs,
        workers=workers,
        store=store,
        sinks=sinks,
        trace_store=trace_store,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
        manifest=journal,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
    )
