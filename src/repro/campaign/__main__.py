"""``python -m repro.campaign`` — run a synthetic scenario sweep.

Generates a family of seeded synthetic workloads, expands the
scenario × workload (× policy) grid into runs, executes them on a process
pool and prints the aggregated metrics table plus a Serial-vs-DROM summary.

Example::

    python -m repro.campaign --workloads 5 --njobs 3 --nnodes 4 \\
        --workers 4 --work-scale 0.05 --iterations 20
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.runner import run_campaign
from repro.obs.log import LEVELS, configure, get_logger
from repro.campaign.spec import (
    NODE_POLICY_NAMES,
    POLICY_REGISTRY,
    CampaignSpec,
    ClusterRef,
    PolicyRef,
    SchedulerRef,
    SyntheticWorkloadRef,
)
from repro.workload.generator import (
    BURSTY,
    POISSON,
    UNIFORM,
    SizeMixEntry,
    WorkloadSpec,
    heavy_tailed_size_mix,
)
from repro.workload.runner import DROM, SERIAL

_log = get_logger("campaign.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a parallel Serial-vs-DROM scenario sweep.",
    )
    sweep = parser.add_argument_group("sweep")
    sweep.add_argument("--workloads", type=int, default=5,
                       help="number of synthetic workloads to draw (default 5)")
    sweep.add_argument("--scenarios", default=f"{SERIAL},{DROM}",
                       help="comma-separated scenarios (default serial,drom)")
    sweep.add_argument("--policies", default="",
                       help="comma-separated mask-distribution policies "
                            f"({','.join(sorted(POLICY_REGISTRY))}); "
                            "empty = the paper's default")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed for workload generation: workload i "
                            "uses seed+i (default 0)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1 = in-process)")
    sweep.add_argument("--backfill", choices=("off", "on", "both"), default="off",
                       help="controller backfill: off, on, or sweep both "
                            "as a scheduler axis (default off)")
    sweep.add_argument("--node-policies", default="",
                       help="comma-separated node-selection policies "
                            f"({','.join(sorted(NODE_POLICY_NAMES))}) swept as "
                            "a scheduler axis; empty = stock node order")
    sweep.add_argument("--store", default=None, metavar="ROOT",
                       help="content-addressed result store: cells already in "
                            "the store are served from it, fresh rows are "
                            "written back (created if missing)")
    sweep.add_argument("--trace-store", default=None, metavar="ROOT",
                       help="content-addressed trace tier: every executed run "
                            "persists its full trace under the same content "
                            "key; with --store, a run only skips execution "
                            "when both tiers hit (created if missing)")
    sweep.add_argument("--profile", default=None, metavar="OUT.pstats",
                       help="profile the sweep with cProfile: forces the "
                            "in-process executor (--workers is ignored), "
                            "writes the stats to the given path and prints "
                            "the top 20 functions by cumulative time")
    sweep.add_argument("--shard", default=None, metavar="K/N",
                       help="run only shard K of N (1-based): the workload "
                            "axis is dealt round-robin over N balanced shard "
                            "campaigns; combine with per-host --store roots "
                            "and 'python -m repro.results merge' to "
                            "distribute a sweep")

    dist = parser.add_argument_group("distributed execution")
    dist.add_argument("--executor", action="append", default=None, metavar="SPEC",
                      help="execute cells on an executor backend instead of "
                           "--workers: 'local:N' (N persistent worker "
                           "processes), 'ssh:HOST[:SLOTS]' (stream cells to a "
                           "remote worker over SSH; empty HOST = loopback "
                           "subprocess), or 'slurm:DIR' (write array-job "
                           "scripts into DIR; see --submit). Repeat the flag "
                           "to orchestrate several backends at once — cells "
                           "are dealt to whichever executor has a free slot")
    dist.add_argument("--manifest", default=None, metavar="PATH",
                      help="journal the campaign into an append-only JSONL "
                           "manifest (cell intent + completions); a crashed "
                           "campaign restarts with --resume PATH")
    dist.add_argument("--resume", default=None, metavar="MANIFEST",
                      help="resume a campaign from its manifest: the run list "
                           "is rebuilt from the journal (grid flags are "
                           "ignored) and only cells missing from the store "
                           "tiers re-execute; requires --store")
    dist.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                      help="per-cell timeout in seconds on the orchestrated "
                           "path (timed-out cells retry; default none)")
    dist.add_argument("--retries", type=int, default=2,
                      help="extra attempts per cell on transient executor "
                           "failures (default 2)")
    dist.add_argument("--backoff", type=float, default=0.5, metavar="S",
                      help="base retry backoff in seconds, doubled per "
                           "attempt (default 0.5)")
    dist.add_argument("--submit", action="store_true",
                      help="with --executor slurm:DIR, submit the generated "
                           "scripts via sbatch (afterok-chained summarize "
                           "job included); without it the scripts are only "
                           "written for inspection or manual submission")

    obs = parser.add_argument_group("observability")
    obs.add_argument("--progress", action="store_true",
                     help="repaint a live done/total | cache hits | cells/s | "
                          "ETA line on stderr as cells complete")
    obs.add_argument("--telemetry", default=None, metavar="OUT.json",
                     help="record the campaign's span tree and write the "
                          "machine-readable telemetry summary (cells/sec, "
                          "per-tier hit rates, p50/p95 cell wall-clock) to "
                          "the given path")
    obs.add_argument("--chrome-trace", default=None, metavar="OUT.json",
                     help="export the span tree as Chrome trace-event JSON "
                          "(load in chrome://tracing or ui.perfetto.dev)")
    obs.add_argument("--log-level", choices=sorted(LEVELS), default=None,
                     help="stderr log level for the repro stack; overrides "
                          "the REPRO_LOG environment variable "
                          "(default: REPRO_LOG or warning)")

    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--nnodes", type=int, default=4,
                         help="nodes in the partition (default 4)")
    cluster.add_argument("--sockets", type=int, default=2,
                         help="sockets per node (default 2, MN3-like)")
    cluster.add_argument("--cores-per-socket", type=int, default=8,
                         help="cores per socket (default 8, MN3-like)")

    workload = parser.add_argument_group("workload generation")
    workload.add_argument("--njobs", type=int, default=3,
                          help="jobs per synthetic workload (default 3)")
    workload.add_argument("--arrival", choices=(POISSON, UNIFORM, BURSTY),
                          default=POISSON,
                          help="arrival process (default poisson)")
    workload.add_argument("--mean-interarrival", type=float, default=120.0,
                          help="mean seconds between submissions (default 120)")
    workload.add_argument("--burst-size", type=int, default=4,
                          help="jobs per burst with --arrival bursty (default 4)")
    workload.add_argument("--nodes-per-job", type=int, default=2,
                          help="nodes each job requests (default 2)")
    workload.add_argument("--size-mix", default="", metavar="N[:W],...",
                          help="heterogeneous job sizes: comma-separated node "
                               "counts with optional weights, e.g. '1:4,2:2,4:1'; "
                               "each job draws its own resource request "
                               "(empty = uniform --nodes-per-job requests)")
    workload.add_argument("--heavy-tailed-sizes", type=int, default=None,
                          metavar="MAX_NODES",
                          help="shorthand for a power-law size mix over "
                               "power-of-two node counts up to MAX_NODES")
    workload.add_argument("--work-scale", type=float, default=0.05,
                          help="scale on each app's nominal work (default 0.05)")
    workload.add_argument("--iterations", type=int, default=20,
                          help="malleability points per rank (default 20)")
    return parser


def _parse_size_mix(args: argparse.Namespace) -> tuple[SizeMixEntry, ...]:
    if args.heavy_tailed_sizes is not None:
        if args.size_mix.strip():
            raise ValueError("--size-mix and --heavy-tailed-sizes are exclusive")
        return heavy_tailed_size_mix(args.heavy_tailed_sizes)
    entries = []
    for token in (t.strip() for t in args.size_mix.split(",") if t.strip()):
        nodes, _, weight = token.partition(":")
        entries.append(
            SizeMixEntry(nodes=int(nodes), weight=float(weight) if weight else 1.0)
        )
    return tuple(entries)


def build_spec(args: argparse.Namespace) -> CampaignSpec:
    workload_spec = WorkloadSpec(
        njobs=args.njobs,
        arrival=args.arrival,
        mean_interarrival=args.mean_interarrival,
        nodes=args.nodes_per_job,
        work_scale=args.work_scale,
        iterations=args.iterations,
        size_mix=_parse_size_mix(args),
        burst_size=args.burst_size,
    )
    # Cross-axis check: drawn sizes are rigid requests, so a width beyond the
    # partition would be rejected at submit time, deep inside the sweep —
    # surface it as a usage error before simulating anything.
    widest = max(
        (entry.nodes for entry in workload_spec.size_mix),
        default=workload_spec.nodes,
    )
    if widest > args.nnodes:
        raise ValueError(
            f"the size mix draws {widest}-node jobs but the partition has "
            f"only {args.nnodes} node(s)"
        )
    workloads = tuple(
        SyntheticWorkloadRef(spec=workload_spec, seed=args.seed + i)
        for i in range(args.workloads)
    )
    scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    policies: tuple[PolicyRef | None, ...]
    if args.policies.strip():
        policies = tuple(
            PolicyRef(p.strip()) for p in args.policies.split(",") if p.strip()
        )
    else:
        policies = (None,)
    backfills = {"off": (False,), "on": (True,), "both": (False, True)}[args.backfill]
    if args.node_policies.strip():
        node_policies: tuple[str | None, ...] = tuple(
            p.strip() for p in args.node_policies.split(",") if p.strip()
        )
    else:
        node_policies = (None,)
    schedulers = tuple(
        SchedulerRef(backfill=backfill, node_policy=node_policy)
        for backfill in backfills
        for node_policy in node_policies
    )
    return CampaignSpec(
        name="cli-sweep",
        workloads=workloads,
        scenarios=scenarios,
        clusters=(
            ClusterRef(
                nnodes=args.nnodes,
                kind="uniform",
                sockets=args.sockets,
                cores_per_socket=args.cores_per_socket,
            ),
        ),
        policies=policies,
        schedulers=schedulers,
    )


def _parse_executors(tokens: list[str]) -> list:
    """Build orchestrator-driven executors from ``--executor`` specs
    (``slurm:`` specs are handled separately — they are batch submissions,
    not orchestrator backends)."""
    from repro.exec import LocalPoolExecutor, SSHExecutor

    executors = []
    for token in tokens:
        kind, _, rest = token.partition(":")
        if kind == "local":
            executors.append(LocalPoolExecutor(slots=int(rest) if rest else None))
        elif kind == "ssh":
            host, _, slots = rest.partition(":")
            executors.append(
                SSHExecutor(
                    host=host or None,
                    slots=int(slots) if slots else 1,
                    shared_filesystem=host == "",
                )
            )
        else:
            raise ValueError(
                f"unknown executor spec {token!r} (expected local:N, "
                "ssh:HOST[:SLOTS] or slurm:DIR)"
            )
    return executors


def _slurm_main(args: argparse.Namespace, spec: CampaignSpec, directory: str) -> int:
    """The ``--executor slurm:DIR`` path: prepare (and optionally submit)
    a chunked array-job campaign instead of orchestrating live cells."""
    import sys as _sys
    from pathlib import Path

    import repro
    from repro.exec import SlurmArrayExecutor

    if not directory:
        raise ValueError("the slurm executor needs a submission directory: "
                         "--executor slurm:DIR")
    if args.store is None:
        raise ValueError("--executor slurm:DIR requires --store (a root the "
                         "compute nodes share)")
    slurm = SlurmArrayExecutor(
        directory,
        store_root=args.store,
        trace_root=args.trace_store,
        python=_sys.executable,
        repo_root=Path(repro.__file__).resolve().parents[2],
    )
    runs = spec.expand()
    submission = slurm.prepare(spec.name, runs)
    print(
        f"slurm submission prepared in {submission.directory}: "
        f"{submission.total} cell(s) in {len(submission.chunks)} array "
        f"job(s) + summarize ({submission.summarize_path.name})"
    )
    if args.submit:
        job_ids = slurm.submit(submission)
        print(f"submitted: jobs {', '.join(job_ids[:-1])}, summarize {job_ids[-1]}")
    else:
        print("dry run (no --submit): inspect the scripts, then sbatch them "
              "or re-run with --submit")
    return 0


def _select_shard(spec: CampaignSpec, shard: str) -> CampaignSpec:
    """Resolve a ``K/N`` shard selector against ``spec.shard(N)``."""
    k_text, _, n_text = shard.partition("/")
    try:
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(f"--shard must look like K/N, got {shard!r}") from None
    if not 1 <= k <= n:
        raise ValueError(f"--shard index must satisfy 1 <= K <= N, got {shard!r}")
    shards = spec.shard(n)
    if k > len(shards):
        raise ValueError(
            f"shard {k}/{n} is empty: the campaign only has "
            f"{len(spec.workloads)} workload(s)"
        )
    return shards[k - 1]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure(args.log_level)
    executor_tokens = args.executor or []
    slurm_tokens = [t for t in executor_tokens if t.partition(":")[0] == "slurm"]
    spec = None
    try:
        if slurm_tokens and len(executor_tokens) > 1:
            raise ValueError(
                "slurm:DIR is a batch submission and cannot be mixed with "
                "other --executor specs"
            )
        if slurm_tokens and args.resume is not None:
            raise ValueError(
                "--executor slurm:DIR cannot be combined with --resume; "
                "resume locally (the summarize job does exactly that)"
            )
        executors = _parse_executors(
            [t for t in executor_tokens if t not in slurm_tokens]
        ) or None
        if args.resume is None:
            # A resume rebuilds its run list from the manifest; the grid
            # flags only matter on a fresh campaign.
            spec = build_spec(args)
            if args.shard is not None:
                spec = _select_shard(spec, args.shard)
        if slurm_tokens:
            return _slurm_main(args, spec, slurm_tokens[0].partition(":")[2])
    except ValueError as exc:
        # Bad registry names (--policies, --node-policies, --scenarios) and
        # bad executor specs read like any other usage error instead of a
        # traceback.
        parser.error(str(exc))
    if spec is not None:
        backend = (
            f"{len(executors)} executor(s)" if executors
            else f"{args.workers} worker(s)"
        )
        print(
            f"campaign {spec.name!r}: {spec.nruns} runs "
            f"({len(spec.workloads)} workloads x {len(spec.scenarios)} scenarios "
            f"x {len(spec.policies)} policies x {len(spec.schedulers)} schedulers) "
            f"on {backend}"
        )
    store = None
    if args.store is not None:
        from repro.results.store import ResultStore

        store = ResultStore(args.store)
    trace_store = None
    if args.trace_store is not None:
        from repro.traces.store import TraceStore

        trace_store = TraceStore(args.trace_store)
    telemetry = None
    if args.telemetry is not None or args.chrome_trace is not None:
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
    if args.resume is not None:
        if store is None:
            parser.error("--resume requires --store (the warm scan against "
                         "it is what skips completed cells)")
        from repro.campaign.runner import resume_campaign

        result = resume_campaign(
            args.resume,
            store,
            workers=args.workers,
            trace_store=trace_store,
            telemetry=telemetry,
            progress=args.progress,
            executor=executors,
            timeout=args.cell_timeout,
            retries=args.retries,
            backoff=args.backoff,
        )
        print(
            f"resumed campaign {result.name!r} from {args.resume}: "
            f"{result.executed} cell(s) re-executed, "
            f"{result.cache_hits} already in the store"
        )
    elif args.profile is not None:
        # Profile the serial executor: a worker pool would hide the hot path
        # in child processes, so the sweep runs in-process under cProfile.
        import cProfile
        import pstats

        if args.workers != 1 or executors:
            _log.warning(
                "--profile forces the in-process executor; ignoring "
                "--workers/--executor"
            )
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = run_campaign(
                spec,
                workers=1,
                store=store,
                trace_store=trace_store,
                telemetry=telemetry,
                progress=args.progress,
                manifest=args.manifest,
            )
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}; top 20 by cumulative time:")
        pstats.Stats(profiler).strip_dirs().sort_stats("cumulative").print_stats(20)
    else:
        result = run_campaign(
            spec,
            workers=args.workers,
            store=store,
            trace_store=trace_store,
            telemetry=telemetry,
            progress=args.progress,
            executor=executors,
            manifest=args.manifest,
            timeout=args.cell_timeout,
            retries=args.retries,
            backoff=args.backoff,
        )
    if telemetry is not None:
        from repro.obs.export import write_chrome_trace, write_summary

        if args.telemetry is not None:
            document = write_summary(telemetry, args.telemetry)
            print(f"telemetry summary written to {args.telemetry}")
            sched = document["summary"].get("scheduler") or {}
            if sched.get("jobs"):
                print(
                    f"scheduler: {sched['jobs']} job(s), mean wait "
                    f"{sched['mean_wait']:.3f} s, max wait "
                    f"{sched['max_wait']:.3f} s, allocation utilization "
                    f"{sched['utilization']:.3f}"
                )
        if args.chrome_trace is not None:
            write_chrome_trace(telemetry, args.chrome_trace)
            print(f"chrome trace written to {args.chrome_trace}")
    print(result.to_table(tiers=store is not None or trace_store is not None))
    if store is not None:
        print(
            f"\nstore {store.root}: {result.cache_hits} cache hit(s), "
            f"{result.executed} simulated, {len(store)} cell(s) stored"
        )
    if trace_store is not None:
        print(
            f"trace store {trace_store.root}: {len(trace_store)} trace(s) stored"
        )

    by_scenario = result.by_scenario()
    if SERIAL in by_scenario and DROM in by_scenario:
        pairs = [
            (cell[SERIAL], cell[DROM])
            for cell in result.scenario_pairs()
            if SERIAL in cell and DROM in cell
        ]
        if pairs:
            gains = [
                (s.average_response_time - d.average_response_time)
                / s.average_response_time
                for s, d in pairs
                if s.average_response_time > 0
            ]
            mean_gain = sum(gains) / len(gains) if gains else 0.0
            print(
                f"\nDROM vs Serial over {len(pairs)} workload cells: "
                f"mean average-response-time gain {100 * mean_gain:+.1f}%"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
