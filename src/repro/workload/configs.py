"""Table 1 — application configurations used in the evaluation.

==============  ==============  ==============  ==============
Application     Conf. 1         Conf. 2         Conf. 3
==============  ==============  ==============  ==============
NEST            2 x 16          4 x 8           —
CoreNeuron      2 x 16          4 x 8           —
Pils            2 x 16          2 x 1           2 x 4
STREAM          2 x 2           —               —
==============  ==============  ==============  ==============

(Entries are MPI ranks × OpenMP/OmpSs threads per rank; every job asks for the
two MN3 nodes and distributes its ranks among them.)

The module also carries the calibrated work volumes of the reproduction's
application models — documented here because they are experiment parameters,
not library defaults: the simulators use their library defaults (≈2600 s and
≈2850 s standalone), Pils is configured per experiment to remain a short
analytics-style job, and STREAM is the 8 GB multi-iteration run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import (
    AppConfig,
    ApplicationModel,
    coreneuron_model,
    nest_model,
    pils_model,
    stream_model,
)

#: Number of nodes every job of the evaluation requests.
EVALUATION_NODES = 2

#: Table 1 configurations.
NEST_CONFIGS: dict[str, AppConfig] = {
    "Conf. 1": AppConfig("Conf. 1", mpi_ranks=2, threads_per_rank=16),
    "Conf. 2": AppConfig("Conf. 2", mpi_ranks=4, threads_per_rank=8),
}
CORENEURON_CONFIGS: dict[str, AppConfig] = {
    "Conf. 1": AppConfig("Conf. 1", mpi_ranks=2, threads_per_rank=16),
    "Conf. 2": AppConfig("Conf. 2", mpi_ranks=4, threads_per_rank=8),
}
PILS_CONFIGS: dict[str, AppConfig] = {
    "Conf. 1": AppConfig("Conf. 1", mpi_ranks=2, threads_per_rank=16),
    "Conf. 2": AppConfig("Conf. 2", mpi_ranks=2, threads_per_rank=1),
    "Conf. 3": AppConfig("Conf. 3", mpi_ranks=2, threads_per_rank=4),
}
STREAM_CONFIGS: dict[str, AppConfig] = {
    "Conf. 1": AppConfig("Conf. 1", mpi_ranks=2, threads_per_rank=2),
}

#: Calibrated Pils problem sizes (nominal CPU-seconds) per configuration, so
#: that each configuration remains a short analytics job: roughly 175 s,
#: 280 s and 230 s standalone respectively.
PILS_WORK: dict[str, float] = {
    "Conf. 1": 5_300.0,
    "Conf. 2": 560.0,
    "Conf. 3": 1_800.0,
}


@dataclass(frozen=True)
class ConfiguredApp:
    """An application model together with one of its Table-1 configurations."""

    app_name: str
    config: AppConfig
    model: ApplicationModel

    @property
    def label(self) -> str:
        return f"{self.app_name} {self.config.label}"


def nest(config: str = "Conf. 1", **model_kwargs) -> ConfiguredApp:
    """NEST in one of its Table-1 configurations."""
    cfg = NEST_CONFIGS[config]
    return ConfiguredApp("NEST", cfg, nest_model(**model_kwargs))


def coreneuron(config: str = "Conf. 1", **model_kwargs) -> ConfiguredApp:
    """CoreNeuron in one of its Table-1 configurations."""
    cfg = CORENEURON_CONFIGS[config]
    return ConfiguredApp("CoreNeuron", cfg, coreneuron_model(**model_kwargs))


def pils(config: str = "Conf. 2", **model_kwargs) -> ConfiguredApp:
    """Pils in one of its Table-1 configurations (per-config problem size)."""
    cfg = PILS_CONFIGS[config]
    kwargs = {"total_work": PILS_WORK[config], **model_kwargs}
    return ConfiguredApp("Pils", cfg, pils_model(**kwargs))


def stream(config: str = "Conf. 1", **model_kwargs) -> ConfiguredApp:
    """STREAM in its Table-1 configuration."""
    cfg = STREAM_CONFIGS[config]
    return ConfiguredApp("STREAM", cfg, stream_model(**model_kwargs))


def table1_rows() -> list[tuple[str, str, str, str]]:
    """The rows of Table 1, as (application, Conf. 1, Conf. 2, Conf. 3)."""

    def fmt(configs: dict[str, AppConfig], key: str) -> str:
        if key not in configs:
            return "-"
        cfg = configs[key]
        return f"{cfg.mpi_ranks} x {cfg.threads_per_rank}"

    rows = []
    for name, configs in (
        ("NEST", NEST_CONFIGS),
        ("CoreNeuron", CORENEURON_CONFIGS),
        ("Pils", PILS_CONFIGS),
        ("STREAM", STREAM_CONFIGS),
    ):
        rows.append(
            (name, fmt(configs, "Conf. 1"), fmt(configs, "Conf. 2"), fmt(configs, "Conf. 3"))
        )
    return rows
