"""Synthetic workload generation — scenario sweeps beyond the paper's fixtures.

The paper evaluates DROM with a handful of hand-written two-job workloads on
two MN3 nodes.  The campaign subsystem needs arbitrarily many parameterised
workloads: seeded-random or Poisson arrival processes, configurable mixes of
the four evaluated applications (NEST, CoreNeuron, Pils, STREAM) in their
Table-1 configurations, priority levels, and node requests sized for any
:class:`~repro.cpuset.topology.ClusterTopology`.

Determinism is the contract: :func:`generate_workload` is a pure function of
``(spec, seed)`` — the same pair always produces the same job list, so a
campaign can be re-expanded and re-executed (serially or across a process
pool) with identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps import coreneuron as _coreneuron
from repro.apps import nest as _nest
from repro.apps import stream as _stream
from repro.runtime.process import ThreadModel
from repro.workload import configs
from repro.workload.workloads import ResourceRequest, Workload, WorkloadJob

#: Arrival process names accepted by :class:`WorkloadSpec`.
POISSON = "poisson"
UNIFORM = "uniform"
#: Bursty arrivals: jobs arrive in back-to-back groups of ``burst_size``;
#: the gaps *between* bursts are exponential with mean ``mean_interarrival``.
BURSTY = "bursty"

#: Default jobs-per-burst; non-bursty specs are normalised to it (the field
#: is inert there, and equal-computing specs must hash to the same cell).
DEFAULT_BURST_SIZE = 4

#: Nominal (unscaled) total work of each application factory, per config.
_BASE_WORK: dict[str, dict[str, float]] = {
    "NEST": {label: _nest.DEFAULT_TOTAL_WORK for label in configs.NEST_CONFIGS},
    "CoreNeuron": {
        label: _coreneuron.DEFAULT_TOTAL_WORK for label in configs.CORENEURON_CONFIGS
    },
    "Pils": dict(configs.PILS_WORK),
    "STREAM": {label: _stream.DEFAULT_TOTAL_WORK for label in configs.STREAM_CONFIGS},
}

_FACTORIES = {
    "NEST": configs.nest,
    "CoreNeuron": configs.coreneuron,
    "Pils": configs.pils,
    "STREAM": configs.stream,
}


@dataclass(frozen=True)
class AppMixEntry:
    """One application kind that a synthetic workload may draw."""

    app: str
    config: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.app not in _FACTORIES:
            raise ValueError(
                f"unknown application {self.app!r}; choose from {sorted(_FACTORIES)}"
            )
        if self.config not in _BASE_WORK[self.app]:
            raise ValueError(
                f"{self.app} has no configuration {self.config!r}"
            )
        if self.weight < 0:
            raise ValueError("weight must be non-negative")

    @property
    def thread_model(self) -> ThreadModel:
        """Pils runs MPI+OmpSs, everything else MPI+OpenMP (Section 6)."""
        return ThreadModel.OMPSS if self.app == "Pils" else ThreadModel.OPENMP


#: Default mix: one simulator-style and one analytics-style job of each kind.
DEFAULT_APP_MIX: tuple[AppMixEntry, ...] = (
    AppMixEntry("NEST", "Conf. 1"),
    AppMixEntry("CoreNeuron", "Conf. 2"),
    AppMixEntry("Pils", "Conf. 2"),
    AppMixEntry("STREAM", "Conf. 1"),
)


@dataclass(frozen=True)
class SizeMixEntry:
    """One candidate job size (node count) of a heterogeneous workload.

    ``min_nodes``/``max_nodes`` become the drawn jobs' malleability bounds
    (see :class:`~repro.workload.workloads.ResourceRequest`); left ``None``
    the drawn requests are rigid.
    """

    nodes: int
    weight: float = 1.0
    min_nodes: int | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.min_nodes is not None and not 1 <= self.min_nodes <= self.nodes:
            raise ValueError("min_nodes must be in [1, nodes]")
        if self.max_nodes is not None and self.max_nodes < self.nodes:
            raise ValueError("max_nodes must be >= nodes")


def heavy_tailed_size_mix(
    max_nodes: int, alpha: float = 1.6
) -> tuple[SizeMixEntry, ...]:
    """A power-law job-size family: power-of-two node counts up to
    ``max_nodes``, weighted ``nodes ** -alpha`` — most jobs are small, a few
    are wide, like real HPC traces."""
    if max_nodes <= 0:
        raise ValueError("max_nodes must be positive")
    sizes = []
    n = 1
    while n <= max_nodes:
        sizes.append(SizeMixEntry(nodes=n, weight=n**-alpha))
        n *= 2
    return tuple(sizes)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload family.

    A spec describes the *distribution*; pairing it with a seed in
    :func:`generate_workload` draws one concrete workload.  All fields are
    plain values, so specs travel across process boundaries unchanged (the
    campaign runner pickles them into its worker pool).

    Parameters
    ----------
    njobs:
        Number of jobs to draw.
    arrival:
        ``"poisson"`` draws exponential inter-arrival gaps with mean
        ``mean_interarrival``; ``"uniform"`` submits jobs at fixed
        ``mean_interarrival`` spacing; ``"bursty"`` submits back-to-back
        groups of ``burst_size`` jobs with exponential gaps between the
        groups.  The first job always arrives at t=0.
    mean_interarrival:
        Mean (Poisson/bursty) or exact (uniform) gap between submissions
        (bursty: between bursts), seconds.
    burst_size:
        Jobs per burst when ``arrival="bursty"``.  For the other arrival
        processes the field is inert and is normalised back to its default,
        so two specs that compute the same workloads compare equal and hash
        to the same content-addressed store cell.
    app_mix:
        Applications to draw from, weighted.
    priority_levels:
        Candidate priorities, drawn uniformly per job.
    nodes:
        Default number of nodes each job requests (must not exceed the
        cluster the workload eventually runs on).
    size_mix:
        Optional heterogeneous job-size family: candidate node counts with
        weights, drawn per job and emitted as explicit per-job
        :class:`~repro.workload.workloads.ResourceRequest`\\ s whose task
        counts scale with the drawn size (the app configuration's
        ranks-per-node density is preserved).  Empty = every job requests
        ``nodes`` nodes, the paper's uniform sizing.
    work_scale:
        Multiplier on each application's nominal total work.  Campaign tests
        and quick sweeps use small scales to keep thousands of runs cheap.
    iterations:
        Optional override of the models' main-loop iteration count
        (malleability points per rank).
    name:
        Family name used in workload labels.
    """

    njobs: int = 4
    arrival: str = POISSON
    mean_interarrival: float = 120.0
    app_mix: tuple[AppMixEntry, ...] = DEFAULT_APP_MIX
    priority_levels: tuple[int, ...] = (0,)
    nodes: int = configs.EVALUATION_NODES
    work_scale: float = 1.0
    iterations: int | None = None
    name: str = "synthetic"
    size_mix: tuple[SizeMixEntry, ...] = ()
    burst_size: int = DEFAULT_BURST_SIZE

    def __post_init__(self) -> None:
        if self.burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if self.arrival != BURSTY and self.burst_size != DEFAULT_BURST_SIZE:
            # Inert for non-bursty arrivals: normalise so equal-computing
            # specs are equal (and share one store cell).
            object.__setattr__(self, "burst_size", DEFAULT_BURST_SIZE)
        if self.njobs <= 0:
            raise ValueError("njobs must be positive")
        if self.arrival not in (POISSON, UNIFORM, BURSTY):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.mean_interarrival < 0:
            raise ValueError("mean_interarrival must be non-negative")
        if not self.app_mix:
            raise ValueError("app_mix must not be empty")
        if sum(e.weight for e in self.app_mix) <= 0:
            raise ValueError("app_mix needs at least one positive weight")
        if not self.priority_levels:
            raise ValueError("priority_levels must not be empty")
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.work_scale <= 0:
            raise ValueError("work_scale must be positive")
        if self.iterations is not None and self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.size_mix and sum(e.weight for e in self.size_mix) <= 0:
            raise ValueError("size_mix needs at least one positive weight")


def build_app(entry: AppMixEntry, spec: WorkloadSpec) -> configs.ConfiguredApp:
    """Instantiate one app of the mix with the spec's work scaling applied."""
    kwargs: dict[str, object] = {
        "total_work": _BASE_WORK[entry.app][entry.config] * spec.work_scale
    }
    if spec.iterations is not None:
        kwargs["iterations"] = spec.iterations
    return _FACTORIES[entry.app](entry.config, **kwargs)


def draw_request(
    app: configs.ConfiguredApp, size: SizeMixEntry
) -> ResourceRequest:
    """The request one drawn job size implies for one app configuration.

    The app's rank density on the paper's two-node evaluation partition is
    preserved: a configuration running ``mpi_ranks`` ranks on
    ``EVALUATION_NODES`` nodes keeps the same ranks-per-node at any size, so
    wider jobs carry proportionally more ranks (and more total CPUs) —
    heavy-tailed sizes really do produce heavy-tailed CPU footprints.
    """
    ranks_per_node = max(1, app.config.mpi_ranks // configs.EVALUATION_NODES)
    return ResourceRequest(
        nodes=size.nodes,
        ntasks=size.nodes * ranks_per_node,
        cpus_per_task=app.config.threads_per_rank,
        min_nodes=size.min_nodes,
        max_nodes=size.max_nodes,
    )


def generate_workload(spec: WorkloadSpec, seed: int) -> Workload:
    """Draw one concrete workload from ``spec`` — deterministic in ``seed``."""
    rng = random.Random(seed)
    weights = [entry.weight for entry in spec.app_mix]
    size_weights = [entry.weight for entry in spec.size_mix]
    submit_time = 0.0
    jobs: list[WorkloadJob] = []
    for i in range(spec.njobs):
        entry = rng.choices(spec.app_mix, weights=weights, k=1)[0]
        app = build_app(entry, spec)
        priority = rng.choice(spec.priority_levels)
        resources = None
        if spec.size_mix:
            size = rng.choices(spec.size_mix, weights=size_weights, k=1)[0]
            resources = draw_request(app, size)
        jobs.append(
            WorkloadJob(
                app=app,
                submit_time=submit_time,
                priority=priority,
                thread_model=entry.thread_model,
                # Labels must be unique: the runner keys its bookkeeping on
                # them, and a mix can draw the same app/config twice.
                name=f"{app.label} #{i}",
                resources=resources,
            )
        )
        if spec.mean_interarrival <= 0:
            pass  # burst submission: every job arrives at t=0
        elif spec.arrival == POISSON:
            submit_time += rng.expovariate(1.0 / spec.mean_interarrival)
        elif spec.arrival == BURSTY:
            # Jobs within a burst share a submit time; the next burst starts
            # after an exponential gap.
            if (i + 1) % spec.burst_size == 0:
                submit_time += rng.expovariate(1.0 / spec.mean_interarrival)
        else:
            submit_time += spec.mean_interarrival
    return Workload(
        name=f"{spec.name}[seed={seed}]", jobs=tuple(jobs), nodes=spec.nodes
    )
