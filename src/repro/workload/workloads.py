"""Workload definitions for the two use cases of Section 6.

A *workload* is a list of jobs with submission times.  Use case 1 (in-situ
analytics) pairs a long simulation (NEST or CoreNeuron) with a short analytics
job (Pils or STREAM) submitted shortly after the simulation starts.  Use case
2 (high-priority job) pairs a long NEST with a long, high-priority CoreNeuron
submitted while NEST runs.

Every job carries (implicitly or explicitly) a :class:`ResourceRequest` — the
per-job ``nodes`` / ``ntasks`` / ``cpus_per_task`` ask that the scheduler
sees.  The paper's workloads all request the full two-node partition, so the
request defaults from the app configuration and the workload's node count;
heterogeneous workloads (a 1-node analytics job next to a 4-node simulation)
set it explicitly or draw it from the synthetic generator's size families.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.process import ThreadModel
from repro.slurm.jobs import ResourceRequest
from repro.workload import configs

__all__ = [
    "ResourceRequest",  # canonical home: repro.slurm.jobs (re-exported here)
    "WorkloadJob",
    "Workload",
    "DEFAULT_SECOND_SUBMIT",
    "in_situ_workload",
    "high_priority_workload",
    "all_in_situ_workloads",
]


@dataclass(frozen=True)
class WorkloadJob:
    """One job of a workload."""

    app: configs.ConfiguredApp
    submit_time: float = 0.0
    priority: int = 0
    #: Shared-memory programming model the application uses (OpenMP for the
    #: simulators and STREAM, OmpSs for Pils — Section 6's application list).
    thread_model: ThreadModel = ThreadModel.OPENMP
    #: Override of the job name; defaults to the app label.
    name: str | None = None
    #: Explicit per-job resource request; ``None`` defaults to the app
    #: configuration spread over the workload's node count.
    resources: ResourceRequest | None = None

    @property
    def label(self) -> str:
        return self.name if self.name is not None else self.app.label

    def resource_request(self, default_nodes: int) -> ResourceRequest:
        """This job's effective request (explicit, or the app-config default)."""
        if self.resources is not None:
            return self.resources
        return ResourceRequest.for_app(self.app, nodes=default_nodes)


@dataclass(frozen=True)
class Workload:
    """A named list of jobs submitted to the two-node partition."""

    name: str
    jobs: tuple[WorkloadJob, ...]
    nodes: int = configs.EVALUATION_NODES

    def job_labels(self) -> list[str]:
        return [job.label for job in self.jobs]


#: Default submission offset of the analytics / high-priority job: the second
#: job arrives shortly after the first one has started (time (b) in Figures
#: 3 and 13).
DEFAULT_SECOND_SUBMIT = 120.0


def in_situ_workload(
    simulator: str = "NEST",
    simulator_config: str = "Conf. 1",
    analytics: str = "Pils",
    analytics_config: str = "Conf. 2",
    analytics_submit: float = DEFAULT_SECOND_SUBMIT,
    simulator_model_kwargs: dict | None = None,
    analytics_nodes: int | None = None,
) -> Workload:
    """Use case 1: a simulation plus an in-situ analytics job.

    ``simulator`` is ``"NEST"`` or ``"CoreNeuron"``; ``analytics`` is
    ``"Pils"`` or ``"STREAM"``.  The analytics job is submitted at
    ``analytics_submit`` seconds, while the simulation is running.
    ``simulator_model_kwargs`` forwards to the simulator's model factory —
    the ablation studies use it to build non-malleable or fully malleable
    simulator variants of the same workload.  ``analytics_nodes`` shrinks the
    analytics job's resource request below the partition size (the
    heterogeneous variant: a small analytics job next to the full-width
    simulation); ``None`` keeps the paper's uniform two-node requests.
    """
    sim_factory = {"NEST": configs.nest, "CoreNeuron": configs.coreneuron}[simulator]
    ana_factory = {"Pils": configs.pils, "STREAM": configs.stream}[analytics]
    sim = sim_factory(simulator_config, **(simulator_model_kwargs or {}))
    ana = ana_factory(analytics_config)
    ana_thread_model = ThreadModel.OMPSS if analytics == "Pils" else ThreadModel.OPENMP
    ana_resources = (
        ResourceRequest.for_app(ana, nodes=analytics_nodes)
        if analytics_nodes is not None
        else None
    )
    return Workload(
        name=f"{simulator} {simulator_config} + {analytics} {analytics_config}",
        jobs=(
            WorkloadJob(app=sim, submit_time=0.0, thread_model=ThreadModel.OPENMP),
            WorkloadJob(
                app=ana,
                submit_time=analytics_submit,
                thread_model=ana_thread_model,
                resources=ana_resources,
            ),
        ),
    )


def high_priority_workload(
    second_submit: float = DEFAULT_SECOND_SUBMIT,
) -> Workload:
    """Use case 2: long NEST + long, high-priority CoreNeuron (both Conf. 1)."""
    return Workload(
        name="UC2: NEST Conf. 1 + high-priority CoreNeuron Conf. 1",
        jobs=(
            WorkloadJob(app=configs.nest("Conf. 1"), submit_time=0.0),
            WorkloadJob(
                app=configs.coreneuron("Conf. 1"),
                submit_time=second_submit,
                priority=10,
            ),
        ),
    )


def all_in_situ_workloads() -> list[Workload]:
    """Every simulator/analytics/configuration combination of use case 1.

    This is the full sweep behind Figures 4 and 6–12: NEST and CoreNeuron in
    Conf. 1/2, each paired with Pils Conf. 1/2/3 and with STREAM.
    """
    workloads: list[Workload] = []
    for simulator in ("NEST", "CoreNeuron"):
        for sim_config in ("Conf. 1", "Conf. 2"):
            for ana_config in ("Conf. 1", "Conf. 2", "Conf. 3"):
                workloads.append(
                    in_situ_workload(simulator, sim_config, "Pils", ana_config)
                )
            workloads.append(
                in_situ_workload(simulator, sim_config, "STREAM", "Conf. 1")
            )
    return workloads
