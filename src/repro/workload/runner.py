"""Scenario runner: executes a workload under the Serial or DROM scenario.

This is the glue that turns all the substrates into the paper's experiments:

* the :class:`~repro.slurm.slurmctld.Slurmctld` controller schedules the
  workload's jobs on the two-node partition;
* each node's :class:`~repro.slurm.slurmd.Slurmd` runs the DROM-enabled
  task/affinity plugin and launches the tasks with ``DROM_PreInit``;
* every launched task becomes an
  :class:`~repro.runtime.process.ApplicationProcess` (DLB registration, an
  OpenMP/OmpSs runtime, PMPI interception);
* the application models advance step by step on the discrete-event engine,
  polling DROM at every step boundary — so a mask written by the plugin is
  adopted within one iteration, exactly like the paper's polling integration;
* job completions run ``DROM_PostFinalize`` / ``release_resources``, which
  expand the surviving jobs (the CoreNeuron expansion of Figure 13).

Two scenarios are provided, matching Section 6:

* **Serial** (``drom_enabled=False``): stock SLURM; a job waits in the queue
  until enough CPUs are entirely free.
* **DROM** (``drom_enabled=True``): malleable jobs are co-allocated and the
  node CPUs are repartitioned on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.base import ApplicationModel, RankWorkPlan
from repro.core.errors import ProcessNotRegisteredError
from repro.core.stats import ProcessStats, StatsModule
from repro.cpuset.distribution import DistributionPolicy
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology, NodeTopology
from repro.metrics.collect import WorkloadMetrics
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.runtime.mpi import MpiCommunicator
from repro.runtime.process import ApplicationProcess, ProcessSpec, ThreadModel
from repro.sim.engine import SimulationEngine, Timeout
from repro.slurm.jobs import Job, JobSpec
from repro.slurm.launcher import JobLaunch, Srun
from repro.slurm.slurmd import Slurmd
from repro.slurm.slurmctld import Slurmctld
from repro.workload.workloads import Workload, WorkloadJob

SERIAL = "serial"
DROM = "drom"


@dataclass
class RankExecution:
    """Run-time state of one MPI rank of a running job."""

    rank: int
    node: NodeTopology
    process: ApplicationProcess
    plan: RankWorkPlan


@dataclass
class JobExecution:
    """Run-time state of a whole running job."""

    workload_job: WorkloadJob
    job: Job
    launch: JobLaunch
    comm: MpiCommunicator
    ranks: list[RankExecution] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.workload_job.label

    @property
    def model(self) -> ApplicationModel:
        return self.workload_job.app.model

    def finished(self) -> bool:
        return all(rank.plan.finished for rank in self.ranks)


@dataclass
class ScenarioResult:
    """Everything one scenario run produces.

    ``replayed`` distinguishes a live execution from a
    :class:`~repro.traces.query.ScenarioReplay` served by the store tiers
    (which mirrors this reporting interface and marks itself ``True``).
    """

    #: Class-level marker, not a field: every live result really executed.
    replayed = False

    scenario: str
    workload: Workload
    metrics: WorkloadMetrics
    tracer: Tracer
    jobs: dict[str, Job]
    #: Final simulated time (equals the workload makespan end).
    end_time: float
    #: DROM statistics (Section 7 future work): per job label, the per-rank
    #: counters accumulated by the stats module while the job ran.
    job_stats: dict[str, list[ProcessStats]] = field(default_factory=dict)

    def job(self, label: str) -> Job:
        return self.jobs[label]

    def job_utilisation(self, label: str) -> float:
        """Aggregate CPU utilisation of one job (useful / owned CPU-seconds)."""
        records = self.job_stats.get(label, [])
        owned = sum(r.cpu_seconds_owned for r in records)
        useful = sum(r.useful_time for r in records)
        return min(1.0, useful / owned) if owned > 0 else 0.0


class ScenarioRunner:
    """Runs workloads under one scenario (Serial or DROM).

    Parameters
    ----------
    drom_enabled:
        False = Serial baseline, True = DROM co-allocation.
    cluster:
        Partition to run on; defaults to the paper's two MN3 nodes.
    policy:
        Mask-distribution policy of the task/affinity plugin (defaults to the
        paper's socket-aware equipartition).
    interference:
        Optional hook ``interference(job_label, node_name, co_runners) ->
        float`` returning a >=1 slow-down factor applied while other jobs run
        on the same node.  Default: no interference (the paper measured no
        visible interference between the co-located applications).
    node_policy:
        Optional :class:`~repro.slurm.policies.NodeSelectionPolicy` forwarded
        to slurmctld (the DROM-aware "victim node" selection of the paper's
        future work).  May also be a registry name (``"first-fit"``,
        ``"least-allocated"``, ``"lowest-utilisation"``); names are resolved
        per run, and ``"lowest-utilisation"`` is wired to the run's live DROM
        statistics modules so the controller really does pick the nodes whose
        occupants measure the lowest utilisation.
    backfill:
        Forwarded to :class:`~repro.slurm.slurmctld.Slurmctld`: jobs behind a
        blocked job may start if they fit.
    """

    def __init__(
        self,
        drom_enabled: bool,
        cluster: ClusterTopology | None = None,
        policy: DistributionPolicy | None = None,
        interference: Callable[[str, str, list[str]], float] | None = None,
        node_policy=None,
        backfill: bool = False,
    ) -> None:
        self.drom_enabled = drom_enabled
        self.cluster = cluster or ClusterTopology.marenostrum3(2)
        self.policy = policy
        self.interference = interference
        self.node_policy = node_policy
        self.backfill = backfill

    @property
    def scenario(self) -> str:
        return DROM if self.drom_enabled else SERIAL

    # -- public API -------------------------------------------------------------------

    def run(self, workload: Workload, trace: bool = True) -> ScenarioResult:
        """Execute ``workload`` to completion and return its metrics."""
        state = _RunState(self, workload, trace)
        state.start()
        state.engine.run()
        if not state.ctld.all_done():
            pending = [j.spec.name for j in state.ctld.pending_jobs()]
            raise RuntimeError(
                f"workload {workload.name!r} did not complete; still pending: {pending}"
            )
        metrics = WorkloadMetrics.from_jobs(state.ctld.jobs.values())
        return ScenarioResult(
            scenario=self.scenario,
            workload=workload,
            metrics=metrics,
            tracer=state.tracer,
            jobs={label: job for label, job in state.jobs_by_label.items()},
            end_time=state.engine.now,
            job_stats=state.job_stats,
        )


def run_both_scenarios(
    workload: Workload,
    cluster: ClusterTopology | None = None,
    policy: DistributionPolicy | None = None,
) -> dict[str, ScenarioResult]:
    """Run the Serial and DROM scenarios of the same workload."""
    return {
        SERIAL: ScenarioRunner(False, cluster=cluster, policy=policy).run(workload),
        DROM: ScenarioRunner(True, cluster=cluster, policy=policy).run(workload),
    }


class _RunState:
    """Mutable state of one scenario execution (one engine, one SLURM stack)."""

    def __init__(self, runner: ScenarioRunner, workload: Workload, trace: bool) -> None:
        self.runner = runner
        self.workload = workload
        self.trace = trace
        self.engine = SimulationEngine()
        # Stats modules must exist before the controller: a by-name node
        # policy may need the live utilisation data they collect.
        self.slurmds: dict[str, Slurmd] = {
            node.name: Slurmd(node, drom_enabled=runner.drom_enabled, policy=runner.policy)
            for node in runner.cluster.nodes
        }
        self.stats: dict[str, StatsModule] = {
            name: StatsModule(slurmd.shmem) for name, slurmd in self.slurmds.items()
        }
        self.ctld = Slurmctld(
            runner.cluster,
            drom_enabled=runner.drom_enabled,
            backfill=runner.backfill,
            node_policy=self._resolve_node_policy(runner.node_policy),
        )
        self.srun = Srun(self.slurmds)
        self.tracer = Tracer()
        self.jobs_by_label: dict[str, Job] = {}
        self.workload_jobs_by_id: dict[int, WorkloadJob] = {}
        self.executions: dict[int, JobExecution] = {}
        self.job_stats: dict[str, list[ProcessStats]] = {}

    def _resolve_node_policy(self, policy):
        """Build a by-name node policy against this run's statistics."""
        if policy is None or not isinstance(policy, str):
            return policy
        from repro.slurm.policies import build_node_policy

        return build_node_policy(policy, self._node_utilisation)

    def _node_utilisation(self, name: str) -> float | None:
        summary = self.stats[name].node_summary()
        return summary.utilisation if summary.nprocesses else None

    # -- submission & scheduling ----------------------------------------------------------

    def start(self) -> None:
        for wjob in self.workload.jobs:
            self.engine.call_at(wjob.submit_time, self._submit, wjob)

    def _submit(self, wjob: WorkloadJob) -> None:
        # Per-job resource request: explicit on the workload job, or the app
        # configuration spread over the workload's default node count.
        request = wjob.resource_request(self.workload.nodes)
        spec = JobSpec(
            name=wjob.label,
            nodes=request.nodes,
            ntasks=request.ntasks,
            cpus_per_task=request.cpus_per_task,
            application=wjob.app,
            malleable=wjob.app.model.malleable,
            priority=wjob.priority,
            min_nodes=request.min_nodes,
            max_nodes=request.max_nodes,
        )
        job = self.ctld.submit(spec, time=self.engine.now)
        self.jobs_by_label[wjob.label] = job
        self.workload_jobs_by_id[job.job_id] = wjob
        self._schedule_pass()

    def _schedule_pass(self) -> None:
        for decision in self.ctld.schedule(self.engine.now):
            self._launch(decision.job)

    # -- launching --------------------------------------------------------------------------

    def _launch(self, job: Job) -> None:
        wjob = self.workload_jobs_by_id[job.job_id]
        launch = self.srun.launch(job)
        comm = MpiCommunicator(size=job.spec.ntasks, job_id=job.job_id)
        execution = JobExecution(workload_job=wjob, job=job, launch=launch, comm=comm)

        # One plan per *requested* task: a request deviating from the Table-1
        # shape re-partitions the same total work over its own rank count.
        # The submitted spec is the single source of the request.
        request = job.spec.request
        plans = wjob.app.model.build_plans(request.effective_config(wjob.app.config))
        for task in launch.tasks():
            node_topology = self.runner.cluster.node(task.node)
            shmem = self.slurmds[task.node].shmem
            spec = ProcessSpec(
                pid=task.pid,
                node=task.node,
                mpi_rank=task.global_rank,
                thread_model=wjob.thread_model if wjob.app.model.malleable else ThreadModel.NONE,
                initial_mask=task.mask,
            )
            process = ApplicationProcess(spec, shmem, comm=comm, environ=task.environ)
            process.start()
            if self.trace:
                self._install_mask_tracer(wjob.label, task.global_rank, process)
            execution.ranks.append(
                RankExecution(
                    rank=task.global_rank,
                    node=node_topology,
                    process=process,
                    plan=plans[task.global_rank],
                )
            )
        self.executions[job.job_id] = execution
        self.engine.spawn(self._execute(execution), name=f"job-{job.job_id}-{wjob.label}")

    def _install_mask_tracer(
        self, label: str, rank: int, process: ApplicationProcess
    ) -> None:
        """Record mask changes with the team size they replace."""
        previous = [process.current_mask.count()]

        def on_change(mask: CpuSet) -> None:
            new_threads = mask.count()
            self.tracer.record_mask_change(
                MaskChangeRecord(
                    job=label,
                    rank=rank,
                    time=self.engine.now,
                    old_threads=previous[0],
                    new_threads=new_threads,
                )
            )
            previous[0] = new_threads

        process.on_mask_change(on_change)

    # -- execution ------------------------------------------------------------------------------

    def _execute(self, execution: JobExecution):
        model = execution.model
        total_ranks = execution.job.spec.ntasks
        while not execution.finished():
            # Malleability point: every rank polls DROM before the next
            # iteration (PMPI / OMPT / task-scheduling point).
            if model.malleable:
                for rank in execution.ranks:
                    rank.process.poll_malleability()

            durations: list[float] = []
            for rank in execution.ranks:
                mask = rank.process.current_mask
                interference = self._interference(execution, rank)
                durations.append(
                    model.step_time(
                        rank.plan,
                        mask,
                        rank.node,
                        total_ranks=total_ranks,
                        interference=interference,
                    )
                )
            step_duration = max(durations)
            start = self.engine.now
            yield Timeout(step_duration)

            for rank, duration in zip(execution.ranks, durations):
                mask = rank.process.current_mask
                nthreads = mask.count()
                utilisation = model.profile.partition.thread_utilisation(
                    rank.plan.initial_threads, nthreads
                )
                if not model.profile.partition.is_static:
                    utilisation = [1.0] * nthreads
                # Ranks that finish their step early idle in MPI until the
                # slowest rank catches up.
                scale = duration / step_duration if step_duration > 0 else 1.0
                step = rank.plan.current_step()
                if self.trace:
                    self.tracer.record_step(
                        StepRecord(
                            job=execution.label,
                            rank=rank.rank,
                            node=rank.node.name,
                            start=start,
                            duration=step_duration,
                            phase=step.phase.name,
                            nthreads=nthreads,
                            thread_utilisation=tuple(u * scale for u in utilisation),
                            ipc=model.step_ipc(rank.plan, mask, rank.node),
                            work_units=step.work_units,
                        )
                    )
                # DROM statistics module: useful vs idle thread-seconds and
                # CPU ownership, later consumable by scheduling policies.
                node_stats = self.stats[rank.node.name]
                busy_thread_seconds = sum(utilisation) * scale * step_duration
                owned_thread_seconds = nthreads * step_duration
                node_stats.record_compute(
                    rank.process.spec.pid,
                    useful_time=busy_thread_seconds,
                    idle_time=max(0.0, owned_thread_seconds - busy_thread_seconds),
                )
                node_stats.record_ownership(rank.process.spec.pid, nthreads, step_duration)
                rank.plan.advance()
        self._complete(execution)

    def _interference(self, execution: JobExecution, rank: RankExecution) -> float:
        if self.runner.interference is None:
            return 1.0
        slurmd = self.slurmds[rank.node.name]
        co_runners = [
            self.ctld.jobs[jid].spec.name
            for jid in slurmd.running_job_ids()
            if jid != execution.job.job_id
        ]
        return self.runner.interference(execution.label, rank.node.name, co_runners)

    # -- completion ----------------------------------------------------------------------------------

    def _complete(self, execution: JobExecution) -> None:
        job = execution.job
        # Snapshot the DROM statistics before the processes unregister.
        snapshots: list[ProcessStats] = []
        for rank in execution.ranks:
            node_stats = self.stats[rank.node.name]
            try:
                record = node_stats.process_stats(rank.process.spec.pid)
                record.mask_changes = rank.process.dlb.updates
                snapshots.append(record)
            except (ProcessNotRegisteredError, KeyError):
                # A rank that never computed (or was already finalised) has no
                # stats record; anything else is a real error and propagates.
                pass
            node_stats.drop(rank.process.spec.pid)
        self.job_stats[execution.label] = snapshots
        for rank in execution.ranks:
            rank.process.finish()
        # post_term + release_resources: surviving jobs may expand.
        self.srun.terminate(job)
        self.ctld.job_completed(job.job_id, self.engine.now)
        del self.executions[job.job_id]
        # Freed resources may let queued jobs start (the Serial scenario's
        # analytics job starts here).
        self._schedule_pass()
