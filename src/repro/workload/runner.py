"""Scenario runner: executes a workload under the Serial or DROM scenario.

This is the glue that turns all the substrates into the paper's experiments:

* the :class:`~repro.slurm.slurmctld.Slurmctld` controller schedules the
  workload's jobs on the two-node partition;
* each node's :class:`~repro.slurm.slurmd.Slurmd` runs the DROM-enabled
  task/affinity plugin and launches the tasks with ``DROM_PreInit``;
* every launched task becomes an
  :class:`~repro.runtime.process.ApplicationProcess` (DLB registration, an
  OpenMP/OmpSs runtime, PMPI interception);
* the application models advance step by step on the discrete-event engine,
  polling DROM at every step boundary — so a mask written by the plugin is
  adopted within one iteration, exactly like the paper's polling integration;
* job completions run ``DROM_PostFinalize`` / ``release_resources``, which
  expand the surviving jobs (the CoreNeuron expansion of Figure 13).

Two scenarios are provided, matching Section 6:

* **Serial** (``drom_enabled=False``): stock SLURM; a job waits in the queue
  until enough CPUs are entirely free.
* **DROM** (``drom_enabled=True``): malleable jobs are co-allocated and the
  node CPUs are repartitioned on the fly.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Callable

from repro.apps.base import ApplicationModel, RankWorkPlan
from repro.core.errors import ProcessNotRegisteredError
from repro.core.stats import ProcessStats, StatsModule
from repro.cpuset.distribution import DistributionPolicy
from repro.cpuset.mask import CpuSet
from repro.cpuset.topology import ClusterTopology, NodeTopology
from repro.metrics.collect import WorkloadMetrics
from repro.metrics.tracing import MaskChangeRecord, StepRecord, Tracer
from repro.obs.sched import ClusterProbe, SchedTimeline
from repro.runtime.mpi import MpiCommunicator
from repro.runtime.process import ApplicationProcess, ProcessSpec, ThreadModel
from repro.sim.engine import SimulationEngine, Timeout
from repro.slurm.jobs import Job, JobSpec
from repro.slurm.launcher import JobLaunch, Srun
from repro.slurm.slurmd import Slurmd
from repro.slurm.slurmctld import Slurmctld
from repro.workload.workloads import Workload, WorkloadJob

SERIAL = "serial"
DROM = "drom"


@dataclass
class RankExecution:
    """Run-time state of one MPI rank of a running job."""

    rank: int
    node: NodeTopology
    process: ApplicationProcess
    plan: RankWorkPlan


@dataclass
class JobExecution:
    """Run-time state of a whole running job."""

    workload_job: WorkloadJob
    job: Job
    launch: JobLaunch
    comm: MpiCommunicator
    ranks: list[RankExecution] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.workload_job.label

    @property
    def model(self) -> ApplicationModel:
        return self.workload_job.app.model

    def finished(self) -> bool:
        return all(rank.plan.finished for rank in self.ranks)


@dataclass
class ScenarioResult:
    """Everything one scenario run produces.

    ``replayed`` distinguishes a live execution from a
    :class:`~repro.traces.query.ScenarioReplay` served by the store tiers
    (which mirrors this reporting interface and marks itself ``True``).
    """

    #: Class-level marker, not a field: every live result really executed.
    replayed = False

    scenario: str
    workload: Workload
    metrics: WorkloadMetrics
    tracer: Tracer
    jobs: dict[str, Job]
    #: Final simulated time (equals the workload makespan end).
    end_time: float
    #: DROM statistics (Section 7 future work): per job label, the per-rank
    #: counters accumulated by the stats module while the job ran.
    job_stats: dict[str, list[ProcessStats]] = field(default_factory=dict)
    #: Engine events dispatched during the run (perf-harness throughput
    #: denominator; not part of any serialised artifact).
    events_executed: int = 0
    #: Per-rank step advances across all jobs (telemetry counter; a step
    #: advanced for three ranks counts three).
    steps_advanced: int = 0
    #: Batched wakes of the fast path (0 when ``batching=False`` ran the
    #: single-step reference loop).
    batches_executed: int = 0
    #: Scheduler-level observability: the event-driven queue/allocation/
    #: lifecycle series recorded by the cluster probe (see
    #: :mod:`repro.obs.sched`).  Deterministic, so it persists alongside the
    #: tracer in the trace artifact (format v4).
    sched: SchedTimeline = field(default_factory=SchedTimeline)

    def job(self, label: str) -> Job:
        return self.jobs[label]

    def job_utilisation(self, label: str) -> float:
        """Aggregate CPU utilisation of one job (useful / owned CPU-seconds)."""
        records = self.job_stats.get(label, [])
        owned = sum(r.cpu_seconds_owned for r in records)
        useful = sum(r.useful_time for r in records)
        return min(1.0, useful / owned) if owned > 0 else 0.0


class ScenarioRunner:
    """Runs workloads under one scenario (Serial or DROM).

    Parameters
    ----------
    drom_enabled:
        False = Serial baseline, True = DROM co-allocation.
    cluster:
        Partition to run on; defaults to the paper's two MN3 nodes.
    policy:
        Mask-distribution policy of the task/affinity plugin (defaults to the
        paper's socket-aware equipartition).
    interference:
        Optional hook ``interference(job_label, node_name, co_runners) ->
        float`` returning a >=1 slow-down factor applied while other jobs run
        on the same node.  Default: no interference (the paper measured no
        visible interference between the co-located applications).
    node_policy:
        Optional :class:`~repro.slurm.policies.NodeSelectionPolicy` forwarded
        to slurmctld (the DROM-aware "victim node" selection of the paper's
        future work).  May also be a registry name (``"first-fit"``,
        ``"least-allocated"``, ``"lowest-utilisation"``); names are resolved
        per run, and ``"lowest-utilisation"`` is wired to the run's live DROM
        statistics modules so the controller really does pick the nodes whose
        occupants measure the lowest utilisation.
    backfill:
        Forwarded to :class:`~repro.slurm.slurmctld.Slurmctld`: jobs behind a
        blocked job may start if they fit.
    batching:
        True (the default) runs the batched fast path: stretches of steps
        that provably cannot observe a mask change, a scheduler event or a
        co-runner change are priced per uniform segment and advanced with a
        single engine wake, emitting the same per-step records on wake.
        False runs the one-yield-per-step reference loop.  Both paths
        produce byte-identical metrics, traces and stored artifacts — the
        ``bench_perf_core`` harness gates every release on it.
    """

    def __init__(
        self,
        drom_enabled: bool,
        cluster: ClusterTopology | None = None,
        policy: DistributionPolicy | None = None,
        interference: Callable[[str, str, list[str]], float] | None = None,
        node_policy=None,
        backfill: bool = False,
        batching: bool = True,
    ) -> None:
        self.drom_enabled = drom_enabled
        self.cluster = cluster or ClusterTopology.marenostrum3(2)
        self.policy = policy
        self.interference = interference
        self.node_policy = node_policy
        self.backfill = backfill
        self.batching = batching

    @property
    def scenario(self) -> str:
        return DROM if self.drom_enabled else SERIAL

    # -- public API -------------------------------------------------------------------

    def run(self, workload: Workload, trace: bool = True) -> ScenarioResult:
        """Execute ``workload`` to completion and return its metrics."""
        state = _RunState(self, workload, trace)
        state.start()
        state.engine.run()
        if not state.ctld.all_done():
            pending = [j.spec.name for j in state.ctld.pending_jobs()]
            raise RuntimeError(
                f"workload {workload.name!r} did not complete; still pending: {pending}"
            )
        metrics = WorkloadMetrics.from_jobs(state.ctld.jobs.values())
        return ScenarioResult(
            scenario=self.scenario,
            workload=workload,
            metrics=metrics,
            tracer=state.tracer,
            jobs={label: job for label, job in state.jobs_by_label.items()},
            end_time=state.engine.now,
            job_stats=state.job_stats,
            events_executed=state.engine.events_executed,
            steps_advanced=state.steps_advanced,
            batches_executed=state.batches_executed,
            sched=state.probe.timeline(),
        )


def run_both_scenarios(
    workload: Workload,
    cluster: ClusterTopology | None = None,
    policy: DistributionPolicy | None = None,
    interference: Callable[[str, str, list[str]], float] | None = None,
    node_policy=None,
    backfill: bool = False,
    batching: bool = True,
) -> dict[str, ScenarioResult]:
    """Run the Serial and DROM scenarios of the same workload.

    Every runner option is forwarded to *both* :class:`ScenarioRunner`\\ s, so
    a comparison configured with e.g. ``backfill=True`` really compares two
    backfilling controllers (historically only ``cluster``/``policy`` passed
    through and the rest were silently dropped).
    """
    results = {}
    for drom_enabled in (False, True):
        runner = ScenarioRunner(
            drom_enabled,
            cluster=cluster,
            policy=policy,
            interference=interference,
            node_policy=node_policy,
            backfill=backfill,
            batching=batching,
        )
        results[runner.scenario] = runner.run(workload)
    return results


class _RunState:
    """Mutable state of one scenario execution (one engine, one SLURM stack)."""

    def __init__(self, runner: ScenarioRunner, workload: Workload, trace: bool) -> None:
        self.runner = runner
        self.workload = workload
        self.trace = trace
        self.engine = SimulationEngine()
        # Stats modules must exist before the controller: a by-name node
        # policy may need the live utilisation data they collect.
        self.slurmds: dict[str, Slurmd] = {
            node.name: Slurmd(node, drom_enabled=runner.drom_enabled, policy=runner.policy)
            for node in runner.cluster.nodes
        }
        self.stats: dict[str, StatsModule] = {
            name: StatsModule(slurmd.shmem) for name, slurmd in self.slurmds.items()
        }
        # Event-driven scheduler probe: on by default, cost O(events).
        self.probe = ClusterProbe()
        self.ctld = Slurmctld(
            runner.cluster,
            drom_enabled=runner.drom_enabled,
            backfill=runner.backfill,
            node_policy=self._resolve_node_policy(runner.node_policy),
            probe=self.probe,
        )
        self.srun = Srun(self.slurmds)
        self.tracer = Tracer()
        self.jobs_by_label: dict[str, Job] = {}
        self.workload_jobs_by_id: dict[int, WorkloadJob] = {}
        self.executions: dict[int, JobExecution] = {}
        self.job_stats: dict[str, list[ProcessStats]] = {}
        # -- telemetry counters (observational only; never read back) ------
        #: Per-rank step advances across all jobs.
        self.steps_advanced = 0
        #: Batched wakes of the fast path (stays 0 in the reference loop).
        self.batches_executed = 0
        # -- batching bookkeeping (see _execute_batched) ------------------
        #: Submit instants not yet fired, ascending — static fences.
        self._pending_submits: list[float] = []
        #: job_id -> lower bound on the next instant this job can cause a
        #: side effect others observe (its completion).  A batch may never
        #: sleep past another job's fence or a pending submit.
        self._fences: dict[int, float] = {}
        #: job_id -> the wake instant of the job's currently running batch.
        self._batch_end: dict[int, float] = {}
        #: Per-run launch sequence; used as the engine wake priority of each
        #: job's executor so same-instant wakes interleave identically no
        #: matter how (or whether) their sleeps were batched.
        self._launch_seq = 0

    def _resolve_node_policy(self, policy):
        """Build a by-name node policy against this run's statistics."""
        if policy is None or not isinstance(policy, str):
            return policy
        from repro.slurm.policies import build_node_policy

        return build_node_policy(policy, self._node_utilisation)

    def _node_utilisation(self, name: str) -> float | None:
        summary = self.stats[name].node_summary()
        return summary.utilisation if summary.nprocesses else None

    # -- submission & scheduling ----------------------------------------------------------

    def start(self) -> None:
        for wjob in self.workload.jobs:
            self.engine.call_at(wjob.submit_time, self._submit, wjob)
            self._pending_submits.append(max(wjob.submit_time, 0.0))
        self._pending_submits.sort()

    def _submit(self, wjob: WorkloadJob) -> None:
        self._pending_submits.remove(self.engine.now)
        # Per-job resource request: explicit on the workload job, or the app
        # configuration spread over the workload's default node count.
        request = wjob.resource_request(self.workload.nodes)
        spec = JobSpec(
            name=wjob.label,
            nodes=request.nodes,
            ntasks=request.ntasks,
            cpus_per_task=request.cpus_per_task,
            application=wjob.app,
            malleable=wjob.app.model.malleable,
            priority=wjob.priority,
            min_nodes=request.min_nodes,
            max_nodes=request.max_nodes,
        )
        job = self.ctld.submit(spec, time=self.engine.now)
        self.jobs_by_label[wjob.label] = job
        self.workload_jobs_by_id[job.job_id] = wjob
        self._schedule_pass()

    def _schedule_pass(self) -> None:
        for decision in self.ctld.schedule(self.engine.now):
            self._launch(decision.job)
        # A pass may have written new masks (DROM repartitioning).  A running
        # batch priced its steps under the old masks; that is fine — its wake
        # is its next poll — but its *completion fence* may now be stale (an
        # expansion finishes the job earlier than advertised).  Clamp every
        # fence to the job's next wake: the executor re-publishes an exact
        # fence there, and nobody sleeps past an instant that may now matter.
        for job_id, batch_end in self._batch_end.items():
            if batch_end < self._fences.get(job_id, batch_end):
                self._fences[job_id] = batch_end

    # -- launching --------------------------------------------------------------------------

    def _launch(self, job: Job) -> None:
        wjob = self.workload_jobs_by_id[job.job_id]
        launch = self.srun.launch(job)
        comm = MpiCommunicator(size=job.spec.ntasks, job_id=job.job_id)
        execution = JobExecution(workload_job=wjob, job=job, launch=launch, comm=comm)

        # One plan per *requested* task: a request deviating from the Table-1
        # shape re-partitions the same total work over its own rank count.
        # The submitted spec is the single source of the request.
        request = job.spec.request
        plans = wjob.app.model.build_plans(request.effective_config(wjob.app.config))
        for task in launch.tasks():
            node_topology = self.runner.cluster.node(task.node)
            shmem = self.slurmds[task.node].shmem
            spec = ProcessSpec(
                pid=task.pid,
                node=task.node,
                mpi_rank=task.global_rank,
                thread_model=wjob.thread_model if wjob.app.model.malleable else ThreadModel.NONE,
                initial_mask=task.mask,
            )
            process = ApplicationProcess(spec, shmem, comm=comm, environ=task.environ)
            process.start()
            if self.trace:
                self._install_mask_tracer(wjob.label, task.global_rank, process)
            execution.ranks.append(
                RankExecution(
                    rank=task.global_rank,
                    node=node_topology,
                    process=process,
                    plan=plans[task.global_rank],
                )
            )
        self.executions[job.job_id] = execution
        # Until the executor's first decision (an immediate event), the job
        # may do anything "now": a conservative fence no batch can cross.
        self._fences[job.job_id] = self.engine.now
        self._batch_end[job.job_id] = self.engine.now
        self._launch_seq += 1
        body = (
            self._execute_batched(execution)
            if self.runner.batching
            else self._execute(execution)
        )
        self.engine.spawn(
            body,
            name=f"job-{job.job_id}-{wjob.label}",
            priority=self._launch_seq,
        )

    def _install_mask_tracer(
        self, label: str, rank: int, process: ApplicationProcess
    ) -> None:
        """Record mask changes with the team size they replace."""
        previous = [process.current_mask.count()]

        def on_change(mask: CpuSet) -> None:
            new_threads = mask.count()
            self.tracer.record_mask_change(
                MaskChangeRecord(
                    job=label,
                    rank=rank,
                    time=self.engine.now,
                    old_threads=previous[0],
                    new_threads=new_threads,
                )
            )
            previous[0] = new_threads

        process.on_mask_change(on_change)

    # -- execution ------------------------------------------------------------------------------

    def _execute(self, execution: JobExecution):
        model = execution.model
        total_ranks = execution.job.spec.ntasks
        while not execution.finished():
            # Malleability point: every rank polls DROM before the next
            # iteration (PMPI / OMPT / task-scheduling point).
            if model.malleable:
                for rank in execution.ranks:
                    rank.process.poll_malleability()

            durations: list[float] = []
            for rank in execution.ranks:
                mask = rank.process.current_mask
                interference = self._interference(execution, rank)
                durations.append(
                    model.step_time(
                        rank.plan,
                        mask,
                        rank.node,
                        total_ranks=total_ranks,
                        interference=interference,
                    )
                )
            step_duration = max(durations)
            start = self.engine.now
            yield Timeout(step_duration)

            for rank, duration in zip(execution.ranks, durations):
                mask = rank.process.current_mask
                nthreads = mask.count()
                utilisation = model.profile.partition.thread_utilisation(
                    rank.plan.initial_threads, nthreads
                )
                if not model.profile.partition.is_static:
                    utilisation = [1.0] * nthreads
                # Ranks that finish their step early idle in MPI until the
                # slowest rank catches up.
                scale = duration / step_duration if step_duration > 0 else 1.0
                step = rank.plan.current_step()
                if self.trace:
                    self.tracer.record_step(
                        StepRecord(
                            job=execution.label,
                            rank=rank.rank,
                            node=rank.node.name,
                            start=start,
                            duration=step_duration,
                            phase=step.phase.name,
                            nthreads=nthreads,
                            thread_utilisation=tuple(u * scale for u in utilisation),
                            ipc=model.step_ipc(rank.plan, mask, rank.node),
                            work_units=step.work_units,
                        )
                    )
                # DROM statistics module: useful vs idle thread-seconds and
                # CPU ownership, later consumable by scheduling policies.
                node_stats = self.stats[rank.node.name]
                busy_thread_seconds = sum(utilisation) * scale * step_duration
                owned_thread_seconds = nthreads * step_duration
                node_stats.record_compute(
                    rank.process.spec.pid,
                    useful_time=busy_thread_seconds,
                    idle_time=max(0.0, owned_thread_seconds - busy_thread_seconds),
                )
                node_stats.record_ownership(rank.process.spec.pid, nthreads, step_duration)
                rank.plan.advance()
                self.steps_advanced += 1
        self._complete(execution)

    def _batch_horizon(self, job_id: int) -> float | None:
        """Earliest instant an *external* side effect may occur, or None.

        A batch for ``job_id`` may extend to this instant (inclusive) but
        never past it: pending submits and other jobs' completions are the
        only events that write masks, change co-runner sets or read the
        statistics modules.  Other jobs' intermediate wakes are inert — they
        only append trace/stats records nobody reads mid-flight — so they do
        not bound the batch, which is what lets co-running jobs skip ahead
        together instead of leapfrogging one step at a time.
        """
        horizon = self._pending_submits[0] if self._pending_submits else None
        for other_id, fence in self._fences.items():
            if other_id == job_id:
                continue
            if horizon is None or fence < horizon:
                horizon = fence
        return horizon

    def _execute_batched(self, execution: JobExecution):
        """Batched step advancement: the fast path of :meth:`_execute`.

        Each loop iteration prices as many upcoming steps as provably fit
        before the batch horizon (masks, interference and stats readers
        cannot change inside the window), sleeps once to the final step
        boundary, then emits on wake exactly the records the single-step
        reference loop would have emitted step by step — same floats, same
        accumulation order, byte-identical artifacts.
        """
        model = execution.model
        total_ranks = execution.job.spec.ntasks
        engine = self.engine
        job_id = execution.job.job_id
        label = execution.label
        ranks = execution.ranks
        partition = model.profile.partition
        trace = self.trace
        while not execution.finished():
            if model.malleable:
                for rank in ranks:
                    rank.process.poll_malleability()

            # Frozen batch inputs (can only change at fence events).
            masks = [rank.process.current_mask for rank in ranks]
            interferences = [self._interference(execution, rank) for rank in ranks]
            remaining = min(rank.plan.remaining_steps for rank in ranks)
            per_rank = [
                model.step_times(
                    rank.plan,
                    remaining,
                    mask,
                    rank.node,
                    total_ranks=total_ranks,
                    interference=interference,
                )
                for rank, mask, interference in zip(ranks, masks, interferences)
            ]
            if len(per_rank) == 1:
                step_durations = per_rank[0]
            else:
                step_durations = list(map(max, zip(*per_rank)))

            # Choose the batch size: the longest prefix of step boundaries
            # that stays *strictly before* the horizon; at least one step.
            # The boundaries are the left fold ``accumulate`` computes —
            # the exact "now + duration" addition chain the engine clock
            # performs when the reference loop sleeps one step at a time.
            # Strictness matters: an event exactly at the batch wake runs
            # first (priority 0 beats every executor), and in the reference
            # loop it would observe the statistics of every earlier step of
            # the window — so those steps must already be recorded, i.e. the
            # batch must wake before the event.  The single forced step that
            # reaches or crosses the horizon is exactly what the reference
            # loop does: mask writes land mid-step and are seen on wake.
            horizon = self._batch_horizon(job_id)
            batch_start = engine.now
            boundaries = list(accumulate(step_durations, initial=batch_start))
            del boundaries[0]
            if horizon is None:
                k = remaining
            else:
                # Count of boundaries strictly before the horizon; a forced
                # single step when even the first one reaches it.
                k = bisect_left(boundaries, horizon) or 1
            # Publish this job's completion fence — the full fold, exact
            # under the current masks; shrinks only delay it, and expansions
            # clamp it back to the batch wake at the event that writes them
            # (_schedule_pass).
            completion = boundaries[-1]
            del boundaries[k:]
            batch_end = boundaries[-1]
            self._fences[job_id] = completion
            self._batch_end[job_id] = batch_end
            self.batches_executed += 1

            yield engine.advance_until(batch_end)

            # On wake, emit what the reference loop would have recorded at
            # each intermediate boundary.
            for rank, mask, interference, durations in zip(
                ranks, masks, interferences, per_rank
            ):
                nthreads = mask.count()
                utilisation = partition.thread_utilisation(
                    rank.plan.initial_threads, nthreads
                )
                if not partition.is_static:
                    utilisation = [1.0] * nthreads
                busy_fraction = sum(utilisation)
                plan = rank.plan
                base = plan.next_step
                steps = plan.steps
                rank_no = rank.rank
                node_name = rank.node.name
                initial_threads = plan.initial_threads
                records: list[StepRecord] = []
                append_record = records.append
                stats_entries: list[tuple[float, float, int, float]] = []
                append_stats = stats_entries.append
                ipc_by_phase: dict[int, float] = {}
                balanced = durations is step_durations or durations == step_durations
                if balanced:
                    # This rank is never the laggard: every scale is exactly
                    # 1.0, so records share one utilisation tuple (``u * 1.0``
                    # is bit-identical to ``u``) and the stats entries of an
                    # equal-duration segment are one shared tuple.
                    scaled_utilisation = tuple(u * 1.0 for u in utilisation)
                    if trace:
                        start = batch_start
                        for j in range(k):
                            step = steps[base + j]
                            phase = step.phase
                            ipc = ipc_by_phase.get(id(phase))
                            if ipc is None:
                                ipc = model.step_ipc_for_phase(
                                    phase, mask, rank.node, initial_threads
                                )
                                ipc_by_phase[id(phase)] = ipc
                            append_record(
                                StepRecord(
                                    label,
                                    rank_no,
                                    node_name,
                                    start,
                                    step_durations[j],
                                    phase.name,
                                    nthreads,
                                    scaled_utilisation,
                                    ipc,
                                    step.work_units,
                                )
                            )
                            start = boundaries[j]
                    j = 0
                    while j < k:
                        step_duration = step_durations[j]
                        seg = j + 1
                        while seg < k and step_durations[seg] == step_duration:
                            seg += 1
                        busy_thread_seconds = busy_fraction * step_duration
                        entry = (
                            busy_thread_seconds,
                            max(
                                0.0,
                                nthreads * step_duration - busy_thread_seconds,
                            ),
                            nthreads,
                            step_duration,
                        )
                        if seg - j == 1:
                            append_stats(entry)
                        else:
                            stats_entries.extend([entry] * (seg - j))
                        j = seg
                else:
                    last_scale: float | None = None
                    scaled_utilisation = ()
                    start = batch_start
                    for j in range(k):
                        step_duration = step_durations[j]
                        duration = durations[j]
                        scale = (
                            duration / step_duration if step_duration > 0 else 1.0
                        )
                        if trace:
                            step = steps[base + j]
                            if scale != last_scale:
                                scaled_utilisation = tuple(
                                    u * scale for u in utilisation
                                )
                                last_scale = scale
                            phase_key = id(step.phase)
                            ipc = ipc_by_phase.get(phase_key)
                            if ipc is None:
                                ipc = model.step_ipc_for_phase(
                                    step.phase, mask, rank.node, initial_threads
                                )
                                ipc_by_phase[phase_key] = ipc
                            append_record(
                                StepRecord(
                                    label,
                                    rank_no,
                                    node_name,
                                    start,
                                    step_duration,
                                    step.phase.name,
                                    nthreads,
                                    scaled_utilisation,
                                    ipc,
                                    step.work_units,
                                )
                            )
                        busy_thread_seconds = busy_fraction * scale * step_duration
                        append_stats(
                            (
                                busy_thread_seconds,
                                max(
                                    0.0,
                                    nthreads * step_duration - busy_thread_seconds,
                                ),
                                nthreads,
                                step_duration,
                            )
                        )
                        start = boundaries[j]
                # The reference loop reads the mask again *after* each yield;
                # only the final step of a batch can observe a different one
                # (a forced single step crossing an event, where a process
                # whose runtime reads the shared memory directly sees the
                # newly assigned mask immediately).  Re-derive the last
                # record and stats entry from the wake-time mask when so.
                wake_mask = rank.process.current_mask
                if wake_mask != mask:
                    j = k - 1
                    step_duration = step_durations[j]
                    scale = (
                        durations[j] / step_duration if step_duration > 0 else 1.0
                    )
                    nthreads = wake_mask.count()
                    utilisation = partition.thread_utilisation(
                        plan.initial_threads, nthreads
                    )
                    if not partition.is_static:
                        utilisation = [1.0] * nthreads
                    busy = sum(utilisation) * scale * step_duration
                    if records:
                        last = records[-1]
                        records[-1] = StepRecord(
                            job=last.job,
                            rank=last.rank,
                            node=last.node,
                            start=last.start,
                            duration=last.duration,
                            phase=last.phase,
                            nthreads=nthreads,
                            thread_utilisation=tuple(u * scale for u in utilisation),
                            ipc=model.step_ipc_for_phase(
                                steps[base + j].phase,
                                wake_mask,
                                rank.node,
                                plan.initial_threads,
                            ),
                            work_units=last.work_units,
                        )
                    stats_entries[-1] = (
                        busy,
                        max(0.0, nthreads * step_duration - busy),
                        nthreads,
                        step_duration,
                    )
                if records:
                    self.tracer.record_steps(records)
                self.stats[node_name].record_compute_batch(
                    rank.process.spec.pid, stats_entries
                )
                plan.advance_many(k)
                self.steps_advanced += k
        self._complete(execution)

    def _interference(self, execution: JobExecution, rank: RankExecution) -> float:
        if self.runner.interference is None:
            return 1.0
        slurmd = self.slurmds[rank.node.name]
        co_runners = [
            self.ctld.jobs[jid].spec.name
            for jid in slurmd.running_job_ids()
            if jid != execution.job.job_id
        ]
        return self.runner.interference(execution.label, rank.node.name, co_runners)

    # -- completion ----------------------------------------------------------------------------------

    def _complete(self, execution: JobExecution) -> None:
        job = execution.job
        # Snapshot the DROM statistics before the processes unregister.
        snapshots: list[ProcessStats] = []
        for rank in execution.ranks:
            node_stats = self.stats[rank.node.name]
            try:
                record = node_stats.process_stats(rank.process.spec.pid)
                record.mask_changes = rank.process.dlb.updates
                snapshots.append(record)
            except (ProcessNotRegisteredError, KeyError):
                # A rank that never computed (or was already finalised) has no
                # stats record; anything else is a real error and propagates.
                pass
            node_stats.drop(rank.process.spec.pid)
        self.job_stats[execution.label] = snapshots
        for rank in execution.ranks:
            rank.process.finish()
        # post_term + release_resources: surviving jobs may expand.
        self.srun.terminate(job)
        self.ctld.job_completed(job.job_id, self.engine.now)
        del self.executions[job.job_id]
        self._fences.pop(job.job_id, None)
        self._batch_end.pop(job.job_id, None)
        # Freed resources may let queued jobs start (the Serial scenario's
        # analytics job starts here).
        self._schedule_pass()
