"""Scheduler & cluster observability: the event-driven cluster probe.

The campaign layer (:mod:`repro.obs.telemetry`) watches the *platform* and
the tracer watches *ranks*; between them the simulated cluster itself was a
black box — nothing recorded what the controller did between ``submit`` and
``complete``.  This module adds that layer:

* :class:`ClusterProbe` — an **event-driven** observer the
  :class:`~repro.slurm.slurmctld.Slurmctld` notifies at every lifecycle
  edge (submit, placement/launch — including shrunk or widened grants —
  completion, cancellation).  Never polled: the probe's cost is O(events),
  so the batched fast path's step loop is untouched and the
  ``bench_perf_core`` speedup gate is unaffected by probes being on by
  default.
* :class:`SchedTimeline` — the three deterministic series one run yields:
  queue depth over time, per-node busy-CPU/allocation over time, and the
  per-job lifecycle table (submit → start → end).  Byte-deterministic: the
  series are pure functions of the simulation's event sequence, so batched
  and unbatched executions of the same cell produce identical timelines.
* :class:`FairnessSummary` — the ROADMAP item-4 starvation metrics (p50/
  p95/max wait, bounded-slowdown percentiles), answerable warm from a
  stored timeline with zero simulation.

Records follow the tracer's ``NamedTuple`` + ``to_record``/``from_record``
codec convention (floats survive their JSON round trip exactly via
``repr``), so the trace store persists a timeline as one more gzip member
of the artifact (format v4) alongside the step and mask members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.slurm.jobs import Job
    from repro.slurm.slurmctld import NodeState

__all__ = [
    "ClusterProbe",
    "FairnessSummary",
    "JobLifecycleRecord",
    "NodeSample",
    "QueueSample",
    "SLOWDOWN_BOUND",
    "SchedTimeline",
]

#: Floor on the run time in the bounded-slowdown denominator, in simulated
#: seconds — the standard guard that keeps very short jobs from dominating
#: the percentile (Feitelson's bounded slowdown).
SLOWDOWN_BOUND = 10.0


class QueueSample(NamedTuple):
    """Queue state after one scheduler event (event-driven, never polled)."""

    time: float
    #: Jobs waiting for a placement.
    depth: int
    #: Jobs currently running.
    running: int

    def to_record(self) -> dict:
        return {
            "record": "sched_queue",
            "time": self.time,
            "depth": self.depth,
            "running": self.running,
        }

    @classmethod
    def from_record(cls, record: dict) -> "QueueSample":
        return cls(**{k: v for k, v in record.items() if k != "record"})


class NodeSample(NamedTuple):
    """One node's controller-side allocation after an event touched it."""

    time: float
    node: str
    #: CPUs allocated to running jobs on the node at this instant.
    busy_cpus: int
    #: Jobs holding an allocation on the node.
    njobs: int
    #: The node's capacity (constant per node; kept on every sample so a
    #: utilisation query never needs the cluster topology).
    ncpus: int

    def to_record(self) -> dict:
        return {
            "record": "sched_node",
            "time": self.time,
            "node": self.node,
            "busy_cpus": self.busy_cpus,
            "njobs": self.njobs,
            "ncpus": self.ncpus,
        }

    @classmethod
    def from_record(cls, record: dict) -> "NodeSample":
        return cls(**{k: v for k, v in record.items() if k != "record"})


class JobLifecycleRecord(NamedTuple):
    """One job's submit → start → end row of the lifecycle table."""

    job: str
    submit_time: float
    start_time: Optional[float]
    end_time: Optional[float]
    #: Nodes the spec asked for.
    requested_nodes: int
    #: Nodes actually granted (0 while pending; differs from the request
    #: when a malleable job started shrunk or widened).
    granted_nodes: int
    #: True when the job was co-allocated beside running malleable jobs
    #: (the DROM placement arm).
    co_allocated: bool

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (start - submit), or ``None`` while pending."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> Optional[float]:
        """Submit-to-end response time, or ``None`` until finished."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def bounded_slowdown(self) -> Optional[float]:
        """``max(1, turnaround / max(run_time, SLOWDOWN_BOUND))``."""
        if self.start_time is None or self.end_time is None:
            return None
        run_time = self.end_time - self.start_time
        return max(1.0, self.turnaround / max(run_time, SLOWDOWN_BOUND))

    def to_record(self) -> dict:
        return {
            "record": "sched_job",
            "job": self.job,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "requested_nodes": self.requested_nodes,
            "granted_nodes": self.granted_nodes,
            "co_allocated": self.co_allocated,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobLifecycleRecord":
        return cls(**{k: v for k, v in record.items() if k != "record"})


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty) — the
    same convention as the telemetry summary's cell wall-clock block."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[rank]


@dataclass(frozen=True)
class FairnessSummary:
    """Wait and bounded-slowdown distribution of one run (or campaign).

    The starvation metrics ROADMAP item 4 gates on: a scheduler that lets a
    stream of small jobs starve a wide one shows it here as ``max_wait``
    growing with the stream length while the percentiles stay flat.
    """

    njobs: int
    #: Jobs that actually started (waits are computed over these).
    started: int
    mean_wait: float
    p50_wait: float
    p95_wait: float
    max_wait: float
    p50_slowdown: float
    p95_slowdown: float
    max_slowdown: float

    def to_dict(self) -> dict:
        return {
            "njobs": self.njobs,
            "started": self.started,
            "mean_wait": self.mean_wait,
            "p50_wait": self.p50_wait,
            "p95_wait": self.p95_wait,
            "max_wait": self.max_wait,
            "p50_slowdown": self.p50_slowdown,
            "p95_slowdown": self.p95_slowdown,
            "max_slowdown": self.max_slowdown,
        }


def fairness_from_rows(rows: Iterable[JobLifecycleRecord]) -> FairnessSummary:
    """Aggregate lifecycle rows into a :class:`FairnessSummary` — shared by
    per-run timelines and campaign-level roll-ups over many runs' rows."""
    rows = list(rows)
    waits = sorted(r.wait_time for r in rows if r.wait_time is not None)
    slowdowns = sorted(
        r.bounded_slowdown for r in rows if r.bounded_slowdown is not None
    )
    return FairnessSummary(
        njobs=len(rows),
        started=len(waits),
        mean_wait=(sum(waits) / len(waits)) if waits else 0.0,
        p50_wait=_percentile(waits, 0.50),
        p95_wait=_percentile(waits, 0.95),
        max_wait=waits[-1] if waits else 0.0,
        p50_slowdown=_percentile(slowdowns, 0.50),
        p95_slowdown=_percentile(slowdowns, 0.95),
        max_slowdown=slowdowns[-1] if slowdowns else 0.0,
    )


@dataclass(frozen=True)
class SchedTimeline:
    """The scheduler-level observable record of one run.

    Three deterministic series (canonical order is event order for the
    samples — each is appended at a strictly non-decreasing simulated
    instant — and ``(submit, job)`` for the lifecycle table), plus the
    derived queries every consumer shares: the trace store persists the
    records, :class:`~repro.traces.query.TraceReader` re-derives the same
    answers warm, and the campaign summary aggregates the same rows.
    """

    queue: tuple[QueueSample, ...] = ()
    nodes: tuple[NodeSample, ...] = ()
    jobs: tuple[JobLifecycleRecord, ...] = ()

    def __len__(self) -> int:
        return len(self.queue) + len(self.nodes) + len(self.jobs)

    # -- queries -----------------------------------------------------------------

    def queue_depth_series(self) -> list[tuple[float, int]]:
        """(time, pending depth) at every scheduler event."""
        return [(s.time, s.depth) for s in self.queue]

    def running_series(self) -> list[tuple[float, int]]:
        """(time, running jobs) at every scheduler event."""
        return [(s.time, s.running) for s in self.queue]

    def node_names(self) -> list[str]:
        seen: list[str] = []
        for sample in self.nodes:
            if sample.node not in seen:
                seen.append(sample.node)
        return seen

    def utilization_series(self, node: str | None = None) -> list[NodeSample]:
        """Per-node allocation samples, optionally restricted to one node."""
        if node is None:
            return list(self.nodes)
        return [s for s in self.nodes if s.node == node]

    def job_lifecycle(self) -> list[JobLifecycleRecord]:
        return list(self.jobs)

    def fairness_summary(self) -> FairnessSummary:
        return fairness_from_rows(self.jobs)

    def busy_cpu_seconds(self, end_time: float) -> float:
        """Allocated CPU-seconds integrated over the run (step function
        between samples, held to ``end_time`` after the last one)."""
        total = 0.0
        for node in self.node_names():
            samples = self.utilization_series(node)
            for sample, nxt in zip(samples, samples[1:]):
                total += sample.busy_cpus * max(0.0, nxt.time - sample.time)
            last = samples[-1]
            total += last.busy_cpus * max(0.0, end_time - last.time)
        return total

    def capacity_cpu_seconds(self, end_time: float) -> float:
        """Total CPU-seconds the sampled nodes offered over the run."""
        total = 0.0
        for node in self.node_names():
            first = self.utilization_series(node)[0]
            total += first.ncpus * max(0.0, end_time - first.time)
        return total

    def utilization(self, end_time: float) -> float:
        """Allocated / offered CPU-seconds over ``[0, end_time]``."""
        capacity = self.capacity_cpu_seconds(end_time)
        return self.busy_cpu_seconds(end_time) / capacity if capacity > 0 else 0.0

    # -- codec -------------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """The flat record stream the trace store's ``sched`` member holds:
        queue samples, then node samples, then lifecycle rows."""
        return (
            [s.to_record() for s in self.queue]
            + [s.to_record() for s in self.nodes]
            + [row.to_record() for row in self.jobs]
        )

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "SchedTimeline":
        queue: list[QueueSample] = []
        nodes: list[NodeSample] = []
        jobs: list[JobLifecycleRecord] = []
        for record in records:
            kind = record.get("record")
            if kind == "sched_queue":
                queue.append(QueueSample.from_record(record))
            elif kind == "sched_node":
                nodes.append(NodeSample.from_record(record))
            elif kind == "sched_job":
                jobs.append(JobLifecycleRecord.from_record(record))
            else:
                raise ValueError(f"unknown sched record type {kind!r}")
        return cls(queue=tuple(queue), nodes=tuple(nodes), jobs=tuple(jobs))


class ClusterProbe:
    """Event-driven scheduler observer, notified by the controller.

    The controller calls one hook per lifecycle edge; the probe maintains
    its own pending/running counters (the controller's live queue is
    mid-mutation during a scheduling pass, so reading ``len(queue)`` there
    would observe skipped-but-not-yet-requeued jobs as gone).  All state is
    O(jobs + events); nothing runs per simulation step.
    """

    def __init__(self) -> None:
        self._queue_samples: list[QueueSample] = []
        self._node_samples: list[NodeSample] = []
        #: job_id -> Job, in submit order (the lifecycle table's rows).
        self._jobs: dict[int, "Job"] = {}
        #: job_id -> (granted node count, co_allocated) captured at launch.
        self._grants: dict[int, tuple[int, bool]] = {}
        self._pending = 0
        self._running = 0

    # -- controller hooks ---------------------------------------------------------

    def _sample_queue(self, time: float) -> None:
        self._queue_samples.append(
            QueueSample(time=time, depth=self._pending, running=self._running)
        )

    def _sample_nodes(self, time: float, nodes: Iterable["NodeState"]) -> None:
        for state in nodes:
            self._node_samples.append(
                NodeSample(
                    time=time,
                    node=state.name,
                    busy_cpus=state.allocated_cpus,
                    njobs=len(state.running),
                    ncpus=state.ncpus,
                )
            )

    def job_submitted(self, job: "Job", time: float) -> None:
        self._jobs[job.job_id] = job
        self._pending += 1
        self._sample_queue(time)

    def job_started(
        self,
        job: "Job",
        time: float,
        nodes: Iterable["NodeState"],
        co_allocated: bool,
    ) -> None:
        """A placement decision committed: the job launches on ``nodes``
        (their states already reflect the new allocation — a shrunk or
        widened grant shows as the actual node count)."""
        self._pending -= 1
        self._running += 1
        self._grants[job.job_id] = (len(job.allocated_nodes), co_allocated)
        self._sample_queue(time)
        self._sample_nodes(time, nodes)

    def job_completed(
        self, job: "Job", time: float, nodes: Iterable["NodeState"]
    ) -> None:
        """The job released its allocation; ``nodes`` are the states it
        occupied, already updated (so the samples show the freed CPUs)."""
        self._running -= 1
        self._sample_queue(time)
        self._sample_nodes(time, nodes)

    def job_cancelled(self, job: "Job", time: float, was_pending: bool) -> None:
        if was_pending:
            self._pending -= 1
        self._sample_queue(time)

    # -- result ---------------------------------------------------------------------

    def timeline(self) -> SchedTimeline:
        """Freeze the observed run into its :class:`SchedTimeline`."""
        rows = []
        for job in self._jobs.values():
            granted, co_allocated = self._grants.get(job.job_id, (0, False))
            rows.append(
                JobLifecycleRecord(
                    job=job.spec.name,
                    submit_time=job.submit_time,
                    start_time=job.start_time,
                    end_time=job.end_time,
                    requested_nodes=job.spec.nodes,
                    granted_nodes=granted,
                    co_allocated=co_allocated,
                )
            )
        rows.sort(key=lambda r: (r.submit_time, r.job))
        return SchedTimeline(
            queue=tuple(self._queue_samples),
            nodes=tuple(self._node_samples),
            jobs=tuple(rows),
        )
