"""Observability CLI: ``python -m repro.obs``.

Currently one command family:

* ``bench report [--history FILE] [--strict]`` — print the benchmark
  trajectory recorded by ``benchmarks/history.py``, flagging >20%
  regressions vs each gate's previous row; ``--strict`` turns flagged
  regressions into a non-zero exit for CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.bench import load_history, render_report
from repro.obs.log import configure

DEFAULT_HISTORY = Path("benchmarks") / "history.jsonl"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="observability utilities"
    )
    parser.add_argument("--log-level", default=None, help="debug|info|warning|error")
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="benchmark trajectory utilities")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    report = bench_sub.add_parser(
        "report", help="print the bench history and flag regressions"
    )
    report.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help=f"history file (default {DEFAULT_HISTORY})",
    )
    report.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any >20%% regression is flagged",
    )

    args = parser.parse_args(argv)
    configure(args.log_level)
    if args.command == "bench" and args.bench_command == "report":
        text, nregressions = render_report(load_history(args.history))
        print(text)
        return 1 if (args.strict and nregressions) else 0
    parser.error("unknown command")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":
    sys.exit(main())
