"""Hierarchical spans with an injectable monotonic clock.

The observability layer's core is a :class:`Telemetry` context: a stack of
:class:`Span` records timing one region of work each, nested into a tree
(``campaign -> cell -> {build, simulate, summarise, store_write,
trace_write}``) and carrying named integer/float counters fed from signals
the stack already produces (engine events, steps advanced, batched wakes,
cache hits, artifact bytes).

Two properties make the layer safe to leave on everywhere:

* **Observational only.**  Nothing reads a span or counter back into the
  simulation; content keys, stored rows and trace artifacts are
  byte-identical with telemetry on or off (regression-gated by
  ``tests/test_obs.py``).
* **Deterministic structure.**  The clock is injectable *as a factory*:
  every campaign cell is measured on a **fresh clock** from
  :attr:`Telemetry.clock_factory`, whether the cell executes in-process or
  inside a ``multiprocessing`` worker.  With a deterministic fake factory
  (:class:`TickingClockFactory`) a serial and a pooled execution of the same
  campaign therefore produce *byte-identical* ``telemetry.json`` files —
  span structure, counters **and** durations.

The pool transport is the :class:`Span` itself: spans are plain picklable
dataclasses, so a worker returns its detached cell tree alongside the run's
metrics row and the parent stitches the trees under the campaign span in
run-index order.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "DISABLED",
    "Span",
    "Telemetry",
    "TickingClock",
    "TickingClockFactory",
    "perf_counter_factory",
]


def perf_counter_factory() -> Callable[[], float]:
    """The default clock factory: every clock is ``time.perf_counter``."""
    return time.perf_counter


class TickingClock:
    """Deterministic fake clock: starts at ``start``, advances ``tick``/call."""

    def __init__(self, tick: float = 1.0, start: float = 0.0) -> None:
        self.tick = tick
        self._now = start

    def __call__(self) -> float:
        now = self._now
        self._now += self.tick
        return now


class TickingClockFactory:
    """Picklable factory of :class:`TickingClock` instances.

    Every clock it builds starts at zero, so a run measured on a fresh clock
    produces the same span instants no matter which process executed it —
    the fake-clock determinism tests inject this factory and compare serial
    vs pooled ``telemetry.json`` files byte for byte.
    """

    def __init__(self, tick: float = 1.0) -> None:
        self.tick = tick

    def __call__(self) -> TickingClock:
        return TickingClock(self.tick)


@dataclass
class Span:
    """One timed region: name, static attrs, counters and child spans.

    ``start``/``end`` are instants of the clock the span was measured on —
    within one tree a single clock domain, but *different* cells of a pooled
    campaign are measured on different (fresh) clocks, which is why the
    exporters rebase each cell tree rather than assuming one global
    timeline.  Plain dataclass on purpose: spans cross the pool boundary by
    pickling.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def count(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first in child order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (including self)."""
        return [span for span in self.walk() if span.name == name]

    def to_payload(self) -> dict:
        """JSON-able dict with deterministically ordered keys and children."""
        return {
            "name": self.name,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "start": self.start,
            "end": self.end,
            "counters": {key: self.counters[key] for key in sorted(self.counters)},
            "children": [child.to_payload() for child in self.children],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            start=payload.get("start", 0.0),
            end=payload.get("end"),
            counters=dict(payload.get("counters", {})),
            children=[cls.from_payload(c) for c in payload.get("children", [])],
        )


class _NullSpan:
    """Shared do-nothing span handed out by the disabled telemetry."""

    __slots__ = ()
    duration = 0.0
    attrs: dict = {}
    counters: dict = {}
    children: list = []

    def count(self, name: str, value: int | float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A span recorder: open spans with :meth:`span`, read trees off
    :attr:`roots`.

    Parameters
    ----------
    clock_factory:
        Zero-arg callable returning a zero-arg monotonic clock.  Must be
        picklable when campaigns run pooled (module-level function or a
        picklable instance like :class:`TickingClockFactory`): the campaign
        runner ships it to the workers so every cell — serial or pooled — is
        measured on a fresh clock from the same factory.
    """

    enabled = True

    def __init__(self, clock_factory: Callable[[], Callable[[], float]] | None = None) -> None:
        self.clock_factory = clock_factory or perf_counter_factory
        self._clock = self.clock_factory()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, /, **attrs):
        """Open a child span of the current span (or a new root)."""
        span = Span(name=name, attrs=attrs, start=self._clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._clock()

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def count(self, name: str, value: int | float = 1) -> None:
        """Add to the current span's counter (no-op outside any span)."""
        if self._stack:
            self._stack[-1].count(name, value)

    def record(self, name: str, /, **attrs) -> Span:
        """A closed, *detached* span (both clock reads happen immediately).

        Used for instants that need a span-shaped record without timing a
        region — e.g. the campaign runner synthesises one ``cell`` span per
        cache hit.  Attach it with :meth:`adopt`.
        """
        span = Span(name=name, attrs=attrs, start=self._clock())
        span.end = self._clock()
        return span

    def adopt(self, span: Span, parent: Span | None = None) -> None:
        """Attach a detached span tree under ``parent`` (default: current
        span, or as a new root) — the pooled-campaign stitch."""
        target = parent if parent is not None else self.current
        if target is None:
            self.roots.append(span)
        else:
            target.children.append(span)

    def fresh_clock(self) -> Callable[[], float]:
        """A new clock from the factory (one per campaign cell)."""
        return self.clock_factory()


class _DisabledTelemetry(Telemetry):
    """The default-off telemetry: every operation is a cheap no-op.

    Code paths take a telemetry parameter defaulting to ``None`` and
    substitute this singleton, so the instrumented stack runs with a handful
    of no-op calls per *run* (never per step) — the ``bench_perf_core``
    speedup gate is unaffected.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock_factory = None  # type: ignore[assignment]
        self.roots = []
        self._stack = []

    @contextmanager
    def span(self, name: str, /, **attrs):
        yield _NULL_SPAN

    def count(self, name: str, value: int | float = 1) -> None:
        pass

    def record(self, name: str, /, **attrs):
        return _NULL_SPAN

    def adopt(self, span, parent=None) -> None:
        pass

    def fresh_clock(self):
        return None


#: Module-level disabled singleton: ``telemetry or DISABLED`` is the idiom.
DISABLED = _DisabledTelemetry()
