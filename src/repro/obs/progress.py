"""Live single-line campaign progress (stderr).

A :class:`ProgressLine` repaints one ``\\r``-terminated line as cells
complete::

    campaign 12/40 (30%) | 8 cache hits | 2.1 cells/s | ETA 0:13

The line is ephemeral terminal feedback, not telemetry: it always measures
on real wall-clock time (``time.monotonic``), is never part of any exported
artifact, and rate/ETA are derived from *executed* completions only (cache
hits land instantly during the scan and would otherwise inflate the rate).
"""

from __future__ import annotations

import time
from typing import Callable, TextIO

__all__ = ["ProgressLine"]


class ProgressLine:
    """Repaints ``done/total``, cache hits, execution rate and ETA."""

    def __init__(
        self,
        total: int,
        stream: TextIO,
        label: str = "campaign",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.stream = stream
        self.label = label
        self.done = 0
        self.hits = 0
        self.executed = 0
        self.status = ""
        self._clock = clock
        self._t0 = clock()
        self._last_width = 0

    def advance(self, cached: bool = False) -> None:
        """Mark one cell done (``cached=True`` for store-served cells)."""
        self.done += 1
        if cached:
            self.hits += 1
        else:
            self.executed += 1
        self._render()

    def set_status(self, status: str) -> None:
        """Set the free-form trailing segment (e.g. per-executor in-flight
        counts from the orchestrator) and repaint."""
        self.status = status
        self._render()

    def _eta_text(self) -> str:
        remaining = self.total - self.done
        if remaining <= 0:
            return "0:00"
        elapsed = self._clock() - self._t0
        rate = self.executed / elapsed if elapsed > 0 else 0.0
        if rate <= 0:
            return "-:--"
        eta = remaining / rate
        return f"{int(eta // 60)}:{int(eta % 60):02d}"

    def _render(self) -> None:
        elapsed = self._clock() - self._t0
        rate = self.executed / elapsed if elapsed > 0 else 0.0
        pct = 100.0 * self.done / self.total if self.total else 100.0
        line = (
            f"{self.label} {self.done}/{self.total} ({pct:3.0f}%) | "
            f"{self.hits} cache hit(s) | {rate:.1f} cells/s | ETA {self._eta_text()}"
        )
        if self.status:
            line += f" | {self.status}"
        # Pad to the widest line painted so far, so a shrinking status never
        # leaves stale characters behind the cursor.
        width = len(line)
        line = line.ljust(self._last_width)
        self._last_width = width
        self.stream.write("\r" + line)
        if hasattr(self.stream, "flush"):
            self.stream.flush()

    def finish(self) -> None:
        """Terminate the progress line (leaves the final state visible)."""
        if self.done or self.total:
            self._render()
        self.stream.write("\n")
        if hasattr(self.stream, "flush"):
            self.stream.flush()
