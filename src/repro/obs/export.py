"""Telemetry exporters: ``telemetry.json`` summaries and Chrome traces.

Two machine-readable views of one :class:`~repro.obs.telemetry.Telemetry`
tree:

* :func:`write_summary` — a deterministic JSON document with an aggregate
  ``summary`` block (cells executed/cached, per-tier hit counters, cells/sec
  and events/sec, p50/p95 cell wall-clock) plus the full span tree.  Sorted
  keys, children in stitch order: two telemetries with equal trees serialise
  byte-identically, which is what the serial-vs-pooled determinism tests
  compare.
* :func:`write_chrome_trace` — the `Trace Event Format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  JSON that ``chrome://tracing`` and Perfetto load directly.  Every campaign
  cell is measured on its own fresh clock (possibly in another process), so
  each cell tree is rebased to zero on its own track (``tid`` = grid index +
  1) with a thread-name metadata record carrying the run id; campaign-level
  spans live on track 0.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Span, Telemetry

__all__ = [
    "chrome_trace_events",
    "summarise",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_summary",
]

#: Bumped whenever the summary document layout changes.
#:
#: * 1 — initial layout.
#: * 2 — adds the ``scheduler`` block (fairness / cluster-utilization
#:   aggregates from the simulate spans' sched counters) and emits the
#:   recorded queue-depth series as Chrome counter (``C``) tracks.
SUMMARY_VERSION = 2

#: Span attributes that hold whole time series.  They are exported as
#: Chrome counter tracks and excluded from the complete-event ``args`` (a
#: thousand-point series inside a tooltip helps no one).
_SERIES_ATTRS = ("queue_series", "sched_queue_series")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[rank]


def _rate(count: float, seconds: float) -> float:
    return count / seconds if seconds > 0 else 0.0


def _counter_total(spans: list["Span"], counter: str) -> int | float:
    return sum(span.counters.get(counter, 0) for span in spans)


def summarise(telemetry: "Telemetry") -> dict:
    """Aggregate a telemetry tree into the ``telemetry.json`` summary block.

    Works off the span tree alone (no live campaign state), so it can
    summarise a tree deserialised from an earlier export just as well.
    """
    roots = telemetry.roots
    all_spans = [span for root in roots for span in root.walk()]
    campaign = next((r for r in roots if r.name == "campaign"), None)
    cells = campaign.find("cell") if campaign is not None else [
        s for s in all_spans if s.name == "cell"
    ]
    executed = [c for c in cells if not c.attrs.get("cached")]
    cached = [c for c in cells if c.attrs.get("cached")]
    durations = sorted(c.duration for c in executed)
    wall_clock = campaign.duration if campaign is not None else sum(durations)

    simulate = [s for s in all_spans if s.name == "simulate"]
    events = _counter_total(simulate, "events")
    per_name_seconds: dict[str, float] = {}
    per_name_count: dict[str, int] = {}
    for span in all_spans:
        per_name_seconds[span.name] = per_name_seconds.get(span.name, 0.0) + span.duration
        per_name_count[span.name] = per_name_count.get(span.name, 0) + 1

    metrics_hits = _counter_total(cells, "metrics_hit")
    trace_hits = _counter_total(cells, "trace_hit")
    backfilled = sum(1 for c in executed if c.attrs.get("backfilled"))

    # Scheduler-level aggregates (see repro.obs.sched): waits and CPU-second
    # integrals sum across runs; max_wait is a campaign-wide maximum.
    sched_jobs = _counter_total(simulate, "sched_jobs")
    sched_started = _counter_total(simulate, "sched_started")
    sched_wait = _counter_total(simulate, "sched_wait_seconds")
    busy = _counter_total(simulate, "sched_busy_cpu_seconds")
    capacity = _counter_total(simulate, "sched_capacity_cpu_seconds")
    max_wait = max(
        (s.attrs.get("sched_max_wait", 0.0) for s in simulate), default=0.0
    )
    return {
        "campaign": campaign.attrs.get("name") if campaign is not None else None,
        "wall_clock_seconds": wall_clock,
        "cells": {
            "total": len(cells),
            "executed": len(executed),
            "cached": len(cached),
            "metrics_hits": metrics_hits,
            "trace_hits": trace_hits,
            "backfilled": backfilled,
        },
        "counters": {
            "events": events,
            "steps": _counter_total(simulate, "steps"),
            "batches": _counter_total(simulate, "batches"),
            "store_write_bytes": _counter_total(
                [s for s in all_spans if s.name == "store_write"], "bytes"
            ),
            "trace_write_bytes": _counter_total(
                [s for s in all_spans if s.name == "trace_write"], "bytes"
            ),
        },
        "rates": {
            "cells_per_sec": _rate(len(executed), wall_clock),
            "events_per_sec": _rate(events, wall_clock),
            "hit_rate": (metrics_hits / len(cells)) if cells else 0.0,
        },
        "cell_wall_clock": {
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "mean": (sum(durations) / len(durations)) if durations else 0.0,
            "max": durations[-1] if durations else 0.0,
        },
        "scheduler": {
            "jobs": sched_jobs,
            "started": sched_started,
            "mean_wait": (sched_wait / sched_started) if sched_started else 0.0,
            "max_wait": max_wait,
            "busy_cpu_seconds": busy,
            "capacity_cpu_seconds": capacity,
            "utilization": (busy / capacity) if capacity > 0 else 0.0,
        },
        "span_seconds": {name: per_name_seconds[name] for name in sorted(per_name_seconds)},
        "span_counts": {name: per_name_count[name] for name in sorted(per_name_count)},
    }


def write_summary(telemetry: "Telemetry", path: str | Path) -> dict:
    """Write the machine-readable ``telemetry.json`` document.

    Returns the document.  Serialisation is deterministic (sorted keys,
    floats via ``repr``): equal span trees produce byte-identical files.
    """
    document = {
        "version": SUMMARY_VERSION,
        "summary": summarise(telemetry),
        "spans": [root.to_payload() for root in telemetry.roots],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    return document


# -- Chrome trace-event export ---------------------------------------------------------


def _span_args(span: "Span") -> dict:
    args = {
        key: span.attrs[key]
        for key in sorted(span.attrs)
        if key not in _SERIES_ATTRS
    }
    args.update((key, span.counters[key]) for key in sorted(span.counters))
    return args


def _emit_counters(span: "Span", base: float, tid: int, events: list[dict]) -> None:
    """Counter (``C``) tracks from a span's recorded series attributes.

    Two series shapes exist: the executor's wall-clock ``queue_series``
    (``[t, depth, in_flight]`` on its own fresh clock, rebased to the span's
    position) and the scheduler's ``sched_queue_series`` (``[t, depth]`` in
    *simulated* seconds — its own time axis, deliberately not mixed into the
    wall-clock rebasing; Perfetto keys counters by name, so per-track names
    keep cells apart).
    """
    queue_series = span.attrs.get("queue_series") or []
    if queue_series:
        origin = queue_series[0][0]
        label = span.attrs.get("name", span.name)
        span_ts = (span.start - base) * 1e6
        for sample in queue_series:
            time, depth, in_flight = sample
            events.append(
                {
                    "name": f"queue {label}",
                    "cat": "repro",
                    "ph": "C",
                    "ts": span_ts + (time - origin) * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": {"queued": depth, "in_flight": in_flight},
                }
            )
    sched_series = span.attrs.get("sched_queue_series") or []
    if sched_series:
        for sample in sched_series:
            time, depth = sample
            events.append(
                {
                    "name": f"sched queue (tid {tid})",
                    "cat": "repro",
                    "ph": "C",
                    "ts": time * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": {"pending": depth},
                }
            )


def _emit(span: "Span", base: float, tid: int, events: list[dict]) -> None:
    events.append(
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start - base) * 1e6,
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": tid,
            "args": _span_args(span),
        }
    )
    _emit_counters(span, base, tid, events)
    for child in span.children:
        if child.name == "cell" and "index" in child.attrs:
            # A cell tree lives in its own clock domain (a fresh per-cell
            # clock, possibly in another process): rebase it to zero on its
            # own track instead of pretending it shares this span's clock.
            cell_tid = int(child.attrs["index"]) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": cell_tid,
                    "args": {
                        "name": f"cell {child.attrs['index']:04d} "
                        f"{child.attrs.get('run_id', '')}".rstrip()
                    },
                }
            )
            _emit(child, child.start, cell_tid, events)
        else:
            _emit(child, base, tid, events)


def chrome_trace_events(telemetry: "Telemetry") -> list[dict]:
    """The trace-event list: one complete (``X``) event per span plus
    thread-name metadata (``M``) records naming each cell's track."""
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "campaign"}}
    ]
    for root in telemetry.roots:
        _emit(root, root.start, 0, events)
    return events


def write_chrome_trace(telemetry: "Telemetry", path: str | Path) -> dict:
    """Write a Perfetto/``chrome://tracing``-loadable trace-event JSON file."""
    document = {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    return document


def validate_chrome_trace(document: dict) -> int:
    """Check a trace document against the trace-event schema essentials.

    Returns the number of events; raises ``ValueError`` on the first
    violation.  Used by the CI telemetry smoke job and the test suite to
    prove exported traces really load as trace-event JSON.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("trace document must be an object with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} is missing {key!r}")
        phase = event["ph"]
        if phase not in ("X", "M", "C"):
            raise ValueError(f"event {i} has unsupported phase {phase!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(f"event {i} has invalid {key!r}: {value!r}")
        elif phase == "C":
            value = event.get("ts")
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"event {i} has invalid 'ts': {value!r}")
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(
                    f"event {i} counter args must be a non-empty numeric object"
                )
    return len(events)
