"""Structured logging for the repro stack (stdlib ``logging``).

Every module logs through a child of the ``repro`` logger
(:func:`get_logger`), and nothing is printed unless :func:`configure`
attached the stack's stderr handler — library use stays silent by default
(stdlib's last-resort handler only surfaces warnings and above), while the
CLIs call :func:`configure` so ``REPRO_LOG=debug|info|warning|error`` or
``--log-level`` turn the previously silent paths (campaign scheduling,
store writes, gc, merges) into a readable event stream.

Precedence: an explicit ``--log-level`` beats the ``REPRO_LOG`` environment
variable, which beats the default (``warning``).
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["LEVELS", "configure", "get_logger"]

#: Logger-namespace root shared by the whole stack.
ROOT = "repro"

#: Accepted level names (CLI choices and ``REPRO_LOG`` values).
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or the dotted child ``repro.<name>``."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def resolve_level(level: str | int | None = None) -> int:
    """Map a level name/int/None to a stdlib level (None reads ``REPRO_LOG``)."""
    if level is None:
        level = os.environ.get("REPRO_LOG") or "warning"
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def configure(
    level: str | int | None = None, stream=None
) -> logging.Logger:
    """Attach the stack's stderr handler and set the effective level.

    Idempotent: re-configuring replaces the previously installed handler
    (never stacks a second one) and updates the level.  Records still
    propagate to the root logger, so test harnesses capturing via the root
    (``caplog``) observe the same stream.

    An invalid level name (a typo'd ``REPRO_LOG=chatty``, say) must not
    crash the CLI it was meant to make more talkative: it is validated
    here, warned about, and falls back to ``warning``.  Callers that want
    the strict behaviour use :func:`resolve_level` directly.
    """
    logger = get_logger()
    try:
        resolved = resolve_level(level)
    except ValueError as exc:
        resolved = logging.WARNING
        fallback_warning = str(exc)
    else:
        fallback_warning = None
    logger.setLevel(resolved)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    if fallback_warning is not None:
        # After the handler is attached, so the warning is actually visible.
        logger.warning("%s; falling back to 'warning'", fallback_warning)
    return logger
