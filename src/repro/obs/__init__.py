"""Observability for the campaign → runner → store stack.

The platform memoises, shards and batch-executes thousands-of-cell
campaigns; this package makes those pipelines watchable, profilable and
post-mortemable without perturbing a single artifact byte:

* :mod:`repro.obs.telemetry` — hierarchical :class:`Span` trees
  (``campaign -> cell -> {build, simulate, summarise, store_write,
  trace_write}``) with per-span counters and an injectable clock factory;
  pooled workers ship their span trees back through the pool and the
  campaign runner stitches them in run-index order, so serial and pooled
  executions produce structurally identical telemetry.
* :mod:`repro.obs.export` — a Chrome-trace-event (Perfetto-loadable) JSON
  writer and the machine-readable ``telemetry.json`` summary (cells/sec,
  hit rates, p50/p95 cell wall-clock, events/sec).
* :mod:`repro.obs.sched` — the event-driven scheduler probe: queue-depth,
  per-node allocation and job-lifecycle series per run, with fairness
  metrics (wait/bounded-slowdown percentiles) and windowed utilization
  queries; persisted in the trace artifact (format v4) and answerable warm
  through :class:`~repro.traces.query.TraceReader`.
* :mod:`repro.obs.progress` — the live stderr progress line behind
  ``python -m repro.campaign --progress``.
* :mod:`repro.obs.log` — structured stdlib logging (``REPRO_LOG`` /
  ``--log-level``) for the previously silent campaign, store and gc paths.
* :mod:`repro.obs.bench` — the schema-versioned benchmark trajectory behind
  ``benchmarks/history.py`` and ``python -m repro.obs bench report``.

Hard contract: telemetry is observational only.  Content keys, stored rows
and trace artifacts are byte-identical with telemetry on or off, and the
default-off overhead is a handful of no-op calls per run.
"""

from repro.obs.export import (
    chrome_trace_events,
    summarise,
    validate_chrome_trace,
    write_chrome_trace,
    write_summary,
)
from repro.obs.log import configure, get_logger
from repro.obs.progress import ProgressLine
from repro.obs.sched import (
    ClusterProbe,
    FairnessSummary,
    JobLifecycleRecord,
    NodeSample,
    QueueSample,
    SchedTimeline,
)
from repro.obs.telemetry import (
    DISABLED,
    Span,
    Telemetry,
    TickingClock,
    TickingClockFactory,
    perf_counter_factory,
)

__all__ = [
    "DISABLED",
    "ClusterProbe",
    "FairnessSummary",
    "JobLifecycleRecord",
    "NodeSample",
    "ProgressLine",
    "QueueSample",
    "SchedTimeline",
    "Span",
    "Telemetry",
    "TickingClock",
    "TickingClockFactory",
    "chrome_trace_events",
    "configure",
    "get_logger",
    "perf_counter_factory",
    "summarise",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_summary",
]
