"""Benchmark trajectory: a schema-versioned history of ``BENCH_*.json`` runs.

The perf harnesses (``bench_perf_core``, ``bench_distributed_sweep``,
``bench_store_scale``) each emit a gate report, but every run overwrote the
previous one — the repo had no memory of whether a gate was trending toward
its threshold.  This module gives the reports a trajectory:

* :func:`history_row` distils one report into a flat, schema-versioned row
  (gate name, pass/fail, headline speedup, aggregate ``span_seconds``,
  commit);
* :func:`append_history` appends rows to ``benchmarks/history.jsonl``
  (idempotent: re-appending the latest measurement is a no-op);
* :func:`render_report` prints the trajectory per gate and flags any row
  whose speedup dropped — or whose aggregate span seconds grew — by more
  than :data:`REGRESSION_THRESHOLD` vs the previous row of the same gate.

``benchmarks/history.py`` is the appending scanner; ``python -m repro.obs
bench report`` prints the trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "REGRESSION_THRESHOLD",
    "append_history",
    "history_row",
    "load_history",
    "render_report",
]

#: Bumped whenever the row layout changes; older rows are still printed but
#: never used as a regression baseline.
HISTORY_SCHEMA_VERSION = 1

#: Fractional change vs the previous row of the same gate that counts as a
#: regression (speedup shrinking, or aggregate span seconds growing).
REGRESSION_THRESHOLD = 0.20


def _aggregate(report: dict) -> dict:
    aggregate = report.get("aggregate")
    return aggregate if isinstance(aggregate, dict) else {}


def history_row(
    gate: str,
    report: dict,
    commit: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """One history row distilled from a gate report.

    Tolerant of the harnesses' different report shapes: every field that a
    report does not carry records as ``None``/``{}`` rather than raising, so
    a new harness joins the history without touching this module.
    """
    gate_block = report.get("gate") if isinstance(report.get("gate"), dict) else {}
    aggregate = _aggregate(report)
    span_seconds = aggregate.get("span_seconds")
    return {
        "record": "bench",
        "schema": HISTORY_SCHEMA_VERSION,
        "gate": gate,
        "passed": gate_block.get("passed"),
        "minimum_speedup": gate_block.get("minimum_speedup"),
        "speedup": aggregate.get("speedup"),
        "cells": aggregate.get("cells"),
        "span_seconds": dict(sorted(span_seconds.items()))
        if isinstance(span_seconds, dict)
        else {},
        "commit": commit,
        "timestamp": timestamp,
    }


def load_history(path: str | Path) -> list[dict]:
    """All readable rows of a history file (a torn tail is ignored, like the
    store index journals; a missing file is an empty history)."""
    path = Path(path)
    if not path.is_file():
        return []
    rows: list[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue  # torn tail from an interrupted append
        if isinstance(row, dict) and row.get("record") == "bench":
            rows.append(row)
    return rows


def _same_measurement(a: dict, b: dict) -> bool:
    ignore = {"timestamp"}
    return {k: v for k, v in a.items() if k not in ignore} == {
        k: v for k, v in b.items() if k not in ignore
    }


def append_history(path: str | Path, rows: Iterable[dict]) -> int:
    """Append rows, skipping any identical to its gate's latest entry
    (so re-running the scanner over unchanged reports is a no-op).
    Returns the number of rows actually appended."""
    path = Path(path)
    latest: dict[str, dict] = {}
    for row in load_history(path):
        latest[str(row.get("gate"))] = row
    appended = 0
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as stream:
        for row in rows:
            previous = latest.get(str(row.get("gate")))
            if previous is not None and _same_measurement(previous, row):
                continue
            stream.write(json.dumps(row, sort_keys=True) + "\n")
            latest[str(row.get("gate"))] = row
            appended += 1
    return appended


def _total_span_seconds(row: dict) -> float | None:
    span_seconds = row.get("span_seconds") or {}
    if not span_seconds:
        return None
    return sum(float(v) for v in span_seconds.values())


def _regressions(previous: dict, row: dict) -> list[str]:
    """Regression flags of ``row`` vs the previous same-gate row."""
    flags: list[str] = []
    if previous.get("schema") != row.get("schema"):
        return flags  # layout changed; not a comparable baseline
    old_speedup, new_speedup = previous.get("speedup"), row.get("speedup")
    if (
        isinstance(old_speedup, (int, float))
        and isinstance(new_speedup, (int, float))
        and old_speedup > 0
        and (old_speedup - new_speedup) / old_speedup > REGRESSION_THRESHOLD
    ):
        flags.append(
            f"speedup {old_speedup:.2f}x -> {new_speedup:.2f}x "
            f"(-{(old_speedup - new_speedup) / old_speedup:.0%})"
        )
    old_total, new_total = _total_span_seconds(previous), _total_span_seconds(row)
    if (
        old_total is not None
        and new_total is not None
        and old_total > 0
        and (new_total - old_total) / old_total > REGRESSION_THRESHOLD
    ):
        flags.append(
            f"span seconds {old_total:.3f}s -> {new_total:.3f}s "
            f"(+{(new_total - old_total) / old_total:.0%})"
        )
    return flags


def render_report(rows: list[dict]) -> tuple[str, int]:
    """The ``bench report`` text and its regression count.

    Rows print in file order, grouped per gate, each compared to the
    previous row of the same gate.
    """
    if not rows:
        return "bench history is empty (run benchmarks/history.py first)", 0
    lines: list[str] = []
    nregressions = 0
    by_gate: dict[str, list[dict]] = {}
    for row in rows:
        by_gate.setdefault(str(row.get("gate")), []).append(row)
    for gate in sorted(by_gate):
        lines.append(f"gate {gate} ({len(by_gate[gate])} run(s)):")
        previous: dict | None = None
        for row in by_gate[gate]:
            speedup = row.get("speedup")
            total = _total_span_seconds(row)
            parts = [
                "pass" if row.get("passed") else "FAIL",
                f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else "-",
                f"{total:.3f}s spans" if total is not None else "-",
                str(row.get("commit") or "-"),
            ]
            flags = _regressions(previous, row) if previous is not None else []
            if flags:
                nregressions += len(flags)
                parts.append("REGRESSION: " + "; ".join(flags))
            lines.append("  " + " | ".join(parts))
            previous = row
    if nregressions:
        lines.append(f"{nregressions} regression(s) > {REGRESSION_THRESHOLD:.0%}")
    else:
        lines.append("no regressions")
    return "\n".join(lines), nregressions
