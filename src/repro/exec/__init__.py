"""Distributed campaign execution: executor backends plus orchestration.

The campaign runner's distributed seam (see ``docs/distributed.md``):

* :mod:`repro.exec.base` — the tiny :class:`Executor` contract, the
  :class:`WorkerContext` shipped once per campaign, and the transient
  (:class:`ExecutorError`) vs terminal (:class:`ExecutorDied`) failure
  taxonomy.
* :mod:`repro.exec.local` — persistent local process pools (and the plain
  ``workers=N`` pool path's initializer, so per-cell pickles carry only the
  :class:`~repro.campaign.spec.RunSpec`).
* :mod:`repro.exec.ssh` — remote hosts over SSH, or the loopback subprocess
  transport, speaking the JSONL protocol of :mod:`repro.exec.worker`.
* :mod:`repro.exec.slurm` — fire-and-forget array-job submission with an
  ``afterok`` summarize job.
* :mod:`repro.exec.orchestrator` — the asyncio dealer: shared cell queue,
  per-slot loops, timeouts, retry with backoff, graceful degradation.
* :mod:`repro.exec.manifest` — the append-only resumable campaign journal.
"""

from repro.exec.base import Executor, ExecutorDied, ExecutorError, WorkerContext
from repro.exec.local import LocalPoolExecutor, worker_pool
from repro.exec.manifest import DONE, FAILED, PENDING, CampaignManifest, ManifestState
from repro.exec.orchestrator import (
    CampaignExecutionError,
    ExecutorStats,
    OrchestrationOutcome,
    orchestrate,
)
from repro.exec.slurm import SlurmArrayExecutor, SlurmSubmission
from repro.exec.ssh import SSHExecutor

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "CampaignExecutionError",
    "CampaignManifest",
    "Executor",
    "ExecutorDied",
    "ExecutorError",
    "ExecutorStats",
    "LocalPoolExecutor",
    "ManifestState",
    "OrchestrationOutcome",
    "SSHExecutor",
    "SlurmArrayExecutor",
    "SlurmSubmission",
    "WorkerContext",
    "orchestrate",
    "worker_pool",
]
